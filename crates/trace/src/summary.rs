//! Per-run summaries: where the wall time went, per task and per level,
//! plus cache attribution — the `marshal trace --summary` backend.

use std::collections::BTreeMap;

use crate::journal::Journal;
use crate::record::RecordKind;

/// One named span's contribution to a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    /// Span name (`task`, `sim`, …).
    pub name: String,
    /// The most specific identifying arg (`task`, `job`, or empty).
    pub label: String,
    /// Microseconds from start to end (to journal end when unclosed).
    pub dur_us: u64,
    /// The `outcome` closing arg, when present.
    pub outcome: String,
    /// Whether the span was closed (false = the run died inside it).
    pub finished: bool,
}

/// What a run did, distilled from its journal.
#[derive(Debug, Clone, Default)]
pub struct RunSummary {
    /// The run id from the header.
    pub run_id: String,
    /// The command from the header.
    pub command: String,
    /// The workload from the header, if any.
    pub workload: String,
    /// Total microseconds covered by the journal.
    pub wall_us: u64,
    /// Every span, in start order.
    pub spans: Vec<SpanStat>,
    /// Percentage of wall time covered by at least one span (interval
    /// union, so parallel overlap is not double-counted).
    pub coverage_pct: f64,
    /// Level-cache attribution: level → (hits, misses).
    pub cache: BTreeMap<String, (u64, u64)>,
    /// Tasks skipped as up to date.
    pub tasks_skipped: u64,
    /// Tasks poisoned by upstream failures.
    pub tasks_poisoned: u64,
    /// Warnings mirrored into the journal.
    pub warnings: u64,
    /// Remote requests, retries, and breaker trips.
    pub remote: (u64, u64, u64),
    /// Whether the journal tail was torn (crashed run).
    pub torn: bool,
}

/// Builds a [`RunSummary`] from a journal.
pub fn summarize(journal: &Journal) -> RunSummary {
    let mut s = RunSummary {
        run_id: journal.header_arg("run_id").unwrap_or("").to_owned(),
        command: journal.command().unwrap_or("").to_owned(),
        workload: journal.header_arg("workload").unwrap_or("").to_owned(),
        wall_us: journal.wall_us(),
        torn: journal.torn,
        ..RunSummary::default()
    };
    // Span ends by id.
    let mut ends: BTreeMap<u64, (u64, &crate::record::Args)> = BTreeMap::new();
    for rec in &journal.records {
        if let RecordKind::SpanEnd { id, args } = &rec.kind {
            ends.entry(*id).or_insert((rec.t_us, args));
        }
    }
    let mut intervals: Vec<(u64, u64)> = Vec::new();
    for rec in &journal.records {
        match &rec.kind {
            RecordKind::SpanStart { id, name, args, .. } => {
                let (end_t, end_args) = match ends.get(id) {
                    Some((t, a)) => (*t, Some(*a)),
                    None => (s.wall_us, None),
                };
                let label = args
                    .get("task")
                    .or_else(|| args.get("job"))
                    .or_else(|| args.get("kind"))
                    .cloned()
                    .unwrap_or_default();
                s.spans.push(SpanStat {
                    name: name.clone(),
                    label,
                    dur_us: end_t.saturating_sub(rec.t_us),
                    outcome: end_args
                        .and_then(|a| a.get("outcome"))
                        .cloned()
                        .unwrap_or_default(),
                    finished: end_args.is_some(),
                });
                intervals.push((rec.t_us, end_t.max(rec.t_us)));
                // Client-side requests are spans; server-side ones are
                // `remote.request` instants. Both count as requests.
                if name == "remote" {
                    s.remote.0 += 1;
                }
            }
            RecordKind::Instant { name, args } => match name.as_str() {
                "cache" => {
                    let level = args.get("level").cloned().unwrap_or_default();
                    let entry = s.cache.entry(level).or_insert((0, 0));
                    if args.get("hit").map(String::as_str) == Some("true") {
                        entry.0 += 1;
                    } else {
                        entry.1 += 1;
                    }
                }
                "task.skipped" => s.tasks_skipped += 1,
                "task.poisoned" => s.tasks_poisoned += 1,
                "warning" => s.warnings += 1,
                "remote.request" => s.remote.0 += 1,
                "remote.retry" => s.remote.1 += 1,
                "remote.breaker" => s.remote.2 += 1,
                _ => {}
            },
            _ => {}
        }
    }
    s.coverage_pct = coverage_pct(&mut intervals, s.wall_us);
    s
}

/// Percentage of `[0, wall]` covered by the union of the intervals.
fn coverage_pct(intervals: &mut [(u64, u64)], wall_us: u64) -> f64 {
    if wall_us == 0 {
        return 100.0;
    }
    intervals.sort_unstable();
    let mut covered = 0u64;
    let mut cursor = 0u64;
    for &(start, end) in intervals.iter() {
        let start = start.max(cursor);
        if end > start {
            covered += end - start;
            cursor = end;
        } else {
            cursor = cursor.max(end);
        }
    }
    covered as f64 * 100.0 / wall_us as f64
}

impl RunSummary {
    /// Renders the summary as the CLI's output lines.
    pub fn render(&self) -> Vec<String> {
        let mut out = Vec::new();
        let status = if self.torn {
            "TORN (crashed run)"
        } else {
            "ok"
        };
        out.push(format!(
            "run {} · {}{} · wall {} · span coverage {:.1}% · {status}",
            self.run_id,
            self.command,
            if self.workload.is_empty() {
                String::new()
            } else {
                format!(" {}", self.workload)
            },
            fmt_us(self.wall_us),
            self.coverage_pct,
        ));
        if !self.spans.is_empty() {
            out.push(format!(
                "  {:<44} {:>10} {:>7}  {}",
                "span", "time", "share", "outcome"
            ));
            for sp in &self.spans {
                let label = if sp.label.is_empty() {
                    sp.name.clone()
                } else {
                    format!("{} {}", sp.name, sp.label)
                };
                let share = if self.wall_us == 0 {
                    0.0
                } else {
                    sp.dur_us as f64 * 100.0 / self.wall_us as f64
                };
                let outcome = if sp.finished {
                    sp.outcome.clone()
                } else {
                    "UNFINISHED".to_owned()
                };
                out.push(format!(
                    "  {:<44} {:>10} {:>6.1}%  {}",
                    truncate(&label, 44),
                    fmt_us(sp.dur_us),
                    share,
                    outcome
                ));
            }
        }
        let (hits, misses) = self
            .cache
            .values()
            .fold((0, 0), |acc, (h, m)| (acc.0 + h, acc.1 + m));
        if hits + misses > 0 {
            out.push(format!("  cache: {hits} hit(s), {misses} miss(es)"));
            for (level, (h, m)) in &self.cache {
                out.push(format!(
                    "    {:<42} {h} hit(s), {m} miss(es)",
                    truncate(level, 42)
                ));
            }
        }
        if self.tasks_skipped + self.tasks_poisoned > 0 {
            out.push(format!(
                "  tasks: {} skipped up-to-date, {} poisoned",
                self.tasks_skipped, self.tasks_poisoned
            ));
        }
        if self.remote != (0, 0, 0) {
            out.push(format!(
                "  remote: {} request(s), {} retrie(s), {} breaker trip(s)",
                self.remote.0, self.remote.1, self.remote.2
            ));
        }
        if self.warnings > 0 {
            out.push(format!("  warnings: {}", self.warnings));
        }
        out
    }
}

fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_owned()
    } else {
        let cut: String = s.chars().take(max.saturating_sub(1)).collect();
        format!("{cut}…")
    }
}

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.3}s", us as f64 / 1_000_000.0)
    } else if us >= 1_000 {
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        format!("{us}µs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Args, Record};
    use std::path::PathBuf;

    fn args(pairs: &[(&str, &str)]) -> Args {
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect()
    }

    fn rec(seq: u64, t_us: u64, kind: RecordKind) -> Record {
        Record {
            seq,
            t_us,
            tid: 1,
            kind,
        }
    }

    #[test]
    fn summarizes_spans_cache_and_coverage() {
        let journal = Journal {
            path: PathBuf::from("journal.jsonl"),
            records: vec![
                rec(
                    0,
                    0,
                    RecordKind::Run {
                        name: "build".into(),
                        args: args(&[("run_id", "r9"), ("workload", "demo")]),
                    },
                ),
                rec(
                    1,
                    0,
                    RecordKind::SpanStart {
                        id: 1,
                        parent: None,
                        name: "task".into(),
                        args: args(&[("task", "img:demo/0")]),
                    },
                ),
                rec(
                    2,
                    10,
                    RecordKind::Instant {
                        name: "cache".into(),
                        args: args(&[("level", "demo/0"), ("hit", "false")]),
                    },
                ),
                rec(
                    3,
                    80,
                    RecordKind::SpanEnd {
                        id: 1,
                        args: args(&[("outcome", "executed")]),
                    },
                ),
                rec(
                    4,
                    80,
                    RecordKind::SpanStart {
                        id: 2,
                        parent: None,
                        name: "sim".into(),
                        args: args(&[("job", "demo"), ("backend", "qemu")]),
                    },
                ),
                rec(
                    5,
                    100,
                    RecordKind::SpanEnd {
                        id: 2,
                        args: Args::new(),
                    },
                ),
                rec(
                    6,
                    100,
                    RecordKind::Instant {
                        name: "cache".into(),
                        args: args(&[("level", "demo/0"), ("hit", "true")]),
                    },
                ),
            ],
            torn: false,
            torn_detail: None,
        };
        let s = summarize(&journal);
        assert_eq!(s.run_id, "r9");
        assert_eq!(s.command, "build");
        assert_eq!(s.workload, "demo");
        assert_eq!(s.wall_us, 100);
        assert_eq!(s.spans.len(), 2);
        assert_eq!(s.spans[0].label, "img:demo/0");
        assert_eq!(s.spans[0].dur_us, 80);
        assert_eq!(s.spans[0].outcome, "executed");
        assert_eq!(s.spans[1].label, "demo");
        assert_eq!(s.cache["demo/0"], (1, 1));
        assert!((s.coverage_pct - 100.0).abs() < 1e-9, "{}", s.coverage_pct);
        let lines = s.render();
        assert!(lines[0].contains("run r9"));
        assert!(lines.iter().any(|l| l.contains("img:demo/0")));
        assert!(lines.iter().any(|l| l.contains("1 hit(s), 1 miss(es)")));
    }

    #[test]
    fn coverage_does_not_double_count_overlap() {
        let mut overlapping = vec![(0, 60), (30, 80)];
        assert!((coverage_pct(&mut overlapping, 100) - 80.0).abs() < 1e-9);
        let mut gap = vec![(0, 20), (80, 100)];
        assert!((coverage_pct(&mut gap, 100) - 40.0).abs() < 1e-9);
        assert!((coverage_pct(&mut [], 0) - 100.0).abs() < 1e-9);
    }
}
