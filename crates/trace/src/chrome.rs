//! Chrome trace-event export: turns a journal into JSON that
//! `chrome://tracing` and Perfetto load directly.
//!
//! Spans become complete (`"ph":"X"`) events — matched start/end pairs by
//! span id — instants become `"ph":"i"`, counters `"ph":"C"`. A span left
//! open by a crash is emitted with the journal's last timestamp as its end
//! and an `unfinished` arg, so torn runs still render. Output is
//! deterministic for a given journal (golden-file tested).

use std::collections::BTreeMap;

use crate::journal::Journal;
use crate::json::Json;
use crate::record::{Args, RecordKind};

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn args_json(args: &Args) -> Json {
    Json::Obj(
        args.iter()
            .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
            .collect(),
    )
}

/// Renders the journal as a Chrome / Perfetto trace JSON document.
pub fn chrome_trace(journal: &Journal) -> String {
    let mut events: Vec<Json> = Vec::new();
    let process_name = match journal.records.first().map(|r| &r.kind) {
        Some(RecordKind::Run { name, args }) => {
            let run_id = args.get("run_id").map(String::as_str).unwrap_or("?");
            format!("marshal {name} ({run_id})")
        }
        _ => "marshal".to_owned(),
    };
    events.push(obj(vec![
        ("name", Json::Str("process_name".into())),
        ("ph", Json::Str("M".into())),
        ("pid", Json::Num(1.0)),
        ("tid", Json::Num(0.0)),
        ("args", obj(vec![("name", Json::Str(process_name))])),
    ]));

    // First pass: where every span ends (and with which closing args).
    let mut ends: BTreeMap<u64, (u64, &Args)> = BTreeMap::new();
    for rec in &journal.records {
        if let RecordKind::SpanEnd { id, args } = &rec.kind {
            ends.entry(*id).or_insert((rec.t_us, args));
        }
    }
    let last_t = journal.wall_us();
    static EMPTY: Args = Args::new();

    for rec in &journal.records {
        match &rec.kind {
            RecordKind::Run { .. } | RecordKind::SpanEnd { .. } => {}
            RecordKind::SpanStart { id, name, args, .. } => {
                let (end_t, end_args, finished) = match ends.get(id) {
                    Some((t, a)) => (*t, *a, true),
                    None => (last_t, &EMPTY, false),
                };
                let mut merged = args.clone();
                for (k, v) in end_args {
                    merged.insert(k.clone(), v.clone());
                }
                if !finished {
                    merged.insert("unfinished".to_owned(), "true".to_owned());
                }
                events.push(obj(vec![
                    ("name", Json::Str(name.clone())),
                    ("cat", Json::Str("marshal".into())),
                    ("ph", Json::Str("X".into())),
                    ("ts", Json::Num(rec.t_us as f64)),
                    ("dur", Json::Num(end_t.saturating_sub(rec.t_us) as f64)),
                    ("pid", Json::Num(1.0)),
                    ("tid", Json::Num(rec.tid as f64)),
                    ("args", args_json(&merged)),
                ]));
            }
            RecordKind::Instant { name, args } => {
                events.push(obj(vec![
                    ("name", Json::Str(name.clone())),
                    ("cat", Json::Str("marshal".into())),
                    ("ph", Json::Str("i".into())),
                    ("s", Json::Str("t".into())),
                    ("ts", Json::Num(rec.t_us as f64)),
                    ("pid", Json::Num(1.0)),
                    ("tid", Json::Num(rec.tid as f64)),
                    ("args", args_json(args)),
                ]));
            }
            RecordKind::Counter { name, value } => {
                events.push(obj(vec![
                    ("name", Json::Str(name.clone())),
                    ("ph", Json::Str("C".into())),
                    ("ts", Json::Num(rec.t_us as f64)),
                    ("pid", Json::Num(1.0)),
                    ("tid", Json::Num(rec.tid as f64)),
                    ("args", obj(vec![("value", Json::Num(*value as f64))])),
                ]));
            }
        }
    }
    obj(vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ms".into())),
    ])
    .encode()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;
    use std::path::PathBuf;

    fn journal_from(records: Vec<Record>) -> Journal {
        Journal {
            path: PathBuf::from("journal.jsonl"),
            records,
            torn: false,
            torn_detail: None,
        }
    }

    fn args(pairs: &[(&str, &str)]) -> Args {
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect()
    }

    #[test]
    fn spans_become_complete_events() {
        let j = journal_from(vec![
            Record {
                seq: 0,
                t_us: 0,
                tid: 1,
                kind: RecordKind::Run {
                    name: "build".into(),
                    args: args(&[("run_id", "r1")]),
                },
            },
            Record {
                seq: 1,
                t_us: 10,
                tid: 1,
                kind: RecordKind::SpanStart {
                    id: 1,
                    parent: None,
                    name: "task".into(),
                    args: args(&[("task", "a")]),
                },
            },
            Record {
                seq: 2,
                t_us: 60,
                tid: 1,
                kind: RecordKind::SpanEnd {
                    id: 1,
                    args: args(&[("outcome", "executed")]),
                },
            },
            Record {
                seq: 3,
                t_us: 70,
                tid: 2,
                kind: RecordKind::SpanStart {
                    id: 2,
                    parent: None,
                    name: "sim".into(),
                    args: Args::new(),
                },
            },
        ]);
        let text = chrome_trace(&j);
        let v = Json::parse(&text).unwrap();
        let Some(Json::Arr(events)) = v.get("traceEvents") else {
            panic!("traceEvents array");
        };
        assert_eq!(events.len(), 3, "metadata + 2 spans");
        let task = &events[1];
        assert_eq!(task.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(task.get("ts").unwrap().as_u64(), Some(10));
        assert_eq!(task.get("dur").unwrap().as_u64(), Some(50));
        assert_eq!(
            task.get("args").unwrap().get("outcome").unwrap().as_str(),
            Some("executed"),
            "end args merged into the complete event"
        );
        // The unclosed span is clamped to the journal's end and flagged.
        let sim = &events[2];
        assert_eq!(sim.get("dur").unwrap().as_u64(), Some(0));
        assert_eq!(
            sim.get("args").unwrap().get("unfinished").unwrap().as_str(),
            Some("true")
        );
    }
}
