//! The [`Recorder`]: a cheap clonable handle that streams events to a
//! dedicated writer thread, which persists them as the run's journal.
//!
//! Disabled recorders (the default) short-circuit on a single `Option`
//! check — no channel send, no allocation, no clock read — so instrumented
//! hot paths cost nothing when tracing is off. Enabled recorders stamp a
//! monotonic timestamp and a journal-local thread id, then push the event
//! into a mutex-buffered queue *without waking the writer* — a per-event
//! wakeup costs the instrumented thread a cross-thread context switch,
//! which measurably dominates journal overhead on fast launch loops. The
//! writer thread polls the queue on a short timeout, assigns sequence
//! numbers, seals each line with its checksum, and appends to
//! `workdir/runs/<run-id>/journal.jsonl`, flushing once per drained batch;
//! a crash loses at most the last poll interval's events (and the reader
//! discards a torn tail line). [`Recorder::finish`] drains everything
//! before returning, so completed runs are always whole.
//!
//! While a run is live, the recorder holds a pid pin under
//! `workdir/runs/.pins/` — the same advisory-pin mechanism the blob pool
//! uses — so `marshal clean --keep-runs` never prunes a journal that is
//! still being written.

use std::cell::Cell;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::record::{Args, Record, RecordKind};

/// Journal-local thread ids: assigned in first-emission order, starting at
/// 1, stable for the thread's lifetime.
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: Cell<u64> = const { Cell::new(0) };
}

fn local_tid() -> u64 {
    TID.with(|t| {
        let mut id = t.get();
        if id == 0 {
            id = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(id);
        }
        id
    })
}

/// Distinguishes concurrent recorders in one process (pin files, run ids).
static RUN_COUNTER: AtomicU64 = AtomicU64::new(0);

#[derive(Debug)]
enum Wire {
    Event {
        t_us: u64,
        tid: u64,
        kind: RecordKind,
    },
    Shutdown,
}

/// How long queued events may sit before the polling writer persists them —
/// the journal's crash-durability window.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// The sender/writer hand-off: senders push under the lock and return
/// immediately (no wakeup); the writer drains on [`POLL_INTERVAL`] polls.
/// The condvar is only signalled for shutdown, so the instrumented hot
/// path never pays a cross-thread wake.
#[derive(Debug)]
struct Queue {
    buf: Mutex<Vec<Wire>>,
    cv: Condvar,
    /// Set by the writer after an I/O error (or exit), so senders stop
    /// queueing into a buffer nobody will ever drain.
    dead: AtomicBool,
}

#[derive(Debug)]
struct Inner {
    queue: Arc<Queue>,
    epoch: Instant,
    next_span: AtomicU64,
    events_sent: AtomicU64,
    run_id: String,
    run_dir: PathBuf,
    pin_path: PathBuf,
    writer: Mutex<Option<std::thread::JoinHandle<u64>>>,
}

impl Drop for Inner {
    fn drop(&mut self) {
        // Last handle gone without finish(): tell the writer to drain and
        // exit rather than poll forever.
        self.queue.push(Wire::Shutdown);
        self.queue.cv.notify_one();
    }
}

impl Queue {
    fn push(&self, msg: Wire) {
        if self.dead.load(Ordering::Relaxed) {
            return;
        }
        self.buf.lock().expect("journal queue poisoned").push(msg);
    }
}

/// What [`Recorder::finish`] reports about a completed journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FinishedRun {
    /// The run id (`runs/<run-id>/`).
    pub run_id: String,
    /// The journal file.
    pub journal: PathBuf,
    /// Records written (including the header).
    pub events: u64,
}

/// A handle for recording events into a run journal. Cloning shares the
/// underlying channel; [`Recorder::disabled`] (and `Default`) record
/// nothing at all.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// A recorder that drops everything: every operation is a no-op after
    /// one `Option` check, and nothing touches the filesystem.
    pub fn disabled() -> Recorder {
        Recorder::default()
    }

    /// Creates a journal for a new run of `command` under
    /// `workdir/runs/<run-id>/` and starts its writer thread. `meta` lands
    /// in the header record alongside the generated `run_id` and the
    /// process id.
    ///
    /// # Errors
    ///
    /// I/O failures (directory or journal creation) as strings.
    pub fn create(
        workdir: &Path,
        command: &str,
        meta: &[(&str, &str)],
    ) -> Result<Recorder, String> {
        let runs = workdir.join("runs");
        let pid = std::process::id();
        let seq = RUN_COUNTER.fetch_add(1, Ordering::Relaxed);
        let unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis())
            .unwrap_or(0);
        // Zero-padded so lexicographic order is chronological order; pid
        // and an in-process counter keep concurrent runs distinct.
        let run_id = format!("r{unix_ms:013}-{pid}-{seq}");
        let run_dir = runs.join(&run_id);
        std::fs::create_dir_all(&run_dir)
            .map_err(|e| format!("mkdir {}: {e}", run_dir.display()))?;
        let journal = run_dir.join("journal.jsonl");
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&journal)
            .map_err(|e| format!("create {}: {e}", journal.display()))?;
        // Live-run pin, PoolPin-style: `<pid>-<seq>.pin` containing the
        // pid, swept by the same scan `clean` uses for the blob pool.
        let pins = runs.join(".pins");
        std::fs::create_dir_all(&pins).map_err(|e| format!("mkdir {}: {e}", pins.display()))?;
        let pin_path = pins.join(format!("{pid}-{seq}.pin"));
        std::fs::write(&pin_path, pid.to_string())
            .map_err(|e| format!("write {}: {e}", pin_path.display()))?;

        let queue = Arc::new(Queue {
            buf: Mutex::new(Vec::new()),
            cv: Condvar::new(),
            dead: AtomicBool::new(false),
        });
        let wq = Arc::clone(&queue);
        let writer = std::thread::spawn(move || {
            let mut out = std::io::BufWriter::new(file);
            let mut seq = 0u64;
            'drain: loop {
                let batch = {
                    let mut buf = wq.buf.lock().expect("journal queue poisoned");
                    while buf.is_empty() {
                        let (guard, _) = wq
                            .cv
                            .wait_timeout(buf, POLL_INTERVAL)
                            .expect("journal queue poisoned");
                        buf = guard;
                    }
                    std::mem::take(&mut *buf)
                };
                for msg in batch {
                    let Wire::Event { t_us, tid, kind } = msg else {
                        break 'drain;
                    };
                    let rec = Record {
                        seq,
                        t_us,
                        tid,
                        kind,
                    };
                    seq += 1;
                    let line = rec.encode();
                    if writeln!(out, "{line}").is_err() {
                        break 'drain;
                    }
                }
                if out.flush().is_err() {
                    break;
                }
            }
            wq.dead.store(true, Ordering::Relaxed);
            let _ = out.flush();
            seq
        });

        let mut args = Args::new();
        args.insert("run_id".to_owned(), run_id.clone());
        args.insert("pid".to_owned(), pid.to_string());
        args.insert("unix_ms".to_owned(), unix_ms.to_string());
        for (k, v) in meta {
            args.insert((*k).to_owned(), (*v).to_owned());
        }
        let rec = Recorder {
            inner: Some(Arc::new(Inner {
                queue,
                epoch: Instant::now(),
                next_span: AtomicU64::new(1),
                events_sent: AtomicU64::new(0),
                run_id,
                run_dir,
                pin_path,
                writer: Mutex::new(Some(writer)),
            })),
        };
        rec.emit(RecordKind::Run {
            name: command.to_owned(),
            args,
        });
        Ok(rec)
    }

    /// Whether events are being recorded.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The run id, when enabled.
    pub fn run_id(&self) -> Option<&str> {
        self.inner.as_ref().map(|i| i.run_id.as_str())
    }

    /// The run directory (`workdir/runs/<run-id>`), when enabled.
    pub fn run_dir(&self) -> Option<&Path> {
        self.inner.as_ref().map(|i| i.run_dir.as_path())
    }

    /// Events handed to the writer so far. Always 0 when disabled — the
    /// hot path performs no sends (asserted by the overhead tests).
    pub fn events_sent(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.events_sent.load(Ordering::Relaxed))
    }

    fn emit(&self, kind: RecordKind) {
        let Some(inner) = &self.inner else {
            return;
        };
        let t_us = inner.epoch.elapsed().as_micros() as u64;
        inner.events_sent.fetch_add(1, Ordering::Relaxed);
        // Queue without signalling: the writer's poll picks it up. Waking
        // the writer per event would cost this thread a context switch.
        inner.queue.push(Wire::Event {
            t_us,
            tid: local_tid(),
            kind,
        });
    }

    fn span_with_parent(&self, parent: Option<u64>, name: &str, args: &[(&str, &str)]) -> Span {
        let Some(inner) = &self.inner else {
            return Span {
                rec: Recorder::disabled(),
                id: 0,
                ended: true,
            };
        };
        let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        self.emit(RecordKind::SpanStart {
            id,
            parent,
            name: name.to_owned(),
            args: to_args(args),
        });
        Span {
            rec: self.clone(),
            id,
            ended: false,
        }
    }

    /// Opens a root span. Ends when the returned guard is dropped or
    /// explicitly [`Span::end_with`]-ed.
    pub fn span(&self, name: &str, args: &[(&str, &str)]) -> Span {
        self.span_with_parent(None, name, args)
    }

    /// Records a point event.
    pub fn instant(&self, name: &str, args: &[(&str, &str)]) {
        if self.inner.is_none() {
            return;
        }
        self.emit(RecordKind::Instant {
            name: name.to_owned(),
            args: to_args(args),
        });
    }

    /// Records a counter sample.
    pub fn counter(&self, name: &str, value: i64) {
        if self.inner.is_none() {
            return;
        }
        self.emit(RecordKind::Counter {
            name: name.to_owned(),
            value,
        });
    }

    /// Flushes and closes the journal: sends the shutdown sentinel, joins
    /// the writer thread, and releases the live-run pin. Returns what was
    /// written, or `None` for a disabled recorder (or a second finish).
    pub fn finish(&self) -> Option<FinishedRun> {
        let inner = self.inner.as_ref()?;
        let handle = inner.writer.lock().expect("writer lock poisoned").take()?;
        inner.queue.push(Wire::Shutdown);
        inner.queue.cv.notify_one();
        let events = handle.join().unwrap_or(0);
        let _ = std::fs::remove_file(&inner.pin_path);
        Some(FinishedRun {
            run_id: inner.run_id.clone(),
            journal: inner.run_dir.join("journal.jsonl"),
            events,
        })
    }
}

/// Typed payload helpers — the stable event schema. Every instrumented
/// layer goes through these so names and arg keys stay consistent (see
/// `docs/run-journal.md`).
impl Recorder {
    /// Span over one depgraph task action.
    pub fn task_span(&self, task: &str) -> Span {
        self.span("task", &[("task", task)])
    }

    /// A task skipped as up to date.
    pub fn task_skipped(&self, task: &str) {
        self.instant("task.skipped", &[("task", task)]);
    }

    /// A task never attempted because a dependency failed.
    pub fn task_poisoned(&self, task: &str) {
        self.instant("task.poisoned", &[("task", task)]);
    }

    /// A task runner died mid-build (transport lost, worker crashed).
    pub fn runner_lost(&self, runner: &str, reason: &str) {
        self.instant("runner.lost", &[("runner", runner), ("reason", reason)]);
    }

    /// A task requeued onto a surviving runner after its runner was lost.
    pub fn task_requeued(&self, task: &str) {
        self.instant("task.requeued", &[("task", task)]);
    }

    /// Level-image cache attribution (in-memory or manifest load).
    pub fn cache_event(&self, level: &str, hit: bool) {
        self.instant(
            "cache",
            &[
                ("level", level),
                ("hit", if hit { "true" } else { "false" }),
            ],
        );
    }

    /// Blob pool write: new payload bytes persisted for a level.
    pub fn blob_put(&self, level: &str, bytes: u64) {
        self.instant(
            "blob.put",
            &[("level", level), ("bytes", &bytes.to_string())],
        );
    }

    /// Blob pool read: payload bytes materialised for a level.
    pub fn blob_get(&self, level: &str, bytes: u64) {
        self.instant(
            "blob.get",
            &[("level", level), ("bytes", &bytes.to_string())],
        );
    }

    /// One remote request's outcome, after its retry loop.
    pub fn remote_request(&self, kind: &str, attempts: u64, outcome: &str) {
        self.instant(
            "remote.request",
            &[
                ("kind", kind),
                ("attempts", &attempts.to_string()),
                ("outcome", outcome),
            ],
        );
    }

    /// A retry of a remote request (attempt numbers start at 1).
    pub fn remote_retry(&self, kind: &str, attempt: u64) {
        self.instant(
            "remote.retry",
            &[("kind", kind), ("attempt", &attempt.to_string())],
        );
    }

    /// The client circuit breaker tripping open.
    pub fn breaker_trip(&self, failures: u64) {
        self.instant("remote.breaker", &[("failures", &failures.to_string())]);
    }

    /// Span over one simulator launch.
    pub fn sim_span(&self, backend: &str, job: &str) -> Span {
        self.span("sim", &[("backend", backend), ("job", job)])
    }

    /// The guest watchdog firing.
    pub fn watchdog_fired(&self, job: &str, instructions: u64) {
        self.instant(
            "watchdog",
            &[("job", job), ("instructions", &instructions.to_string())],
        );
    }

    /// A structured warning, mirrored into the journal.
    pub fn warning(&self, severity: &str, code: &str, context: &str, message: &str) {
        self.instant(
            "warning",
            &[
                ("severity", severity),
                ("code", code),
                ("context", context),
                ("message", message),
            ],
        );
    }
}

fn to_args(pairs: &[(&str, &str)]) -> Args {
    pairs
        .iter()
        .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
        .collect()
}

/// An open span. Dropping the guard closes the span with no extra
/// attributes; [`Span::end_with`] closes it with attributes (outcome,
/// byte counts, wait times).
#[derive(Debug)]
pub struct Span {
    rec: Recorder,
    id: u64,
    ended: bool,
}

impl Span {
    /// The span id (0 for a disabled recorder's spans).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Opens a child span.
    pub fn child(&self, name: &str, args: &[(&str, &str)]) -> Span {
        if self.rec.inner.is_none() {
            return Span {
                rec: Recorder::disabled(),
                id: 0,
                ended: true,
            };
        }
        self.rec.span_with_parent(Some(self.id), name, args)
    }

    /// Closes the span with closing attributes.
    pub fn end_with(mut self, args: &[(&str, &str)]) {
        if self.ended {
            return;
        }
        self.ended = true;
        self.rec.emit(RecordKind::SpanEnd {
            id: self.id,
            args: to_args(args),
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.ended {
            return;
        }
        self.ended = true;
        self.rec.emit(RecordKind::SpanEnd {
            id: self.id,
            args: Args::new(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::read_journal;

    fn scratch(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("marshal-trace-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.enabled());
        let span = rec.span("task", &[("task", "t")]);
        assert_eq!(span.id(), 0);
        let child = span.child("inner", &[]);
        drop(child);
        span.end_with(&[("outcome", "ok")]);
        rec.instant("cache", &[("hit", "true")]);
        rec.counter("busy", 1);
        rec.cache_event("lvl", true);
        assert_eq!(rec.events_sent(), 0, "no sends on the disabled hot path");
        assert!(rec.finish().is_none());
        assert!(rec.run_id().is_none());
    }

    #[test]
    fn records_roundtrip_through_journal() {
        let dir = scratch("roundtrip");
        let rec = Recorder::create(&dir, "build", &[("workload", "demo")]).unwrap();
        assert!(rec.enabled());
        let span = rec.task_span("img:demo/0");
        rec.cache_event("demo/0", false);
        let child = span.child("store", &[]);
        child.end_with(&[("bytes", "128")]);
        span.end_with(&[("outcome", "executed")]);
        rec.counter("busy", 2);
        let done = rec.finish().expect("finished");
        assert_eq!(done.events, rec.events_sent());
        let journal = read_journal(&done.journal).unwrap();
        assert!(!journal.torn);
        assert_eq!(journal.records.len() as u64, done.events);
        // Header first, then strictly increasing seq and monotone time.
        let header = &journal.records[0];
        assert!(matches!(&header.kind, RecordKind::Run { name, .. } if name == "build"));
        assert_eq!(
            header.args().unwrap().get("workload").map(String::as_str),
            Some("demo")
        );
        for (i, r) in journal.records.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
        }
        for pair in journal.records.windows(2) {
            assert!(pair[1].t_us >= pair[0].t_us, "monotonic timestamps");
        }
        // The pin was released on finish.
        let pins: Vec<_> = std::fs::read_dir(dir.join("runs").join(".pins"))
            .map(|d| d.filter_map(Result::ok).collect())
            .unwrap_or_default();
        assert!(pins.is_empty(), "pin released on finish");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn live_run_holds_a_pin() {
        let dir = scratch("pin");
        let rec = Recorder::create(&dir, "build", &[]).unwrap();
        let pins: Vec<_> = std::fs::read_dir(dir.join("runs").join(".pins"))
            .unwrap()
            .filter_map(Result::ok)
            .collect();
        assert_eq!(pins.len(), 1);
        let content = std::fs::read_to_string(pins[0].path()).unwrap();
        assert_eq!(content, std::process::id().to_string());
        rec.finish();
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn double_finish_is_harmless() {
        let dir = scratch("double");
        let rec = Recorder::create(&dir, "test", &[]).unwrap();
        assert!(rec.finish().is_some());
        assert!(rec.finish().is_none());
        std::fs::remove_dir_all(dir).unwrap();
    }
}
