//! Reading journals back: torn-tail-tolerant parsing and run discovery.

use std::path::{Path, PathBuf};

use crate::record::{Record, RecordKind};

/// A parsed journal: the verified record prefix plus what (if anything)
/// was wrong with the tail.
#[derive(Debug, Clone)]
pub struct Journal {
    /// The journal file this came from.
    pub path: PathBuf,
    /// Verified records, in sequence order.
    pub records: Vec<Record>,
    /// Whether the file ended in an unverifiable line — the signature of a
    /// run that died mid-write. The records above are still trustworthy.
    pub torn: bool,
    /// Why the tail was rejected, when [`Journal::torn`].
    pub torn_detail: Option<String>,
}

impl Journal {
    /// The header record's args value for `key`, if present.
    pub fn header_arg(&self, key: &str) -> Option<&str> {
        match self.records.first().map(|r| &r.kind) {
            Some(RecordKind::Run { args, .. }) => args.get(key).map(String::as_str),
            _ => None,
        }
    }

    /// The command recorded in the header (`build`, `test`, …).
    pub fn command(&self) -> Option<&str> {
        match self.records.first().map(|r| &r.kind) {
            Some(RecordKind::Run { name, .. }) => Some(name),
            _ => None,
        }
    }

    /// Microseconds covered by the journal (timestamp of the last record).
    pub fn wall_us(&self) -> u64 {
        self.records.last().map_or(0, |r| r.t_us)
    }
}

/// Reads a journal, keeping the longest verifiable prefix. A torn or
/// corrupt tail sets [`Journal::torn`] instead of failing — mirroring how
/// `state.db` treats damage as recoverable, not fatal.
///
/// # Errors
///
/// Only real I/O failures (the file missing or unreadable).
pub fn read_journal(path: &Path) -> Result<Journal, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let mut journal = Journal {
        path: path.to_path_buf(),
        records: Vec::new(),
        torn: false,
        torn_detail: None,
    };
    let mut expected_seq = 0u64;
    for (no, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        match Record::decode(line) {
            Ok(rec) if rec.seq == expected_seq => {
                expected_seq += 1;
                journal.records.push(rec);
            }
            Ok(rec) => {
                journal.torn = true;
                journal.torn_detail = Some(format!(
                    "line {}: sequence jump (expected {expected_seq}, found {})",
                    no + 1,
                    rec.seq
                ));
                break;
            }
            Err(e) => {
                journal.torn = true;
                journal.torn_detail = Some(format!("line {}: {e}", no + 1));
                break;
            }
        }
    }
    // Bytes after the first bad line are untrustworthy by construction
    // (append-only file): everything from the tear on is discarded.
    Ok(journal)
}

/// One discovered run under `workdir/runs/`.
#[derive(Debug, Clone)]
pub struct RunInfo {
    /// The run id (directory name).
    pub run_id: String,
    /// The journal path.
    pub journal: PathBuf,
    /// The command that produced the run, when the header survived.
    pub command: Option<String>,
    /// The workload named in the header, if any.
    pub workload: Option<String>,
    /// Wall-clock start in unix milliseconds, from the header.
    pub unix_ms: Option<u64>,
    /// Records in the verified prefix.
    pub events: usize,
    /// Whether the journal tail was torn.
    pub torn: bool,
}

/// Lists journal runs under `workdir/runs/`, oldest first (run ids embed a
/// zero-padded timestamp, so lexicographic order is chronological).
/// Directories without a `journal.jsonl` — per-workload launch outputs
/// share `runs/` — are ignored.
pub fn list_runs(workdir: &Path) -> Vec<RunInfo> {
    let runs = workdir.join("runs");
    let Ok(entries) = std::fs::read_dir(&runs) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for entry in entries.filter_map(Result::ok) {
        let dir = entry.path();
        let journal_path = dir.join("journal.jsonl");
        if !journal_path.is_file() {
            continue;
        }
        let Ok(journal) = read_journal(&journal_path) else {
            continue;
        };
        out.push(RunInfo {
            run_id: entry.file_name().to_string_lossy().into_owned(),
            journal: journal_path,
            command: journal.command().map(str::to_owned),
            workload: journal.header_arg("workload").map(str::to_owned),
            unix_ms: journal.header_arg("unix_ms").and_then(|s| s.parse().ok()),
            events: journal.records.len(),
            torn: journal.torn,
        });
    }
    out.sort_by(|a, b| a.run_id.cmp(&b.run_id));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    fn scratch(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("marshal-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn write_run(dir: &Path, command: &str) -> PathBuf {
        let rec = Recorder::create(dir, command, &[("workload", "demo")]).unwrap();
        let span = rec.task_span("img:demo/0");
        span.end_with(&[("outcome", "executed")]);
        rec.finish().unwrap().journal
    }

    #[test]
    fn torn_tail_keeps_prefix() {
        let dir = scratch("torn");
        let journal = write_run(&dir, "build");
        let text = std::fs::read_to_string(&journal).unwrap();
        let full = read_journal(&journal).unwrap();
        assert!(!full.torn);
        // Tear the file mid-final-line, as a crash during append would.
        let cut = text.trim_end().len() - 7;
        std::fs::write(&journal, &text.as_bytes()[..cut]).unwrap();
        let torn = read_journal(&journal).unwrap();
        assert!(torn.torn);
        assert!(torn.torn_detail.is_some());
        assert_eq!(torn.records.len(), full.records.len() - 1);
        assert_eq!(torn.command(), Some("build"));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn sequence_jump_is_a_tear() {
        let dir = scratch("seqjump");
        let journal = write_run(&dir, "build");
        let text = std::fs::read_to_string(&journal).unwrap();
        // Drop a middle line entirely: every remaining line verifies, but
        // the sequence gap gives the damage away.
        let lines: Vec<&str> = text.lines().collect();
        let patched = format!("{}\n{}\n", lines[0], lines[2]);
        std::fs::write(&journal, patched).unwrap();
        let j = read_journal(&journal).unwrap();
        assert!(j.torn);
        assert_eq!(j.records.len(), 1);
        assert!(j.torn_detail.unwrap().contains("sequence jump"));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn list_runs_skips_workload_output_dirs() {
        let dir = scratch("list");
        write_run(&dir, "build");
        write_run(&dir, "test");
        // A per-workload launch-output directory (no journal) is ignored.
        std::fs::create_dir_all(dir.join("runs").join("br-base").join("hello")).unwrap();
        let runs = list_runs(&dir);
        assert_eq!(runs.len(), 2);
        assert!(runs[0].run_id <= runs[1].run_id, "oldest first");
        assert_eq!(runs[0].command.as_deref(), Some("build"));
        assert_eq!(runs[1].command.as_deref(), Some("test"));
        assert_eq!(runs[0].workload.as_deref(), Some("demo"));
        assert!(runs.iter().all(|r| !r.torn));
        std::fs::remove_dir_all(dir).unwrap();
    }
}
