//! Property-based tests for mscript: the parser never panics, evaluation
//! is deterministic, and arithmetic matches Rust semantics.
//!
//! Uses the in-repo `marshal-qcheck` harness (offline build environment);
//! every case derives from a fixed seed and replays deterministically.

use marshal_qcheck::cases;
use marshal_script::{Interp, NoExtern, Value};

/// The lexer/parser are total: any input is either parsed or rejected
/// with an error, never a panic.
#[test]
fn parser_never_panics() {
    cases(512, |rng| {
        let src = rng.printable(0, 128);
        let _ = marshal_script::parse::parse(&src);
    });
}

/// Structured fuzz: statements assembled from fragments never panic
/// the interpreter (errors are fine).
#[test]
fn interp_never_panics() {
    let fixed = [
        "let x = 1",
        "x = x + 1",
        "print(x)",
        "if x > 2 { x = 0 }",
        "while x < 3 { x = x + 1 }",
        "let l = [1, 2, 3]",
        "l = push(l, x)",
        "undefined_thing()",
        "x = l[9]",
        "x = 1 / 0",
    ];
    cases(256, |rng| {
        let src: Vec<String> = (0..rng.range_usize(0, 12))
            .map(|_| {
                if rng.range_u64(0, 11) == 10 {
                    format!("x = {}", rng.range_i64(0, 100))
                } else {
                    (*rng.pick(&fixed)).to_owned()
                }
            })
            .collect();
        let src = src.join("\n");
        let mut i = Interp::with_max_steps(100_000);
        let _ = i.run(&src, &mut NoExtern, &[]);
    });
}

/// Integer arithmetic agrees with Rust's wrapping semantics.
#[test]
fn arithmetic_matches_rust() {
    cases(256, |rng| {
        let a = rng.range_i64(-10_000, 10_000);
        let b = rng.range_i64(-10_000, 10_000);
        let mut i = Interp::new();
        let v = i
            .run(&format!("{a} + {b} * 2 - ({a} - {b})"), &mut NoExtern, &[])
            .unwrap();
        assert_eq!(v, Value::Int(a + b * 2 - (a - b)));
    });
}

/// String builtins roundtrip: join(split(s, sep), sep) == s.
#[test]
fn split_join_roundtrip() {
    cases(256, |rng| {
        let parts: Vec<String> = (0..rng.range_usize(1, 6))
            .map(|_| rng.string_of("abcdefghijklmnopqrstuvwxyz0123456789", 0, 7))
            .collect();
        let s = parts.join(",");
        let mut i = Interp::new();
        let v = i
            .run(
                &format!("join(split(\"{s}\", \",\"), \",\")"),
                &mut NoExtern,
                &[],
            )
            .unwrap();
        assert_eq!(v, Value::Str(s));
    });
}

/// Evaluation is deterministic: same program, same output.
#[test]
fn evaluation_deterministic() {
    cases(64, |rng| {
        let seed = rng.range_u64(0, 10_000);
        let src = format!(
            r#"
            let state = {seed}
            let out = []
            for i in range(20) {{
                state = state * 6364136223846793005 + 1442695040888963407
                out = push(out, state % 97)
            }}
            out
            "#
        );
        let run = || {
            let mut i = Interp::new();
            i.run(&src, &mut NoExtern, &[]).unwrap()
        };
        assert_eq!(run(), run());
    });
}

/// The step budget always terminates nested loops.
#[test]
fn budget_always_terminates() {
    cases(16, |rng| {
        let n = rng.range_u64(1, 5);
        let src = "while true { let x = 1 }";
        let mut i = Interp::with_max_steps(n * 1000);
        let err = i.run(src, &mut NoExtern, &[]).unwrap_err();
        assert!(err.message.contains("step budget"));
    });
}
