//! Property-based tests for mscript: the parser never panics, evaluation
//! is deterministic, and arithmetic matches Rust semantics.

use proptest::prelude::*;

use marshal_script::{Interp, NoExtern, Value};

proptest! {
    /// The lexer/parser are total: any input is either parsed or rejected
    /// with an error, never a panic.
    #[test]
    fn parser_never_panics(src in "\\PC{0,128}") {
        let _ = marshal_script::parse::parse(&src);
    }

    /// Structured fuzz: statements assembled from fragments never panic
    /// the interpreter (errors are fine).
    #[test]
    fn interp_never_panics(
        fragments in proptest::collection::vec(
            prop_oneof![
                Just("let x = 1".to_owned()),
                Just("x = x + 1".to_owned()),
                Just("print(x)".to_owned()),
                Just("if x > 2 { x = 0 }".to_owned()),
                Just("while x < 3 { x = x + 1 }".to_owned()),
                Just("let l = [1, 2, 3]".to_owned()),
                Just("l = push(l, x)".to_owned()),
                Just("undefined_thing()".to_owned()),
                Just("x = l[9]".to_owned()),
                Just("x = 1 / 0".to_owned()),
                (0i64..100).prop_map(|n| format!("x = {n}")),
            ],
            0..12,
        )
    ) {
        let src = fragments.join("\n");
        let mut i = Interp::with_max_steps(100_000);
        let _ = i.run(&src, &mut NoExtern, &[]);
    }

    /// Integer arithmetic agrees with Rust's wrapping semantics.
    #[test]
    fn arithmetic_matches_rust(a in -10_000i64..10_000, b in -10_000i64..10_000) {
        let mut i = Interp::new();
        let v = i
            .run(&format!("{a} + {b} * 2 - ({a} - {b})"), &mut NoExtern, &[])
            .unwrap();
        prop_assert_eq!(v, Value::Int(a + b * 2 - (a - b)));
    }

    /// String builtins roundtrip: join(split(s, sep), sep) == s when s has
    /// no leading/trailing separators issues (identity holds generally for
    /// split/join pairs).
    #[test]
    fn split_join_roundtrip(parts in proptest::collection::vec("[a-z0-9]{0,6}", 1..6)) {
        let s = parts.join(",");
        let mut i = Interp::new();
        let v = i
            .run(
                &format!("join(split(\"{s}\", \",\"), \",\")"),
                &mut NoExtern,
                &[],
            )
            .unwrap();
        prop_assert_eq!(v, Value::Str(s));
    }

    /// Evaluation is deterministic: same program, same output.
    #[test]
    fn evaluation_deterministic(seed in 0u64..10_000) {
        let src = format!(
            r#"
            let state = {seed}
            let out = []
            for i in range(20) {{
                state = state * 6364136223846793005 + 1442695040888963407
                out = push(out, state % 97)
            }}
            out
            "#
        );
        let run = || {
            let mut i = Interp::new();
            i.run(&src, &mut NoExtern, &[]).unwrap()
        };
        prop_assert_eq!(run(), run());
    }

    /// The step budget always terminates nested loops.
    #[test]
    fn budget_always_terminates(n in 1u64..5) {
        let src = "while true { let x = 1 }";
        let mut i = Interp::with_max_steps(n * 1000);
        let err = i.run(src, &mut NoExtern, &[]).unwrap_err();
        prop_assert!(err.message.contains("step budget"));
    }
}
