//! The host-side script environment.
//!
//! `host-init` and `post-run-hook` scripts run on the build machine with
//! access to a sandboxed directory tree (the workload directory or the run
//! output directory) and — crucially — the cross-compiler: `assemble()`
//! plays the role Speckle/GCC played in the paper's workloads, turning
//! benchmark assembly sources into guest binaries at build time.

use std::path::{Path, PathBuf};

use marshal_isa::abi;
use marshal_isa::asm::assemble;

use crate::interp::{Extern, ExternResult, Value};

/// Host environment: sandboxed file access plus cross-compilation.
///
/// All paths are interpreted relative to the sandbox root; absolute paths
/// and `..` components are rejected.
///
/// ```rust
/// use marshal_script::{HostEnv, Interp, Value};
/// # let dir = std::env::temp_dir().join(format!("hostenv-doc-{}", std::process::id()));
/// # std::fs::create_dir_all(&dir).unwrap();
/// let mut env = HostEnv::new(&dir);
/// let mut interp = Interp::new();
/// interp
///     .run(r#"write_file("hello.txt", "hi") print(read_file("hello.txt"))"#, &mut env, &[])
///     .unwrap();
/// # std::fs::remove_dir_all(&dir).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct HostEnv {
    root: PathBuf,
    /// Lines printed by the script (host scripts print to the build log).
    pub log: Vec<String>,
}

impl HostEnv {
    /// Creates a host environment rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> HostEnv {
        HostEnv {
            root: root.into(),
            log: Vec::new(),
        }
    }

    /// The sandbox root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn resolve(&self, rel: &str) -> Result<PathBuf, String> {
        let p = Path::new(rel);
        if p.is_absolute() {
            return Err(format!("absolute paths not allowed in host scripts: {rel}"));
        }
        for comp in p.components() {
            if matches!(comp, std::path::Component::ParentDir) {
                return Err(format!("`..` not allowed in host scripts: {rel}"));
            }
        }
        Ok(self.root.join(p))
    }

    fn str_arg<'a>(&self, args: &'a [Value], i: usize, name: &str) -> Result<&'a str, String> {
        match args.get(i) {
            Some(Value::Str(s)) => Ok(s),
            other => Err(format!(
                "{name}: argument {i} must be a string, got {:?}",
                other.map(Value::type_name)
            )),
        }
    }
}

impl Extern for HostEnv {
    fn call(&mut self, name: &str, args: &[Value]) -> ExternResult {
        let result = (|| -> Result<Option<Value>, String> {
            match name {
                "print" => {
                    self.log
                        .push(args.iter().map(Value::render).collect::<Vec<_>>().join(" "));
                    Ok(Some(Value::Null))
                }
                "read_file" => {
                    let path = self.resolve(self.str_arg(args, 0, name)?)?;
                    let text = std::fs::read_to_string(&path)
                        .map_err(|e| format!("read {}: {e}", path.display()))?;
                    Ok(Some(Value::Str(text)))
                }
                "write_file" => {
                    let path = self.resolve(self.str_arg(args, 0, name)?)?;
                    let text = self.str_arg(args, 1, name)?;
                    if let Some(parent) = path.parent() {
                        std::fs::create_dir_all(parent)
                            .map_err(|e| format!("mkdir {}: {e}", parent.display()))?;
                    }
                    std::fs::write(&path, text)
                        .map_err(|e| format!("write {}: {e}", path.display()))?;
                    Ok(Some(Value::Null))
                }
                "append_file" => {
                    let path = self.resolve(self.str_arg(args, 0, name)?)?;
                    let text = self.str_arg(args, 1, name)?;
                    let mut existing = if path.exists() {
                        std::fs::read_to_string(&path)
                            .map_err(|e| format!("read {}: {e}", path.display()))?
                    } else {
                        if let Some(parent) = path.parent() {
                            std::fs::create_dir_all(parent)
                                .map_err(|e| format!("mkdir {}: {e}", parent.display()))?;
                        }
                        String::new()
                    };
                    existing.push_str(text);
                    std::fs::write(&path, existing)
                        .map_err(|e| format!("write {}: {e}", path.display()))?;
                    Ok(Some(Value::Null))
                }
                "exists" => {
                    let path = self.resolve(self.str_arg(args, 0, name)?)?;
                    Ok(Some(Value::Bool(path.exists())))
                }
                "mkdir" => {
                    let path = self.resolve(self.str_arg(args, 0, name)?)?;
                    std::fs::create_dir_all(&path)
                        .map_err(|e| format!("mkdir {}: {e}", path.display()))?;
                    Ok(Some(Value::Null))
                }
                "list_dir" => {
                    let path = self.resolve(self.str_arg(args, 0, name)?)?;
                    let mut names: Vec<String> = std::fs::read_dir(&path)
                        .map_err(|e| format!("list {}: {e}", path.display()))?
                        .filter_map(Result::ok)
                        .map(|e| e.file_name().to_string_lossy().into_owned())
                        .collect();
                    names.sort();
                    Ok(Some(Value::List(
                        names.into_iter().map(Value::Str).collect(),
                    )))
                }
                "copy" => {
                    let src = self.resolve(self.str_arg(args, 0, name)?)?;
                    let dst = self.resolve(self.str_arg(args, 1, name)?)?;
                    if let Some(parent) = dst.parent() {
                        std::fs::create_dir_all(parent)
                            .map_err(|e| format!("mkdir {}: {e}", parent.display()))?;
                    }
                    std::fs::copy(&src, &dst)
                        .map_err(|e| format!("copy {} -> {}: {e}", src.display(), dst.display()))?;
                    Ok(Some(Value::Null))
                }
                // Cross-compilation: the Speckle substitute. Assembles a
                // guest program source into a MEXE binary.
                "assemble" => {
                    let src_path = self.resolve(self.str_arg(args, 0, name)?)?;
                    let out_rel = self.str_arg(args, 1, name)?;
                    let out_path = self.resolve(out_rel)?;
                    let source = std::fs::read_to_string(&src_path)
                        .map_err(|e| format!("read {}: {e}", src_path.display()))?;
                    let exe = assemble(&source, abi::USER_BASE)
                        .map_err(|e| format!("assemble {}: {e}", src_path.display()))?;
                    if let Some(parent) = out_path.parent() {
                        std::fs::create_dir_all(parent)
                            .map_err(|e| format!("mkdir {}: {e}", parent.display()))?;
                    }
                    std::fs::write(&out_path, exe.to_bytes())
                        .map_err(|e| format!("write {}: {e}", out_path.display()))?;
                    Ok(Some(Value::Null))
                }
                "assemble_str" => {
                    let source = self.str_arg(args, 0, name)?;
                    let out_path = self.resolve(self.str_arg(args, 1, name)?)?;
                    let exe =
                        assemble(source, abi::USER_BASE).map_err(|e| format!("assemble: {e}"))?;
                    if let Some(parent) = out_path.parent() {
                        std::fs::create_dir_all(parent)
                            .map_err(|e| format!("mkdir {}: {e}", parent.display()))?;
                    }
                    std::fs::write(&out_path, exe.to_bytes())
                        .map_err(|e| format!("write {}: {e}", out_path.display()))?;
                    Ok(Some(Value::Null))
                }
                _ => Ok(None),
            }
        })();
        match result {
            Ok(Some(v)) => ExternResult::Value(v),
            Ok(None) => ExternResult::NotHandled,
            Err(m) => ExternResult::Err(m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interp;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("marshal-hostenv-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn file_roundtrip_and_log() {
        let dir = tmpdir("roundtrip");
        let mut env = HostEnv::new(&dir);
        let mut i = Interp::new();
        i.run(
            r#"
            write_file("sub/a.txt", "hello")
            append_file("sub/a.txt", " world")
            print(read_file("sub/a.txt"))
            print(exists("sub/a.txt"), exists("nope"))
        "#,
            &mut env,
            &[],
        )
        .unwrap();
        assert_eq!(env.log, vec!["hello world", "true false"]);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn sandbox_escapes_rejected() {
        let dir = tmpdir("sandbox");
        let mut env = HostEnv::new(&dir);
        let mut i = Interp::new();
        assert!(i.run(r#"read_file("/etc/passwd")"#, &mut env, &[]).is_err());
        assert!(i
            .run(r#"read_file("../outside.txt")"#, &mut env, &[])
            .is_err());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn assemble_produces_mexe() {
        let dir = tmpdir("assemble");
        std::fs::write(
            dir.join("prog.s"),
            "_start:\n li a0, 9\n li a7, 93\n ecall\n",
        )
        .unwrap();
        let mut env = HostEnv::new(&dir);
        let mut i = Interp::new();
        i.run(r#"assemble("prog.s", "overlay/bin/prog")"#, &mut env, &[])
            .unwrap();
        let bytes = std::fs::read(dir.join("overlay/bin/prog")).unwrap();
        assert!(marshal_isa::MexeFile::sniff(&bytes));
        let exe = marshal_isa::MexeFile::from_bytes(&bytes).unwrap();
        assert_eq!(exe.entry(), abi::USER_BASE);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn assemble_errors_propagate() {
        let dir = tmpdir("asm-err");
        std::fs::write(dir.join("bad.s"), "bogus instruction\n").unwrap();
        let mut env = HostEnv::new(&dir);
        let mut i = Interp::new();
        let err = i
            .run(r#"assemble("bad.s", "out")"#, &mut env, &[])
            .unwrap_err();
        assert!(err.message.contains("assemble"));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn list_and_copy() {
        let dir = tmpdir("listcopy");
        let mut env = HostEnv::new(&dir);
        let mut i = Interp::new();
        let v = i
            .run(
                r#"
            write_file("x/b.txt", "B")
            write_file("x/a.txt", "A")
            copy("x/a.txt", "y/a2.txt")
            list_dir("x")
        "#,
                &mut env,
                &[],
            )
            .unwrap();
        assert_eq!(
            v,
            Value::List(vec![Value::Str("a.txt".into()), Value::Str("b.txt".into())])
        );
        assert_eq!(std::fs::read_to_string(dir.join("y/a2.txt")).unwrap(), "A");
        std::fs::remove_dir_all(dir).unwrap();
    }
}
