//! The mscript abstract syntax tree.

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum UnOp {
    Neg,
    Not,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// String literal.
    Str(String),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
    /// Variable reference.
    Var(String),
    /// List literal `[a, b, c]`.
    List(Vec<Expr>),
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Un {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Indexing `base[index]`.
    Index {
        /// The indexed expression.
        base: Box<Expr>,
        /// The index.
        index: Box<Expr>,
    },
    /// Function or builtin call.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source line (for error messages).
        line: usize,
    },
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let name = expr`.
    Let {
        /// Variable name.
        name: String,
        /// Initialiser.
        value: Expr,
    },
    /// `name = expr`.
    Assign {
        /// Variable name.
        name: String,
        /// New value.
        value: Expr,
    },
    /// `base[index] = expr`.
    IndexAssign {
        /// Variable being indexed.
        name: String,
        /// Index expression.
        index: Expr,
        /// New value.
        value: Expr,
    },
    /// `if cond { .. } else { .. }` (else-if chains nest in `otherwise`).
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then: Vec<Stmt>,
        /// Else-branch.
        otherwise: Vec<Stmt>,
    },
    /// `while cond { .. }`.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `for name in expr { .. }`.
    For {
        /// Loop variable.
        name: String,
        /// Iterated expression (list or string).
        iter: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `fn name(params) { .. }`.
    Fn {
        /// Function name.
        name: String,
        /// Parameter names.
        params: Vec<String>,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `return expr?`.
    Return(Option<Expr>),
    /// `break`.
    Break,
    /// `continue`.
    Continue,
    /// Bare expression (value of the last one is the script result).
    Expr(Expr),
}
