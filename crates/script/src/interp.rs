//! The mscript tree-walking interpreter.

use std::collections::BTreeMap;
use std::fmt;

use crate::ast::{BinOp, Expr, Stmt, UnOp};
use crate::parse::parse;

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// Null.
    Null,
    /// List.
    List(Vec<Value>),
    /// String-keyed map.
    Map(BTreeMap<String, Value>),
}

impl Value {
    /// Renders the value the way `str()` and `print()` do.
    pub fn render(&self) -> String {
        match self {
            Value::Int(v) => v.to_string(),
            Value::Str(s) => s.clone(),
            Value::Bool(b) => b.to_string(),
            Value::Null => "null".to_owned(),
            Value::List(items) => {
                let inner: Vec<String> = items.iter().map(render_quoted).collect();
                format!("[{}]", inner.join(", "))
            }
            Value::Map(m) => {
                let inner: Vec<String> = m
                    .iter()
                    .map(|(k, v)| format!("{k}: {}", render_quoted(v)))
                    .collect();
                format!("{{{}}}", inner.join(", "))
            }
        }
    }

    /// The value's type name (`int`, `str`, `bool`, `null`, `list`, `map`).
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Str(_) => "str",
            Value::Bool(_) => "bool",
            Value::Null => "null",
            Value::List(_) => "list",
            Value::Map(_) => "map",
        }
    }

    /// Truthiness: `false`, `0`, `""`, `null`, `[]`, `{}` are false.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Int(v) => *v != 0,
            Value::Str(s) => !s.is_empty(),
            Value::Null => false,
            Value::List(l) => !l.is_empty(),
            Value::Map(m) => !m.is_empty(),
        }
    }
}

fn render_quoted(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("\"{s}\""),
        other => other.render(),
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

/// A runtime error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptError {
    /// Source line when known.
    pub line: Option<usize>,
    /// Description.
    pub message: String,
}

impl ScriptError {
    /// Creates an error without line information.
    pub fn msg(message: impl Into<String>) -> ScriptError {
        ScriptError {
            line: None,
            message: message.into(),
        }
    }
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(f, "script error at line {line}: {}", self.message),
            None => write!(f, "script error: {}", self.message),
        }
    }
}

impl std::error::Error for ScriptError {}

impl From<crate::parse::ParseError> for ScriptError {
    fn from(e: crate::parse::ParseError) -> ScriptError {
        ScriptError {
            line: Some(e.line),
            message: e.message,
        }
    }
}

/// Result of an [`Extern`] call.
#[derive(Debug, Clone, PartialEq)]
pub enum ExternResult {
    /// The extern does not implement this builtin; fall through to the
    /// common library.
    NotHandled,
    /// Success.
    Value(Value),
    /// Failure (aborts the script).
    Err(String),
}

/// Environment-specific capabilities injected into a script run.
///
/// The host build environment implements file access and cross-compilation;
/// the guest environment implements serial output and program execution.
pub trait Extern {
    /// Attempts to handle a builtin call.
    fn call(&mut self, name: &str, args: &[Value]) -> ExternResult;
}

/// An [`Extern`] that provides nothing — pure computation only.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoExtern;

impl Extern for NoExtern {
    fn call(&mut self, _name: &str, _args: &[Value]) -> ExternResult {
        ExternResult::NotHandled
    }
}

enum Flow {
    Normal(Value),
    Return(Value),
    Break,
    Continue,
}

/// The mscript interpreter.
///
/// Execution is bounded by a step budget (default 50 million) so scripts
/// terminate deterministically even when buggy.
#[derive(Debug)]
pub struct Interp {
    globals: BTreeMap<String, Value>,
    fns: BTreeMap<String, (Vec<String>, Vec<Stmt>)>,
    output: Vec<String>,
    args: Vec<Value>,
    steps: u64,
    max_steps: u64,
}

impl Default for Interp {
    fn default() -> Interp {
        Interp::new()
    }
}

impl Interp {
    /// Creates an interpreter with the default step budget.
    pub fn new() -> Interp {
        Interp::with_max_steps(50_000_000)
    }

    /// Creates an interpreter with an explicit step budget.
    pub fn with_max_steps(max_steps: u64) -> Interp {
        Interp {
            globals: BTreeMap::new(),
            fns: BTreeMap::new(),
            output: Vec::new(),
            args: Vec::new(),
            steps: 0,
            max_steps,
        }
    }

    /// Lines printed via `print` that were not captured by the extern.
    pub fn output(&self) -> &[String] {
        &self.output
    }

    /// Steps consumed by the last run.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Parses and runs a script; returns the value of its last expression
    /// statement (or `Null`).
    ///
    /// `args` are exposed to the script through the `args()` builtin.
    ///
    /// # Errors
    ///
    /// Parse errors, runtime type errors, extern failures, or step-budget
    /// exhaustion, all as [`ScriptError`].
    pub fn run<E: Extern>(
        &mut self,
        source: &str,
        ext: &mut E,
        args: &[Value],
    ) -> Result<Value, ScriptError> {
        let stmts = parse(source)?;
        self.args = args.to_vec();
        self.steps = 0;
        // Hoist function definitions so calls can precede definitions.
        for s in &stmts {
            if let Stmt::Fn { name, params, body } = s {
                self.fns
                    .insert(name.clone(), (params.clone(), body.clone()));
            }
        }
        let mut last = Value::Null;
        for s in &stmts {
            match self.exec(s, ext, None)? {
                Flow::Normal(v) => last = v,
                Flow::Return(v) => return Ok(v),
                Flow::Break | Flow::Continue => {
                    return Err(ScriptError::msg("break/continue outside loop"))
                }
            }
        }
        Ok(last)
    }

    fn tick(&mut self) -> Result<(), ScriptError> {
        self.steps += 1;
        if self.steps > self.max_steps {
            return Err(ScriptError::msg(format!(
                "step budget exhausted ({} steps)",
                self.max_steps
            )));
        }
        Ok(())
    }

    fn exec<E: Extern>(
        &mut self,
        stmt: &Stmt,
        ext: &mut E,
        locals: Option<&mut BTreeMap<String, Value>>,
    ) -> Result<Flow, ScriptError> {
        // Reborrow pattern: locals is threaded through each call.
        let mut locals = locals;
        self.tick()?;
        match stmt {
            Stmt::Let { name, value } | Stmt::Assign { name, value } => {
                let v = self.eval(value, ext, locals.as_deref_mut())?;
                self.set_var(name, v, locals.as_deref_mut());
                Ok(Flow::Normal(Value::Null))
            }
            Stmt::IndexAssign { name, index, value } => {
                let idx = self.eval(index, ext, locals.as_deref_mut())?;
                let val = self.eval(value, ext, locals.as_deref_mut())?;
                let slot = self
                    .var_mut(name, locals.as_deref_mut())
                    .ok_or_else(|| ScriptError::msg(format!("undefined variable `{name}`")))?;
                match (slot, idx) {
                    (Value::List(items), Value::Int(i)) => {
                        let i = i as usize;
                        if i >= items.len() {
                            return Err(ScriptError::msg(format!(
                                "index {i} out of range (len {})",
                                items.len()
                            )));
                        }
                        items[i] = val;
                    }
                    (Value::Map(m), Value::Str(k)) => {
                        m.insert(k, val);
                    }
                    (slot, idx) => {
                        return Err(ScriptError::msg(format!(
                            "cannot index {} with {}",
                            slot.type_name(),
                            idx.type_name()
                        )))
                    }
                }
                Ok(Flow::Normal(Value::Null))
            }
            Stmt::If {
                cond,
                then,
                otherwise,
            } => {
                let branch = if self.eval(cond, ext, locals.as_deref_mut())?.truthy() {
                    then
                } else {
                    otherwise
                };
                self.exec_block(branch, ext, locals.as_deref_mut())
            }
            Stmt::While { cond, body } => {
                while self.eval(cond, ext, locals.as_deref_mut())?.truthy() {
                    match self.exec_block(body, ext, locals.as_deref_mut())? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal(_) | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal(Value::Null))
            }
            Stmt::For { name, iter, body } => {
                let seq = self.eval(iter, ext, locals.as_deref_mut())?;
                let items: Vec<Value> = match seq {
                    Value::List(items) => items,
                    Value::Str(s) => s.chars().map(|c| Value::Str(c.to_string())).collect(),
                    Value::Map(m) => m.keys().map(|k| Value::Str(k.clone())).collect(),
                    other => {
                        return Err(ScriptError::msg(format!(
                            "cannot iterate over {}",
                            other.type_name()
                        )))
                    }
                };
                for item in items {
                    self.set_var(name, item, locals.as_deref_mut());
                    match self.exec_block(body, ext, locals.as_deref_mut())? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal(_) | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal(Value::Null))
            }
            Stmt::Fn { name, params, body } => {
                self.fns
                    .insert(name.clone(), (params.clone(), body.clone()));
                Ok(Flow::Normal(Value::Null))
            }
            Stmt::Return(expr) => {
                let v = match expr {
                    Some(e) => self.eval(e, ext, locals.as_deref_mut())?,
                    None => Value::Null,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
            Stmt::Expr(e) => Ok(Flow::Normal(self.eval(e, ext, locals)?)),
        }
    }

    fn exec_block<E: Extern>(
        &mut self,
        stmts: &[Stmt],
        ext: &mut E,
        mut locals: Option<&mut BTreeMap<String, Value>>,
    ) -> Result<Flow, ScriptError> {
        let mut last = Value::Null;
        for s in stmts {
            match self.exec(s, ext, locals.as_deref_mut())? {
                Flow::Normal(v) => last = v,
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal(last))
    }

    fn set_var(&mut self, name: &str, v: Value, locals: Option<&mut BTreeMap<String, Value>>) {
        match locals {
            Some(l) => {
                l.insert(name.to_owned(), v);
            }
            None => {
                self.globals.insert(name.to_owned(), v);
            }
        }
    }

    fn var_mut<'a>(
        &'a mut self,
        name: &str,
        locals: Option<&'a mut BTreeMap<String, Value>>,
    ) -> Option<&'a mut Value> {
        if let Some(l) = locals {
            if l.contains_key(name) {
                return l.get_mut(name);
            }
        }
        self.globals.get_mut(name)
    }

    fn var(&self, name: &str, locals: Option<&BTreeMap<String, Value>>) -> Option<Value> {
        if let Some(l) = locals {
            if let Some(v) = l.get(name) {
                return Some(v.clone());
            }
        }
        self.globals.get(name).cloned()
    }

    fn eval<E: Extern>(
        &mut self,
        expr: &Expr,
        ext: &mut E,
        mut locals: Option<&mut BTreeMap<String, Value>>,
    ) -> Result<Value, ScriptError> {
        self.tick()?;
        match expr {
            Expr::Int(v) => Ok(Value::Int(*v)),
            Expr::Str(s) => Ok(Value::Str(s.clone())),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Null => Ok(Value::Null),
            Expr::Var(name) => self
                .var(name, locals.as_deref())
                .ok_or_else(|| ScriptError::msg(format!("undefined variable `{name}`"))),
            Expr::List(items) => {
                let mut out = Vec::with_capacity(items.len());
                for i in items {
                    out.push(self.eval(i, ext, locals.as_deref_mut())?);
                }
                Ok(Value::List(out))
            }
            Expr::Un { op, expr } => {
                let v = self.eval(expr, ext, locals.as_deref_mut())?;
                match (op, v) {
                    (UnOp::Neg, Value::Int(v)) => Ok(Value::Int(v.wrapping_neg())),
                    (UnOp::Not, v) => Ok(Value::Bool(!v.truthy())),
                    (UnOp::Neg, v) => {
                        Err(ScriptError::msg(format!("cannot negate {}", v.type_name())))
                    }
                }
            }
            Expr::Bin { op, lhs, rhs } => {
                // Short-circuit logic first.
                if matches!(op, BinOp::And) {
                    let l = self.eval(lhs, ext, locals.as_deref_mut())?;
                    if !l.truthy() {
                        return Ok(Value::Bool(false));
                    }
                    let r = self.eval(rhs, ext, locals.as_deref_mut())?;
                    return Ok(Value::Bool(r.truthy()));
                }
                if matches!(op, BinOp::Or) {
                    let l = self.eval(lhs, ext, locals.as_deref_mut())?;
                    if l.truthy() {
                        return Ok(Value::Bool(true));
                    }
                    let r = self.eval(rhs, ext, locals.as_deref_mut())?;
                    return Ok(Value::Bool(r.truthy()));
                }
                let l = self.eval(lhs, ext, locals.as_deref_mut())?;
                let r = self.eval(rhs, ext, locals.as_deref_mut())?;
                binop(*op, l, r)
            }
            Expr::Index { base, index } => {
                let b = self.eval(base, ext, locals.as_deref_mut())?;
                let i = self.eval(index, ext, locals.as_deref_mut())?;
                match (b, i) {
                    (Value::List(items), Value::Int(i)) => {
                        items.get(i as usize).cloned().ok_or_else(|| {
                            ScriptError::msg(format!(
                                "index {i} out of range (len {})",
                                items.len()
                            ))
                        })
                    }
                    (Value::Str(s), Value::Int(i)) => {
                        let chars: Vec<char> = s.chars().collect();
                        chars
                            .get(i as usize)
                            .map(|c| Value::Str(c.to_string()))
                            .ok_or_else(|| {
                                ScriptError::msg(format!(
                                    "index {i} out of range (len {})",
                                    chars.len()
                                ))
                            })
                    }
                    (Value::Map(m), Value::Str(k)) => Ok(m.get(&k).cloned().unwrap_or(Value::Null)),
                    (b, i) => Err(ScriptError::msg(format!(
                        "cannot index {} with {}",
                        b.type_name(),
                        i.type_name()
                    ))),
                }
            }
            Expr::Call { name, args, line } => {
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval(a, ext, locals.as_deref_mut())?);
                }
                self.call(name, &argv, ext).map_err(|mut e| {
                    if e.line.is_none() {
                        e.line = Some(*line);
                    }
                    e
                })
            }
        }
    }

    fn call<E: Extern>(
        &mut self,
        name: &str,
        args: &[Value],
        ext: &mut E,
    ) -> Result<Value, ScriptError> {
        // User-defined functions win over builtins.
        if let Some((params, body)) = self.fns.get(name).cloned() {
            if params.len() != args.len() {
                return Err(ScriptError::msg(format!(
                    "function `{name}` expects {} arguments, got {}",
                    params.len(),
                    args.len()
                )));
            }
            let mut locals: BTreeMap<String, Value> =
                params.into_iter().zip(args.iter().cloned()).collect();
            return match self.exec_block(&body, ext, Some(&mut locals))? {
                Flow::Return(v) | Flow::Normal(v) => Ok(v),
                Flow::Break | Flow::Continue => {
                    Err(ScriptError::msg("break/continue outside loop"))
                }
            };
        }
        // Environment-specific builtins.
        match ext.call(name, args) {
            ExternResult::Value(v) => return Ok(v),
            ExternResult::Err(m) => return Err(ScriptError::msg(m)),
            ExternResult::NotHandled => {}
        }
        // Common library.
        self.builtin(name, args)
    }

    fn builtin(&mut self, name: &str, args: &[Value]) -> Result<Value, ScriptError> {
        let argn = args.len();
        let bad = |msg: &str| Err(ScriptError::msg(format!("{name}: {msg}")));
        match (name, args) {
            ("print", _) => {
                let line = args.iter().map(Value::render).collect::<Vec<_>>().join(" ");
                self.output.push(line);
                Ok(Value::Null)
            }
            ("args", []) => Ok(Value::List(self.args.clone())),
            ("str", [v]) => Ok(Value::Str(v.render())),
            ("int", [Value::Int(v)]) => Ok(Value::Int(*v)),
            ("int", [Value::Str(s)]) => Ok(s
                .trim()
                .parse::<i64>()
                .map(Value::Int)
                .unwrap_or(Value::Null)),
            ("int", [Value::Bool(b)]) => Ok(Value::Int(*b as i64)),
            ("parse_int", [Value::Str(s)]) => Ok(s
                .trim()
                .parse::<i64>()
                .map(Value::Int)
                .unwrap_or(Value::Null)),
            ("len", [Value::Str(s)]) => Ok(Value::Int(s.chars().count() as i64)),
            ("len", [Value::List(l)]) => Ok(Value::Int(l.len() as i64)),
            ("len", [Value::Map(m)]) => Ok(Value::Int(m.len() as i64)),
            ("range", [Value::Int(n)]) => Ok(Value::List((0..*n).map(Value::Int).collect())),
            ("range", [Value::Int(a), Value::Int(b)]) => {
                Ok(Value::List((*a..*b).map(Value::Int).collect()))
            }
            ("push", [Value::List(l), v]) => {
                let mut l = l.clone();
                l.push(v.clone());
                Ok(Value::List(l))
            }
            ("concat", [Value::List(a), Value::List(b)]) => {
                let mut l = a.clone();
                l.extend(b.iter().cloned());
                Ok(Value::List(l))
            }
            ("sort", [Value::List(l)]) => {
                let mut l = l.clone();
                l.sort_by(cmp_values);
                Ok(Value::List(l))
            }
            ("reverse", [Value::List(l)]) => {
                let mut l = l.clone();
                l.reverse();
                Ok(Value::List(l))
            }
            ("contains", [Value::Str(s), Value::Str(sub)]) => Ok(Value::Bool(s.contains(sub))),
            ("contains", [Value::List(l), v]) => Ok(Value::Bool(l.contains(v))),
            ("contains", [Value::Map(m), Value::Str(k)]) => Ok(Value::Bool(m.contains_key(k))),
            ("split", [Value::Str(s), Value::Str(sep)]) => {
                if sep.is_empty() {
                    return bad("empty separator");
                }
                Ok(Value::List(
                    s.split(sep.as_str())
                        .map(|p| Value::Str(p.to_owned()))
                        .collect(),
                ))
            }
            ("split_whitespace", [Value::Str(s)]) => Ok(Value::List(
                s.split_whitespace()
                    .map(|p| Value::Str(p.to_owned()))
                    .collect(),
            )),
            ("join", [Value::List(l), Value::Str(sep)]) => {
                let parts: Vec<String> = l.iter().map(Value::render).collect();
                Ok(Value::Str(parts.join(sep)))
            }
            ("lines", [Value::Str(s)]) => Ok(Value::List(
                s.lines().map(|l| Value::Str(l.to_owned())).collect(),
            )),
            ("trim", [Value::Str(s)]) => Ok(Value::Str(s.trim().to_owned())),
            ("starts_with", [Value::Str(s), Value::Str(p)]) => Ok(Value::Bool(s.starts_with(p))),
            ("ends_with", [Value::Str(s), Value::Str(p)]) => Ok(Value::Bool(s.ends_with(p))),
            ("replace", [Value::Str(s), Value::Str(from), Value::Str(to)]) => {
                Ok(Value::Str(s.replace(from.as_str(), to)))
            }
            ("substr", [Value::Str(s), Value::Int(start), Value::Int(len)]) => {
                let chars: Vec<char> = s.chars().collect();
                let start = (*start).max(0) as usize;
                let len = (*len).max(0) as usize;
                Ok(Value::Str(
                    chars.iter().skip(start).take(len).collect::<String>(),
                ))
            }
            ("find", [Value::Str(s), Value::Str(sub)]) => Ok(Value::Int(
                s.find(sub.as_str())
                    .map(|b| s[..b].chars().count() as i64)
                    .unwrap_or(-1),
            )),
            ("upper", [Value::Str(s)]) => Ok(Value::Str(s.to_uppercase())),
            ("lower", [Value::Str(s)]) => Ok(Value::Str(s.to_lowercase())),
            ("repeat", [Value::Str(s), Value::Int(n)]) => {
                Ok(Value::Str(s.repeat((*n).max(0) as usize)))
            }
            ("map", []) => Ok(Value::Map(BTreeMap::new())),
            ("get", [Value::Map(m), Value::Str(k)]) => Ok(m.get(k).cloned().unwrap_or(Value::Null)),
            ("get", [Value::Map(m), Value::Str(k), default]) => {
                Ok(m.get(k).cloned().unwrap_or_else(|| default.clone()))
            }
            ("set", [Value::Map(m), Value::Str(k), v]) => {
                let mut m = m.clone();
                m.insert(k.clone(), v.clone());
                Ok(Value::Map(m))
            }
            ("keys", [Value::Map(m)]) => Ok(Value::List(
                m.keys().map(|k| Value::Str(k.clone())).collect(),
            )),
            ("min", [Value::Int(a), Value::Int(b)]) => Ok(Value::Int(*a.min(b))),
            ("max", [Value::Int(a), Value::Int(b)]) => Ok(Value::Int(*a.max(b))),
            ("abs", [Value::Int(v)]) => Ok(Value::Int(v.wrapping_abs())),
            ("csv_row", [Value::List(fields)]) => {
                let cells: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        let s = f.render();
                        if s.contains(',') || s.contains('"') || s.contains('\n') {
                            format!("\"{}\"", s.replace('"', "\"\""))
                        } else {
                            s
                        }
                    })
                    .collect();
                Ok(Value::Str(cells.join(",")))
            }
            ("type", [v]) => Ok(Value::Str(v.type_name().to_owned())),
            _ => bad(&format!("unknown builtin or bad arguments (arity {argn})")),
        }
    }
}

fn cmp_values(a: &Value, b: &Value) -> std::cmp::Ordering {
    match (a, b) {
        (Value::Int(a), Value::Int(b)) => a.cmp(b),
        (Value::Str(a), Value::Str(b)) => a.cmp(b),
        _ => a.render().cmp(&b.render()),
    }
}

fn binop(op: BinOp, l: Value, r: Value) -> Result<Value, ScriptError> {
    use BinOp::*;
    match (op, &l, &r) {
        (Add, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_add(*b))),
        (Sub, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_sub(*b))),
        (Mul, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_mul(*b))),
        (Div, Value::Int(a), Value::Int(b)) => {
            if *b == 0 {
                Err(ScriptError::msg("division by zero"))
            } else {
                Ok(Value::Int(a.wrapping_div(*b)))
            }
        }
        (Mod, Value::Int(a), Value::Int(b)) => {
            if *b == 0 {
                Err(ScriptError::msg("modulo by zero"))
            } else {
                Ok(Value::Int(a.wrapping_rem(*b)))
            }
        }
        (Add, Value::Str(a), b) => Ok(Value::Str(format!("{a}{}", b.render()))),
        (Add, a, Value::Str(b)) => Ok(Value::Str(format!("{}{b}", a.render()))),
        (Add, Value::List(a), Value::List(b)) => {
            let mut out = a.clone();
            out.extend(b.iter().cloned());
            Ok(Value::List(out))
        }
        (Eq, a, b) => Ok(Value::Bool(a == b)),
        (Ne, a, b) => Ok(Value::Bool(a != b)),
        (Lt, Value::Int(a), Value::Int(b)) => Ok(Value::Bool(a < b)),
        (Le, Value::Int(a), Value::Int(b)) => Ok(Value::Bool(a <= b)),
        (Gt, Value::Int(a), Value::Int(b)) => Ok(Value::Bool(a > b)),
        (Ge, Value::Int(a), Value::Int(b)) => Ok(Value::Bool(a >= b)),
        (Lt, Value::Str(a), Value::Str(b)) => Ok(Value::Bool(a < b)),
        (Le, Value::Str(a), Value::Str(b)) => Ok(Value::Bool(a <= b)),
        (Gt, Value::Str(a), Value::Str(b)) => Ok(Value::Bool(a > b)),
        (Ge, Value::Str(a), Value::Str(b)) => Ok(Value::Bool(a >= b)),
        (op, l, r) => Err(ScriptError::msg(format!(
            "cannot apply {op:?} to {} and {}",
            l.type_name(),
            r.type_name()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> (Value, Vec<String>) {
        let mut i = Interp::new();
        let v = i.run(src, &mut NoExtern, &[]).unwrap();
        (v, i.output().to_vec())
    }

    #[test]
    fn arithmetic_and_result() {
        assert_eq!(run("1 + 2 * 3").0, Value::Int(7));
        assert_eq!(run("(1 + 2) * 3").0, Value::Int(9));
        assert_eq!(run("-5 % 3").0, Value::Int(-2));
        assert_eq!(run("10 / 3").0, Value::Int(3));
    }

    #[test]
    fn strings() {
        assert_eq!(run(r#""a" + "b" + str(3)"#).0, Value::Str("ab3".into()));
        assert_eq!(
            run(r#"join(split("a,b,c", ","), "-")"#).0,
            Value::Str("a-b-c".into())
        );
        assert_eq!(run(r#"trim("  x  ")"#).0, Value::Str("x".into()));
        assert_eq!(run(r#"find("hello", "llo")"#).0, Value::Int(2));
        assert_eq!(run(r#"find("hello", "z")"#).0, Value::Int(-1));
        assert_eq!(run(r#"substr("hello", 1, 3)"#).0, Value::Str("ell".into()));
        assert_eq!(
            run(r#"replace("aaa", "a", "b")"#).0,
            Value::Str("bbb".into())
        );
    }

    #[test]
    fn control_flow() {
        let src = r#"
            let total = 0
            for i in range(1, 11) {
                if i % 2 == 0 { continue }
                if i > 8 { break }
                total = total + i
            }
            total
        "#;
        assert_eq!(run(src).0, Value::Int(1 + 3 + 5 + 7));
    }

    #[test]
    fn functions_and_recursion() {
        let src = r#"
            fn fib(n) {
                if n < 2 { return n }
                return fib(n - 1) + fib(n - 2)
            }
            fib(12)
        "#;
        assert_eq!(run(src).0, Value::Int(144));
    }

    #[test]
    fn function_locals_do_not_leak() {
        let src = r#"
            let x = 1
            fn f(x) { x = 99 return x }
            f(5)
            x
        "#;
        assert_eq!(run(src).0, Value::Int(1));
    }

    #[test]
    fn globals_visible_in_functions() {
        let src = r#"
            let base = 10
            fn f(n) { return base + n }
            f(5)
        "#;
        assert_eq!(run(src).0, Value::Int(15));
    }

    #[test]
    fn lists_and_maps() {
        let src = r#"
            let l = [3, 1, 2]
            l = push(l, 0)
            l = sort(l)
            let m = map()
            m = set(m, "total", len(l))
            m["first"] = l[0]
            [m["total"], m["first"], get(m, "missing", -1)]
        "#;
        assert_eq!(
            run(src).0,
            Value::List(vec![Value::Int(4), Value::Int(0), Value::Int(-1)])
        );
    }

    #[test]
    fn print_capture() {
        let (_, out) = run(r#"print("hello", 42) print("world")"#);
        assert_eq!(out, vec!["hello 42", "world"]);
    }

    #[test]
    fn csv_row_quoting() {
        assert_eq!(
            run(r#"csv_row(["a", "b,c", 3])"#).0,
            Value::Str("a,\"b,c\",3".into())
        );
    }

    #[test]
    fn step_budget_stops_infinite_loop() {
        let mut i = Interp::with_max_steps(10_000);
        let err = i.run("while true { }", &mut NoExtern, &[]).unwrap_err();
        assert!(err.message.contains("step budget"));
    }

    #[test]
    fn runtime_errors() {
        let mut i = Interp::new();
        assert!(i.run("1 / 0", &mut NoExtern, &[]).is_err());
        assert!(i.run("undefined_var", &mut NoExtern, &[]).is_err());
        assert!(i.run("[1][5]", &mut NoExtern, &[]).is_err());
        assert!(i.run(r#""a" - "b""#, &mut NoExtern, &[]).is_err());
        let err = i.run("nosuchfn()", &mut NoExtern, &[]).unwrap_err();
        assert!(err.line.is_some());
    }

    #[test]
    fn script_args() {
        let mut i = Interp::new();
        let v = i
            .run(
                "let a = args() a[0] + \"-\" + str(len(a))",
                &mut NoExtern,
                &[Value::Str("x".into()), Value::Int(2)],
            )
            .unwrap();
        assert_eq!(v, Value::Str("x-2".into()));
    }

    #[test]
    fn extern_overrides() {
        struct Cycles;
        impl Extern for Cycles {
            fn call(&mut self, name: &str, _args: &[Value]) -> ExternResult {
                match name {
                    "cycles" => ExternResult::Value(Value::Int(12345)),
                    "fail" => ExternResult::Err("nope".to_owned()),
                    _ => ExternResult::NotHandled,
                }
            }
        }
        let mut i = Interp::new();
        assert_eq!(
            i.run("cycles()", &mut Cycles, &[]).unwrap(),
            Value::Int(12345)
        );
        assert!(i.run("fail()", &mut Cycles, &[]).is_err());
        // Common library still reachable.
        assert_eq!(
            i.run("len(\"abc\")", &mut Cycles, &[]).unwrap(),
            Value::Int(3)
        );
    }

    #[test]
    fn short_circuit() {
        // Division by zero on the RHS must not evaluate.
        assert_eq!(run("false && (1 / 0 == 0)").0, Value::Bool(false));
        assert_eq!(run("true || (1 / 0 == 0)").0, Value::Bool(true));
    }

    #[test]
    fn truthiness() {
        assert_eq!(run(r#"if "" { 1 } else { 2 }"#).0, Value::Int(2));
        assert_eq!(run("if [] { 1 } else { 2 }").0, Value::Int(2));
        assert_eq!(run("if 0 { 1 } else { 2 }").0, Value::Int(2));
        assert_eq!(run(r#"if "x" { 1 } else { 2 }"#).0, Value::Int(1));
    }

    #[test]
    fn iterate_string_and_map() {
        let src = r#"
            let out = ""
            for c in "abc" { out = out + c + "." }
            let m = map()
            m["k1"] = 1
            m["k2"] = 2
            for k in m { out = out + k }
            out
        "#;
        assert_eq!(run(src).0, Value::Str("a.b.c.k1k2".into()));
    }
}
