//! The mscript lexer.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// String literal (escapes resolved).
    Str(String),
    /// Punctuation or operator, e.g. `+`, `==`, `{`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(v) => write!(f, "`{v}`"),
            Tok::Str(_) => write!(f, "string literal"),
            Tok::Punct(p) => write!(f, "`{p}`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based line number.
    pub line: usize,
}

/// Lexing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

const PUNCTS: &[&str] = &[
    "==", "!=", "<=", ">=", "&&", "||", "+", "-", "*", "/", "%", "<", ">", "=", "(", ")", "{", "}",
    "[", "]", ",", "!",
];

/// Tokenises mscript source.
///
/// # Errors
///
/// Returns [`LexError`] for unterminated strings, bad escapes, or unknown
/// characters.
pub fn lex(source: &str) -> Result<Vec<Spanned>, LexError> {
    let mut out = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0usize;
    let mut line = 1usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'"' => {
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(LexError {
                            line,
                            message: "unterminated string".to_owned(),
                        });
                    }
                    match bytes[i] {
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\\' => {
                            i += 1;
                            let esc = bytes.get(i).copied().ok_or(LexError {
                                line,
                                message: "bad escape at end of input".to_owned(),
                            })?;
                            s.push(match esc {
                                b'n' => '\n',
                                b't' => '\t',
                                b'r' => '\r',
                                b'0' => '\0',
                                b'"' => '"',
                                b'\\' => '\\',
                                other => {
                                    return Err(LexError {
                                        line,
                                        message: format!("bad escape `\\{}`", other as char),
                                    })
                                }
                            });
                            i += 1;
                        }
                        b'\n' => {
                            return Err(LexError {
                                line,
                                message: "newline in string literal".to_owned(),
                            })
                        }
                        b => {
                            // Pass UTF-8 bytes through unchanged.
                            let start = i;
                            let len = utf8_len(b);
                            i += len;
                            if i > bytes.len() {
                                return Err(LexError {
                                    line,
                                    message: "invalid utf-8".to_owned(),
                                });
                            }
                            s.push_str(std::str::from_utf8(&bytes[start..i]).map_err(|_| {
                                LexError {
                                    line,
                                    message: "invalid utf-8".to_owned(),
                                }
                            })?);
                        }
                    }
                }
                out.push(Spanned {
                    tok: Tok::Str(s),
                    line,
                });
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let text = std::str::from_utf8(&bytes[start..i]).expect("ascii");
                let value = if let Some(hex) =
                    text.strip_prefix("0x").or_else(|| text.strip_prefix("0X"))
                {
                    i64::from_str_radix(&hex.replace('_', ""), 16)
                } else {
                    text.replace('_', "").parse::<i64>()
                }
                .map_err(|_| LexError {
                    line,
                    message: format!("bad number `{text}`"),
                })?;
                out.push(Spanned {
                    tok: Tok::Int(value),
                    line,
                });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(Spanned {
                    tok: Tok::Ident(
                        std::str::from_utf8(&bytes[start..i])
                            .expect("ascii")
                            .to_owned(),
                    ),
                    line,
                });
            }
            _ => {
                let rest = &source[i..];
                let Some(p) = PUNCTS.iter().find(|p| rest.starts_with(**p)) else {
                    return Err(LexError {
                        line,
                        message: format!("unexpected character `{}`", c as char),
                    });
                };
                out.push(Spanned {
                    tok: Tok::Punct(p),
                    line,
                });
                i += p.len();
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn basics() {
        assert_eq!(
            toks("let x = 42"),
            vec![
                Tok::Ident("let".into()),
                Tok::Ident("x".into()),
                Tok::Punct("="),
                Tok::Int(42),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn multichar_operators_win() {
        assert_eq!(
            toks("a == b != c <= d >= e && f || g"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct("=="),
                Tok::Ident("b".into()),
                Tok::Punct("!="),
                Tok::Ident("c".into()),
                Tok::Punct("<="),
                Tok::Ident("d".into()),
                Tok::Punct(">="),
                Tok::Ident("e".into()),
                Tok::Punct("&&"),
                Tok::Ident("f".into()),
                Tok::Punct("||"),
                Tok::Ident("g".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            toks(r#""a\nb\"c""#),
            vec![Tok::Str("a\nb\"c".into()), Tok::Eof]
        );
    }

    #[test]
    fn comments_and_lines() {
        let spanned = lex("x # comment\ny\n").unwrap();
        assert_eq!(spanned[0].line, 1);
        assert_eq!(spanned[1].line, 2);
    }

    #[test]
    fn hex_numbers() {
        assert_eq!(toks("0x10")[0], Tok::Int(16));
        assert_eq!(toks("1_000_000")[0], Tok::Int(1_000_000));
    }

    #[test]
    fn errors() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("@").is_err());
        assert!(lex("\"bad\\qescape\"").is_err());
        assert!(lex("12abc$").is_err());
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(toks("\"héllo→\"")[0], Tok::Str("héllo→".into()));
    }
}
