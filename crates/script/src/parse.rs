//! The mscript recursive-descent parser.

use crate::ast::{BinOp, Expr, Stmt, UnOp};
use crate::lex::{lex, Spanned, Tok};

/// Parse error with a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<crate::lex::LexError> for ParseError {
    fn from(e: crate::lex::LexError) -> ParseError {
        ParseError {
            line: e.line,
            message: e.message,
        }
    }
}

/// Parses mscript source into a statement list.
///
/// A leading `#!mscript` shebang is skipped by the lexer's comment rule.
///
/// # Errors
///
/// Returns [`ParseError`] with line information.
pub fn parse(source: &str) -> Result<Vec<Stmt>, ParseError> {
    let toks = lex(source)?;
    let mut p = Parser { toks, pos: 0 };
    let body = p.parse_block_body(true)?;
    Ok(body)
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn line(&self) -> usize {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            message: message.into(),
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        match self.peek() {
            Tok::Punct(found) if *found == p => {
                self.bump();
                Ok(())
            }
            other => Err(self.error(format!("expected `{p}`, found {other}"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(self.error(format!("expected identifier, found {other}"))),
        }
    }

    fn parse_block_body(&mut self, top_level: bool) -> Result<Vec<Stmt>, ParseError> {
        let mut out = Vec::new();
        loop {
            match self.peek() {
                Tok::Eof => {
                    if top_level {
                        return Ok(out);
                    }
                    return Err(self.error("unexpected end of input (missing `}`)"));
                }
                Tok::Punct("}") if !top_level => {
                    self.bump();
                    return Ok(out);
                }
                _ => out.push(self.parse_stmt()?),
            }
        }
    }

    fn parse_braced_block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_punct("{")?;
        self.parse_block_body(false)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        if let Tok::Ident(kw) = self.peek().clone() {
            match kw.as_str() {
                "let" => {
                    self.bump();
                    let name = self.expect_ident()?;
                    self.expect_punct("=")?;
                    let value = self.parse_expr()?;
                    return Ok(Stmt::Let { name, value });
                }
                "if" => {
                    self.bump();
                    return self.parse_if();
                }
                "while" => {
                    self.bump();
                    let cond = self.parse_expr()?;
                    let body = self.parse_braced_block()?;
                    return Ok(Stmt::While { cond, body });
                }
                "for" => {
                    self.bump();
                    let name = self.expect_ident()?;
                    let in_kw = self.expect_ident()?;
                    if in_kw != "in" {
                        return Err(self.error("expected `in` in for loop"));
                    }
                    let iter = self.parse_expr()?;
                    let body = self.parse_braced_block()?;
                    return Ok(Stmt::For { name, iter, body });
                }
                "fn" => {
                    self.bump();
                    let name = self.expect_ident()?;
                    self.expect_punct("(")?;
                    let mut params = Vec::new();
                    if !matches!(self.peek(), Tok::Punct(")")) {
                        loop {
                            params.push(self.expect_ident()?);
                            match self.peek() {
                                Tok::Punct(",") => {
                                    self.bump();
                                }
                                _ => break,
                            }
                        }
                    }
                    self.expect_punct(")")?;
                    let body = self.parse_braced_block()?;
                    return Ok(Stmt::Fn { name, params, body });
                }
                "return" => {
                    self.bump();
                    // `return` with no value: next token starts a new
                    // statement or closes the block.
                    let value = if matches!(self.peek(), Tok::Punct("}") | Tok::Eof) {
                        None
                    } else {
                        Some(self.parse_expr()?)
                    };
                    return Ok(Stmt::Return(value));
                }
                "break" => {
                    self.bump();
                    return Ok(Stmt::Break);
                }
                "continue" => {
                    self.bump();
                    return Ok(Stmt::Continue);
                }
                _ => {}
            }
            // Assignment forms: `name = ...` / `name[idx] = ...`
            if let Tok::Ident(name) = self.peek().clone() {
                let next = self.toks.get(self.pos + 1).map(|s| &s.tok);
                if matches!(next, Some(Tok::Punct("="))) {
                    self.bump();
                    self.bump();
                    let value = self.parse_expr()?;
                    return Ok(Stmt::Assign { name, value });
                }
                if matches!(next, Some(Tok::Punct("["))) {
                    // Look ahead for `] =` to distinguish index-assign from
                    // an index expression statement.
                    if let Some(close) = self.find_matching_bracket(self.pos + 1) {
                        if matches!(
                            self.toks.get(close + 1).map(|s| &s.tok),
                            Some(Tok::Punct("="))
                        ) {
                            self.bump(); // name
                            self.bump(); // [
                            let index = self.parse_expr()?;
                            self.expect_punct("]")?;
                            self.expect_punct("=")?;
                            let value = self.parse_expr()?;
                            return Ok(Stmt::IndexAssign { name, index, value });
                        }
                    }
                }
            }
        }
        let e = self.parse_expr()?;
        Ok(Stmt::Expr(e))
    }

    fn find_matching_bracket(&self, open: usize) -> Option<usize> {
        let mut depth = 0i32;
        for (i, s) in self.toks.iter().enumerate().skip(open) {
            match s.tok {
                Tok::Punct("[") => depth += 1,
                Tok::Punct("]") => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(i);
                    }
                }
                Tok::Eof => return None,
                _ => {}
            }
        }
        None
    }

    fn parse_if(&mut self) -> Result<Stmt, ParseError> {
        let cond = self.parse_expr()?;
        let then = self.parse_braced_block()?;
        let otherwise = if let Tok::Ident(kw) = self.peek() {
            if kw == "else" {
                self.bump();
                if let Tok::Ident(kw2) = self.peek() {
                    if kw2 == "if" {
                        self.bump();
                        vec![self.parse_if()?]
                    } else {
                        self.parse_braced_block()?
                    }
                } else {
                    self.parse_braced_block()?
                }
            } else {
                Vec::new()
            }
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            cond,
            then,
            otherwise,
        })
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_bin(0)
    }

    fn parse_bin(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let Some((op, prec)) = self.peek_binop() else {
                return Ok(lhs);
            };
            if prec < min_prec {
                return Ok(lhs);
            }
            self.bump();
            let rhs = self.parse_bin(prec + 1)?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn peek_binop(&self) -> Option<(BinOp, u8)> {
        let p = match self.peek() {
            Tok::Punct(p) => *p,
            _ => return None,
        };
        Some(match p {
            "||" => (BinOp::Or, 1),
            "&&" => (BinOp::And, 2),
            "==" => (BinOp::Eq, 3),
            "!=" => (BinOp::Ne, 3),
            "<" => (BinOp::Lt, 4),
            "<=" => (BinOp::Le, 4),
            ">" => (BinOp::Gt, 4),
            ">=" => (BinOp::Ge, 4),
            "+" => (BinOp::Add, 5),
            "-" => (BinOp::Sub, 5),
            "*" => (BinOp::Mul, 6),
            "/" => (BinOp::Div, 6),
            "%" => (BinOp::Mod, 6),
            _ => return None,
        })
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Tok::Punct("-") => {
                self.bump();
                Ok(Expr::Un {
                    op: UnOp::Neg,
                    expr: Box::new(self.parse_unary()?),
                })
            }
            Tok::Punct("!") => {
                self.bump();
                Ok(Expr::Un {
                    op: UnOp::Not,
                    expr: Box::new(self.parse_unary()?),
                })
            }
            _ => self.parse_postfix(),
        }
    }

    /// Line of the most recently consumed token.
    fn prev_line(&self) -> usize {
        self.toks[self.pos.saturating_sub(1)].line
    }

    fn parse_postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_primary()?;
        loop {
            match self.peek() {
                // A `[` on a later line starts a new statement, not an index.
                Tok::Punct("[") if self.line() == self.prev_line() => {
                    self.bump();
                    let index = self.parse_expr()?;
                    self.expect_punct("]")?;
                    e = Expr::Index {
                        base: Box::new(e),
                        index: Box::new(index),
                    };
                }
                _ => return Ok(e),
            }
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        let line = self.line();
        match self.bump() {
            Tok::Int(v) => Ok(Expr::Int(v)),
            Tok::Str(s) => Ok(Expr::Str(s)),
            Tok::Ident(name) => match name.as_str() {
                "true" => Ok(Expr::Bool(true)),
                "false" => Ok(Expr::Bool(false)),
                "null" => Ok(Expr::Null),
                _ => {
                    // A `(` on a later line starts a new statement, not a call.
                    if matches!(self.peek(), Tok::Punct("(")) && self.line() == self.prev_line() {
                        self.bump();
                        let mut args = Vec::new();
                        if !matches!(self.peek(), Tok::Punct(")")) {
                            loop {
                                args.push(self.parse_expr()?);
                                match self.peek() {
                                    Tok::Punct(",") => {
                                        self.bump();
                                    }
                                    _ => break,
                                }
                            }
                        }
                        self.expect_punct(")")?;
                        Ok(Expr::Call { name, args, line })
                    } else {
                        Ok(Expr::Var(name))
                    }
                }
            },
            Tok::Punct("(") => {
                let e = self.parse_expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Tok::Punct("[") => {
                let mut items = Vec::new();
                if !matches!(self.peek(), Tok::Punct("]")) {
                    loop {
                        items.push(self.parse_expr()?);
                        match self.peek() {
                            Tok::Punct(",") => {
                                self.bump();
                            }
                            _ => break,
                        }
                    }
                }
                self.expect_punct("]")?;
                Ok(Expr::List(items))
            }
            other => Err(ParseError {
                line,
                message: format!("unexpected {other}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence() {
        let stmts = parse("1 + 2 * 3 == 7 && true").unwrap();
        assert_eq!(stmts.len(), 1);
        // ((1 + (2*3)) == 7) && true
        let Stmt::Expr(Expr::Bin { op: BinOp::And, .. }) = &stmts[0] else {
            panic!("top must be &&: {stmts:?}");
        };
    }

    #[test]
    fn statements() {
        let src = r#"
            let x = 1
            x = x + 1
            if x > 1 { print("big") } else if x == 1 { print("one") } else { print("small") }
            while x < 10 { x = x + 1 }
            for c in ["a", "b"] { print(c) }
            fn add(a, b) { return a + b }
            add(1, 2)
        "#;
        let stmts = parse(src).unwrap();
        assert_eq!(stmts.len(), 7);
    }

    #[test]
    fn index_assignment() {
        let stmts = parse("m[0] = 5\nm[k] = m[k] + 1\n").unwrap();
        assert!(matches!(stmts[0], Stmt::IndexAssign { .. }));
        assert!(matches!(stmts[1], Stmt::IndexAssign { .. }));
    }

    #[test]
    fn index_expression_statement() {
        let stmts = parse("print(m[0])").unwrap();
        assert!(matches!(stmts[0], Stmt::Expr(Expr::Call { .. })));
    }

    #[test]
    fn return_without_value() {
        let stmts = parse("fn f() { return }").unwrap();
        let Stmt::Fn { body, .. } = &stmts[0] else {
            panic!();
        };
        assert_eq!(body[0], Stmt::Return(None));
    }

    #[test]
    fn nested_index() {
        parse("grid[i][j]").unwrap();
    }

    #[test]
    fn errors_with_lines() {
        let err = parse("let x = )\nif").unwrap_err();
        assert!(err.line >= 1);
        assert!(parse("if x {").is_err());
        assert!(parse("fn f( {").is_err());
        assert!(parse(") bogus").is_err());
    }

    #[test]
    fn shebang_is_comment() {
        parse("#!mscript\nlet x = 1\n").unwrap();
    }
}
