//! # marshal-script
//!
//! **mscript** — the deterministic scripting language that plays the role
//! of shell scripts and Python hooks in the paper's workloads.
//!
//! FireMarshal workloads attach scripts at several lifecycle points:
//! `host-init` (cross-compilation, Speckle-style), `guest-init` (one-shot
//! image setup), `run`/`command` (the boot-time experiment), and
//! `post-run-hook` (result extraction to CSV). Real shell would make builds
//! unreproducible, so this reproduction gives those hooks a small, fully
//! deterministic language instead.
//!
//! The language: `let`, assignment, `if`/`else`, `while`, `for .. in`,
//! functions, integers/strings/bools/lists/maps, and a builtin library for
//! string processing and CSV emission. Environment-specific capabilities
//! (file access on the host, serial output and program execution in the
//! guest) are provided through the [`Extern`] trait.
//!
//! ## Example
//!
//! ```rust
//! use marshal_script::{Interp, NoExtern, Value};
//!
//! let src = r#"
//!     let total = 0
//!     for i in range(10) {
//!         total = total + i
//!     }
//!     print("sum=" + str(total))
//!     total
//! "#;
//! let mut interp = Interp::new();
//! let result = interp.run(src, &mut NoExtern, &[]).unwrap();
//! assert_eq!(result, Value::Int(45));
//! assert_eq!(interp.output(), ["sum=45"]);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod hostenv;
pub mod interp;
pub mod lex;
pub mod parse;

pub use hostenv::HostEnv;
pub use interp::{Extern, ExternResult, Interp, NoExtern, ScriptError, Value};

/// Shebang line identifying an mscript file.
pub const SHEBANG: &str = "#!mscript";

/// Whether `text` looks like an mscript source file.
pub fn is_mscript(text: &[u8]) -> bool {
    text.starts_with(SHEBANG.as_bytes())
}
