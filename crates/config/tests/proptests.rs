//! Property-based tests: JSON roundtrips, JSON/YAML agreement, inheritance
//! merge laws, and size parsing.
//!
//! Uses the in-repo `marshal-qcheck` harness (offline build environment);
//! every case derives from a fixed seed and replays deterministically.

use marshal_config::inherit::merge_specs;
use marshal_config::schema::parse_size_str;
use marshal_config::{json, Value, WorkloadSpec};
use marshal_qcheck::{cases, Rng};

const STR_CHARS: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 _./-";

fn arb_value(rng: &mut Rng, depth: u32) -> Value {
    // Weighted like the original proptest strategy: mostly leaves.
    let choice = if depth == 0 {
        rng.range_u64(0, 4)
    } else {
        rng.range_u64(0, 6)
    };
    match choice {
        0 => Value::Null,
        1 => Value::Bool(rng.bool()),
        2 => Value::Int(rng.any_i64()),
        3 => Value::Str(rng.string_of(STR_CHARS, 0, 17)),
        4 => Value::Array(
            (0..rng.range_usize(0, 4))
                .map(|_| arb_value(rng, depth - 1))
                .collect(),
        ),
        _ => Value::Object(
            (0..rng.range_usize(0, 4))
                .map(|_| {
                    let key = format!(
                        "{}{}",
                        rng.lowercase(1, 2),
                        rng.string_of("abcdefghijklmnopqrstuvwxyz0123456789_-", 0, 9)
                    );
                    (key, arb_value(rng, depth - 1))
                })
                .collect(),
        ),
    }
}

#[test]
fn json_roundtrip() {
    cases(256, |rng| {
        let v = arb_value(rng, 3);
        let text = v.to_json();
        let back = json::parse(&text).unwrap();
        assert_eq!(v, back);
    });
}

#[test]
fn json_parse_never_panics() {
    cases(512, |rng| {
        let s = rng.printable(0, 64);
        let _ = json::parse(&s);
    });
}

#[test]
fn yaml_parse_never_panics() {
    cases(512, |rng| {
        let s = rng.printable(0, 64);
        let _ = marshal_config::yaml::parse(&s);
    });
}

#[test]
fn yaml_scalar_agrees_with_json() {
    cases(128, |rng| {
        let n = rng.any_i64();
        let key = rng.lowercase(1, 9);
        let yaml = marshal_config::yaml::parse(&format!("{key}: {n}\n")).unwrap();
        let json = json::parse(&format!("{{\"{key}\": {n}}}")).unwrap();
        assert_eq!(yaml, json);
    });
}

#[test]
fn size_parsing_scales() {
    cases(256, |rng| {
        let n = rng.range_u64(1, 1000);
        assert_eq!(parse_size_str(&format!("{n}KiB")), Some(n << 10));
        assert_eq!(parse_size_str(&format!("{n}MiB")), Some(n << 20));
        assert_eq!(parse_size_str(&format!("{n}B")), Some(n));
    });
}

fn arb_spec(rng: &mut Rng) -> WorkloadSpec {
    let name = rng.lowercase(1, 9);
    let host_init = rng.bool().then(|| format!("{}.ms", rng.lowercase(1, 9)));
    let command = rng.bool().then(|| format!("/{}", rng.lowercase(1, 9)));
    let outputs: Vec<String> = (0..rng.range_usize(0, 3))
        .map(|_| format!("/{}", rng.lowercase(1, 7)))
        .collect();
    let fragments: Vec<String> = (0..rng.range_usize(0, 3))
        .map(|_| format!("{}.kfrag", rng.lowercase(1, 7)))
        .collect();
    let mut spec = WorkloadSpec {
        name,
        host_init,
        command,
        outputs,
        ..WorkloadSpec::default()
    };
    if !fragments.is_empty() {
        spec.linux = Some(marshal_config::LinuxSpec {
            source: None,
            config: fragments,
            modules: Default::default(),
        });
    }
    spec
}

/// merge(a, merge(b, c)) == merge(merge(a, b), c): inheritance chains
/// can be flattened in any order.
#[test]
fn merge_is_associative() {
    cases(128, |rng| {
        let (a, b, c) = (arb_spec(rng), arb_spec(rng), arb_spec(rng));
        let left = merge_specs(a.clone(), merge_specs(b.clone(), c.clone()));
        let right = merge_specs(merge_specs(a, b), c);
        assert_eq!(left, right);
    });
}

/// Merging onto a default (empty) parent preserves the child.
#[test]
fn merge_with_empty_parent_is_identity() {
    cases(128, |rng| {
        let a = arb_spec(rng);
        let merged = merge_specs(a.clone(), WorkloadSpec::default());
        assert_eq!(merged.name, a.name);
        assert_eq!(merged.host_init, a.host_init);
        assert_eq!(merged.command, a.command);
        assert_eq!(merged.outputs, a.outputs);
    });
}

/// A child with nothing set inherits the parent wholesale (except name
/// and jobs).
#[test]
fn empty_child_inherits_parent() {
    cases(128, |rng| {
        let p = arb_spec(rng);
        let child = WorkloadSpec {
            name: "child".to_owned(),
            ..WorkloadSpec::default()
        };
        let merged = merge_specs(child, p.clone());
        assert_eq!(merged.host_init, p.host_init);
        assert_eq!(merged.command, p.command);
        assert_eq!(merged.outputs, p.outputs);
        assert_eq!(merged.linux, p.linux);
    });
}

/// Fragment merge order: parent fragments always precede the child's.
#[test]
fn fragment_order_preserved() {
    cases(128, |rng| {
        let (a, b) = (arb_spec(rng), arb_spec(rng));
        let merged = merge_specs(a.clone(), b.clone());
        let frags = |s: &WorkloadSpec| {
            s.linux
                .as_ref()
                .map(|l| l.config.clone())
                .unwrap_or_default()
        };
        let expect: Vec<String> = frags(&b).into_iter().chain(frags(&a)).collect();
        assert_eq!(frags(&merged), expect);
    });
}
