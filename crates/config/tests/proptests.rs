//! Property-based tests: JSON roundtrips, JSON/YAML agreement, inheritance
//! merge laws, and size parsing.

use proptest::prelude::*;

use marshal_config::inherit::merge_specs;
use marshal_config::schema::parse_size_str;
use marshal_config::{json, Value, WorkloadSpec};

fn arb_value(depth: u32) -> BoxedStrategy<Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        "[a-zA-Z0-9 _./-]{0,16}".prop_map(Value::Str),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    prop_oneof![
        4 => leaf,
        1 => proptest::collection::vec(arb_value(depth - 1), 0..4).prop_map(Value::Array),
        1 => proptest::collection::btree_map("[a-z][a-z0-9_-]{0,8}", arb_value(depth - 1), 0..4)
            .prop_map(Value::Object),
    ]
    .boxed()
}

proptest! {
    #[test]
    fn json_roundtrip(v in arb_value(3)) {
        let text = v.to_json();
        let back = json::parse(&text).unwrap();
        prop_assert_eq!(v, back);
    }

    #[test]
    fn json_parse_never_panics(s in "\\PC{0,64}") {
        let _ = json::parse(&s);
    }

    #[test]
    fn yaml_parse_never_panics(s in "\\PC{0,64}") {
        let _ = marshal_config::yaml::parse(&s);
    }

    #[test]
    fn yaml_scalar_agrees_with_json(n in any::<i64>(), key in "[a-z]{1,8}") {
        let yaml = marshal_config::yaml::parse(&format!("{key}: {n}\n")).unwrap();
        let json = json::parse(&format!("{{\"{key}\": {n}}}")).unwrap();
        prop_assert_eq!(yaml, json);
    }

    #[test]
    fn size_parsing_scales(n in 1u64..1000) {
        prop_assert_eq!(parse_size_str(&format!("{n}KiB")), Some(n << 10));
        prop_assert_eq!(parse_size_str(&format!("{n}MiB")), Some(n << 20));
        prop_assert_eq!(parse_size_str(&format!("{n}B")), Some(n));
    }
}

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (
        "[a-z]{1,8}",
        proptest::option::of("[a-z]{1,8}\\.ms"),
        proptest::option::of("/[a-z]{1,8}"),
        proptest::collection::vec("/[a-z]{1,6}", 0..3),
        proptest::collection::vec("[a-z]{1,6}\\.kfrag", 0..3),
    )
        .prop_map(|(name, host_init, command, outputs, fragments)| {
            let mut spec = WorkloadSpec {
                name,
                host_init,
                command,
                outputs,
                ..WorkloadSpec::default()
            };
            if !fragments.is_empty() {
                spec.linux = Some(marshal_config::LinuxSpec {
                    source: None,
                    config: fragments,
                    modules: Default::default(),
                });
            }
            spec
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// merge(a, merge(b, c)) == merge(merge(a, b), c): inheritance chains
    /// can be flattened in any order.
    #[test]
    fn merge_is_associative(a in arb_spec(), b in arb_spec(), c in arb_spec()) {
        let left = merge_specs(a.clone(), merge_specs(b.clone(), c.clone()));
        let right = merge_specs(merge_specs(a, b), c);
        prop_assert_eq!(left, right);
    }

    /// Merging onto a default (empty) parent preserves the child.
    #[test]
    fn merge_with_empty_parent_is_identity(a in arb_spec()) {
        let merged = merge_specs(a.clone(), WorkloadSpec::default());
        prop_assert_eq!(merged.name, a.name);
        prop_assert_eq!(merged.host_init, a.host_init);
        prop_assert_eq!(merged.command, a.command);
        prop_assert_eq!(merged.outputs, a.outputs);
    }

    /// A child with nothing set inherits the parent wholesale (except name
    /// and jobs).
    #[test]
    fn empty_child_inherits_parent(p in arb_spec()) {
        let child = WorkloadSpec {
            name: "child".to_owned(),
            ..WorkloadSpec::default()
        };
        let merged = merge_specs(child, p.clone());
        prop_assert_eq!(merged.host_init, p.host_init);
        prop_assert_eq!(merged.command, p.command);
        prop_assert_eq!(merged.outputs, p.outputs);
        prop_assert_eq!(merged.linux, p.linux);
    }

    /// Fragment merge order: parent fragments always precede the child's.
    #[test]
    fn fragment_order_preserved(a in arb_spec(), b in arb_spec()) {
        let merged = merge_specs(a.clone(), b.clone());
        let frags = |s: &WorkloadSpec| s.linux.as_ref().map(|l| l.config.clone()).unwrap_or_default();
        let expect: Vec<String> = frags(&b).into_iter().chain(frags(&a)).collect();
        prop_assert_eq!(frags(&merged), expect);
    }
}
