//! `$PATH`-style workload lookup.
//!
//! FireMarshal locates workloads "with a search order similar to the `$PATH`
//! variable in a Unix shell" (§III-B). A [`SearchPath`] layers built-in
//! workloads (registered by the board/base provider, e.g.
//! `marshal-workloads`) under user directories; directories are searched in
//! the order they were added, and built-ins are consulted last.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::error::ConfigError;

/// Where a workload file was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Located {
    /// A file on disk.
    File(PathBuf),
    /// A built-in registered via [`SearchPath::add_builtin`].
    Builtin(String),
}

/// An ordered set of workload sources.
///
/// ```rust
/// use marshal_config::SearchPath;
/// let mut sp = SearchPath::new();
/// sp.add_builtin("br-base.json", r#"{"name":"br-base","distro":"buildroot"}"#);
/// assert!(sp.locate("br-base.json").is_some());
/// assert!(sp.locate("missing.json").is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct SearchPath {
    dirs: Vec<PathBuf>,
    builtins: BTreeMap<String, String>,
}

impl SearchPath {
    /// Creates an empty search path.
    pub fn new() -> SearchPath {
        SearchPath::default()
    }

    /// Appends a directory to search (earlier directories win).
    pub fn add_dir(&mut self, dir: impl Into<PathBuf>) -> &mut SearchPath {
        self.dirs.push(dir.into());
        self
    }

    /// Registers a built-in workload document under `name`.
    ///
    /// Built-ins lose to any same-named file found in a directory, mirroring
    /// how FireMarshal lets users shadow standard workloads.
    pub fn add_builtin(
        &mut self,
        name: impl Into<String>,
        text: impl Into<String>,
    ) -> &mut SearchPath {
        self.builtins.insert(name.into(), text.into());
        self
    }

    /// The registered directories, in search order.
    pub fn dirs(&self) -> &[PathBuf] {
        &self.dirs
    }

    /// Names of all registered built-ins.
    pub fn builtin_names(&self) -> impl Iterator<Item = &str> {
        self.builtins.keys().map(String::as_str)
    }

    /// Finds `name` on the search path.
    ///
    /// Absolute paths and paths that exist relative to the current directory
    /// are honoured directly; otherwise each registered directory is tried in
    /// order, then the built-ins. For convenience a name without extension
    /// also tries `.json`, `.yaml`, and `.yml`.
    pub fn locate(&self, name: &str) -> Option<Located> {
        let p = Path::new(name);
        if p.is_absolute() && p.exists() {
            return Some(Located::File(p.to_owned()));
        }
        let candidates = candidate_names(name);
        for dir in &self.dirs {
            for c in &candidates {
                let full = dir.join(c);
                if full.exists() {
                    return Some(Located::File(full));
                }
            }
        }
        for c in &candidates {
            if self.builtins.contains_key(c) {
                return Some(Located::Builtin(c.clone()));
            }
        }
        if p.exists() {
            return Some(Located::File(p.to_owned()));
        }
        None
    }

    /// Loads the text of workload `name`.
    ///
    /// Returns `(canonical_name, text)` where the canonical name preserves
    /// the resolved file name (used for format detection and error messages).
    ///
    /// # Errors
    ///
    /// [`ConfigError::NotFound`] when the name cannot be located, or
    /// [`ConfigError::Io`] on read failure.
    pub fn load(&self, name: &str) -> Result<(String, String), ConfigError> {
        match self.locate(name) {
            Some(Located::File(path)) => {
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| ConfigError::Io(format!("read {}: {e}", path.display())))?;
                Ok((path.to_string_lossy().into_owned(), text))
            }
            Some(Located::Builtin(key)) => Ok((key.clone(), self.builtins[&key].clone())),
            None => Err(ConfigError::NotFound(name.to_owned())),
        }
    }
}

fn candidate_names(name: &str) -> Vec<String> {
    if name.ends_with(".json") || name.ends_with(".yaml") || name.ends_with(".yml") {
        vec![name.to_owned()]
    } else {
        vec![
            name.to_owned(),
            format!("{name}.json"),
            format!("{name}.yaml"),
            format!("{name}.yml"),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("marshal-search-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn builtin_lookup_and_extension_probing() {
        let mut sp = SearchPath::new();
        sp.add_builtin("base.json", "{}");
        assert_eq!(
            sp.locate("base.json"),
            Some(Located::Builtin("base.json".into()))
        );
        assert_eq!(
            sp.locate("base"),
            Some(Located::Builtin("base.json".into()))
        );
        assert_eq!(sp.locate("nope"), None);
    }

    #[test]
    fn files_shadow_builtins() {
        let dir = tmpdir("shadow");
        std::fs::write(dir.join("w.json"), r#"{"name":"from-file"}"#).unwrap();
        let mut sp = SearchPath::new();
        sp.add_builtin("w.json", r#"{"name":"from-builtin"}"#);
        sp.add_dir(&dir);
        let (origin, text) = sp.load("w.json").unwrap();
        assert!(origin.contains("w.json"));
        assert!(text.contains("from-file"));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn dir_order_matters() {
        let d1 = tmpdir("order1");
        let d2 = tmpdir("order2");
        std::fs::write(d1.join("w.json"), r#"{"name":"one"}"#).unwrap();
        std::fs::write(d2.join("w.json"), r#"{"name":"two"}"#).unwrap();
        let mut sp = SearchPath::new();
        sp.add_dir(&d1).add_dir(&d2);
        let (_, text) = sp.load("w.json").unwrap();
        assert!(text.contains("one"));
        std::fs::remove_dir_all(d1).unwrap();
        std::fs::remove_dir_all(d2).unwrap();
    }

    #[test]
    fn missing_is_not_found() {
        let sp = SearchPath::new();
        assert!(matches!(
            sp.load("ghost.json"),
            Err(ConfigError::NotFound(_))
        ));
    }
}
