//! Configuration errors.

use std::fmt;

/// Error raised while parsing, resolving, or validating a workload
/// specification.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// Syntax error in a JSON or YAML document.
    Parse {
        /// 1-based line number.
        line: usize,
        /// 1-based column number (0 when unknown).
        column: usize,
        /// Description of the problem.
        message: String,
    },
    /// A workload file could not be located on the search path.
    NotFound(String),
    /// An option had the wrong type or an invalid value.
    Invalid {
        /// The workload being parsed.
        workload: String,
        /// Description of the problem.
        message: String,
    },
    /// The `base` chain loops back on itself.
    InheritanceCycle(Vec<String>),
    /// Underlying I/O failure reading a workload file.
    Io(String),
}

impl ConfigError {
    pub(crate) fn parse(line: usize, column: usize, message: impl Into<String>) -> ConfigError {
        ConfigError::Parse {
            line,
            column,
            message: message.into(),
        }
    }

    pub(crate) fn invalid(workload: impl Into<String>, message: impl Into<String>) -> ConfigError {
        ConfigError::Invalid {
            workload: workload.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Parse {
                line,
                column,
                message,
            } => write!(f, "parse error at {line}:{column}: {message}"),
            ConfigError::NotFound(name) => write!(f, "workload `{name}` not found on search path"),
            ConfigError::Invalid { workload, message } => {
                write!(f, "invalid workload `{workload}`: {message}")
            }
            ConfigError::InheritanceCycle(chain) => {
                write!(f, "inheritance cycle: {}", chain.join(" -> "))
            }
            ConfigError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = ConfigError::parse(3, 7, "unexpected `}`");
        assert_eq!(e.to_string(), "parse error at 3:7: unexpected `}`");
        let e = ConfigError::InheritanceCycle(vec!["a".into(), "b".into(), "a".into()]);
        assert!(e.to_string().contains("a -> b -> a"));
    }
}
