//! A from-scratch JSON parser.
//!
//! Full RFC 8259 syntax plus two ergonomic extensions FireMarshal users
//! expect from hand-written configuration files: `//` and `#` comments, and
//! trailing commas in arrays/objects.

use std::collections::BTreeMap;

use crate::error::ConfigError;
use crate::value::Value;

/// Parses a JSON document into a [`Value`].
///
/// # Errors
///
/// Returns [`ConfigError::Parse`] with line/column information for any
/// syntax error, including trailing garbage after the document.
///
/// ```rust
/// use marshal_config::json::parse;
/// let v = parse(r#"{ "name": "bench", "jobs": [1, 2, 3] }"#)?;
/// assert_eq!(v.get("name").and_then(|n| n.as_str()), Some("bench"));
/// # Ok::<(), marshal_config::ConfigError>(())
/// ```
pub fn parse(text: &str) -> Result<Value, ConfigError> {
    let mut p = Parser::new(text);
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.error("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn error(&self, msg: impl Into<String>) -> ConfigError {
        ConfigError::parse(self.line, self.col, msg)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn skip_ws(&mut self) {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\n' | b'\r') => {
                    self.bump();
                }
                Some(b'#') => self.skip_line(),
                Some(b'/') if self.bytes.get(self.pos + 1) == Some(&b'/') => self.skip_line(),
                _ => break,
            }
        }
    }

    fn skip_line(&mut self) {
        while let Some(b) = self.peek() {
            self.bump();
            if b == b'\n' {
                break;
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ConfigError> {
        match self.peek() {
            Some(found) if found == b => {
                self.bump();
                Ok(())
            }
            Some(found) => Err(self.error(format!(
                "expected `{}`, found `{}`",
                b as char, found as char
            ))),
            None => Err(self.error(format!("expected `{}`, found end of input", b as char))),
        }
    }

    fn parse_value(&mut self) -> Result<Value, ConfigError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.error(format!("unexpected character `{}`", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, ConfigError> {
        for expected in word.bytes() {
            match self.bump() {
                Some(b) if b == expected => {}
                _ => return Err(self.error(format!("expected keyword `{word}`"))),
            }
        }
        Ok(value)
    }

    fn parse_object(&mut self) -> Result<Value, ConfigError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.bump();
                break;
            }
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            if map.insert(key.clone(), value).is_some() {
                return Err(self.error(format!("duplicate key `{key}`")));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.bump();
                }
                Some(b'}') => {
                    self.bump();
                    break;
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
        Ok(Value::Object(map))
    }

    fn parse_array(&mut self) -> Result<Value, ConfigError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.bump();
                break;
            }
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.bump();
                }
                Some(b']') => {
                    self.bump();
                    break;
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
        Ok(Value::Array(items))
    }

    fn parse_string(&mut self) -> Result<String, ConfigError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => break,
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|b| (b as char).to_digit(16))
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            code = code * 16 + d;
                        }
                        out.push(
                            char::from_u32(code).ok_or_else(|| self.error("bad \\u code point"))?,
                        );
                    }
                    other => {
                        return Err(
                            self.error(format!("bad escape `\\{:?}`", other.map(|b| b as char)))
                        )
                    }
                },
                Some(b) if b < 0x20 => return Err(self.error("control character in string")),
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let extra = match b {
                            0xC0..=0xDF => 1,
                            0xE0..=0xEF => 2,
                            0xF0..=0xF7 => 3,
                            _ => return Err(self.error("invalid utf-8 in string")),
                        };
                        let mut buf = vec![b];
                        for _ in 0..extra {
                            buf.push(self.bump().ok_or_else(|| self.error("truncated utf-8"))?);
                        }
                        out.push_str(
                            std::str::from_utf8(&buf)
                                .map_err(|_| self.error("invalid utf-8 in string"))?,
                        );
                    }
                }
            }
        }
        Ok(out)
    }

    fn parse_number(&mut self) -> Result<Value, ConfigError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.bump();
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.bump();
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.bump();
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.bump();
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.bump();
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.bump();
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.error(format!("bad number `{text}`")))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.error(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(parse("42").unwrap(), Value::Int(42));
        assert_eq!(parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(r#""hi""#).unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn nested_document() {
        let v = parse(
            r#"{
            "name": "latency-microbenchmark",
            "base": "pfa-base",
            "jobs": [
                { "name": "client", "linux": { "config": "pfa.kfrag" } },
                { "name": "server", "base": "bare-metal", "bin": "serve" }
            ]
        }"#,
        )
        .unwrap();
        let jobs = v.get("jobs").unwrap().as_array().unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[1].get("bin").and_then(Value::as_str), Some("serve"));
    }

    #[test]
    fn escapes_and_unicode() {
        assert_eq!(
            parse(r#""a\nb\t\"c\" A""#).unwrap(),
            Value::Str("a\nb\t\"c\" A".into())
        );
        assert_eq!(parse(r#""héllo""#).unwrap(), Value::Str("héllo".into()));
    }

    #[test]
    fn comments_and_trailing_commas() {
        let v = parse("{\n  // a comment\n  \"a\": 1, # another\n  \"b\": [1, 2,],\n}\n").unwrap();
        assert_eq!(v.get("a").and_then(Value::as_int), Some(1));
        assert_eq!(v.get("b").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn errors_carry_position() {
        match parse("{\n  \"a\": }\n") {
            Err(ConfigError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse("[1, 2").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse(r#"{"a":1,"a":2}"#).is_err()); // duplicate key
    }

    #[test]
    fn roundtrip_through_to_json() {
        let src = r#"{"a":[1,2,{"b":"x"}],"c":null,"d":true}"#;
        let v = parse(src).unwrap();
        assert_eq!(parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn deeply_nested() {
        let mut src = String::new();
        for _ in 0..100 {
            src.push('[');
        }
        src.push('1');
        for _ in 0..100 {
            src.push(']');
        }
        assert!(parse(&src).is_ok());
    }
}
