//! # marshal-config
//!
//! Workload specifications: the JSON/YAML configuration language of
//! FireMarshal (§III-A, Table II of the paper).
//!
//! - [`value`]: a dynamically-typed document tree shared by both syntaxes.
//! - [`json`]: a from-scratch JSON parser/serialiser.
//! - [`yaml`]: a YAML-subset parser (block mappings, sequences, scalars).
//! - [`schema`]: the typed [`WorkloadSpec`] with every Table II option.
//! - [`search`]: `$PATH`-style workload lookup across built-in and
//!   user-provided locations.
//! - [`inherit`]: recursive `base` resolution with per-option merge rules.
//! - [`jobs`]: expansion of the `jobs` option into per-node workloads.
//!
//! ## Example
//!
//! ```rust
//! use marshal_config::{SearchPath, resolve_workload};
//!
//! # fn main() -> Result<(), marshal_config::ConfigError> {
//! let mut search = SearchPath::new();
//! search.add_builtin("base.json", r#"{ "name": "base", "rootfs-size": "1GiB" }"#);
//! search.add_builtin(
//!     "bench.json",
//!     r#"{ "name": "bench", "base": "base.json", "command": "/run.sh" }"#,
//! );
//! let w = resolve_workload(&search, "bench.json")?;
//! assert_eq!(w.spec.command.as_deref(), Some("/run.sh"));
//! assert_eq!(w.spec.rootfs_size, Some(1 << 30)); // inherited
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod inherit;
pub mod jobs;
pub mod json;
pub mod schema;
pub mod search;
pub mod value;
pub mod yaml;

pub use error::ConfigError;
pub use inherit::{resolve_workload, ResolvedWorkload};
pub use jobs::expand_jobs;
pub use schema::{FirmwareKind, FirmwareSpec, JobSpec, LinuxSpec, TestingSpec, WorkloadSpec};
pub use search::SearchPath;
pub use value::Value;
