//! Recursive `base` inheritance.
//!
//! "Parent workloads are parsed recursively, with children inheriting
//! options from their parents (and overwriting as needed)" (§III-B step 1).
//!
//! Merge rules per option (child ⊕ parent):
//!
//! | option | rule |
//! |---|---|
//! | scalar options (`host-init`, `run`, `command`, `spike`, ...) | child overrides |
//! | `files`, `outputs`, `spike-args`, `qemu-args` | parent first, then child (append) |
//! | `linux.config` | parent fragments first, child fragments later (later wins at kconfig merge) |
//! | `linux.modules` | union, child overrides same-named module |
//! | `jobs` | never inherited — a workload's jobs are its own |
//! | `distro` | inherited; only root bases set it |

use crate::error::ConfigError;
use crate::schema::{FirmwareSpec, LinuxSpec, WorkloadSpec};
use crate::search::SearchPath;

/// A workload whose whole inheritance chain has been loaded and merged.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedWorkload {
    /// The fully merged specification (`base` is cleared).
    pub spec: WorkloadSpec,
    /// Names of the chain, root base first, this workload last.
    pub chain: Vec<String>,
    /// The raw, un-merged spec of every chain level (root base first).
    /// Lets the builder reproduce FireMarshal's recursive parent-image
    /// builds (each level's overlay/files applied on a copy of its
    /// parent's image) with per-level dependency tracking.
    pub levels: Vec<WorkloadSpec>,
    /// Warnings accumulated while parsing the chain (unknown options).
    pub warnings: Vec<String>,
}

impl ResolvedWorkload {
    /// The distribution this workload ultimately runs on, if any.
    pub fn distro(&self) -> Option<&str> {
        self.spec.distro.as_deref()
    }
}

/// Loads `name` from `search` and resolves its full inheritance chain.
///
/// # Errors
///
/// - [`ConfigError::NotFound`] if any workload in the chain is missing.
/// - [`ConfigError::InheritanceCycle`] if `base` edges loop.
/// - Parse/validation errors from the individual files.
///
/// ```rust
/// use marshal_config::{SearchPath, resolve_workload};
/// let mut sp = SearchPath::new();
/// sp.add_builtin("root.json", r#"{"name":"root","distro":"buildroot","outputs":["/a"]}"#);
/// sp.add_builtin("leaf.json", r#"{"name":"leaf","base":"root.json","outputs":["/b"]}"#);
/// let w = resolve_workload(&sp, "leaf.json")?;
/// assert_eq!(w.spec.outputs, vec!["/a", "/b"]);
/// assert_eq!(w.chain, vec!["root", "leaf"]);
/// # Ok::<(), marshal_config::ConfigError>(())
/// ```
pub fn resolve_workload(search: &SearchPath, name: &str) -> Result<ResolvedWorkload, ConfigError> {
    let mut visiting: Vec<String> = Vec::new();
    resolve_inner(search, name, &mut visiting)
}

fn resolve_inner(
    search: &SearchPath,
    name: &str,
    visiting: &mut Vec<String>,
) -> Result<ResolvedWorkload, ConfigError> {
    if visiting.iter().any(|v| v == name) {
        let mut chain = visiting.clone();
        chain.push(name.to_owned());
        return Err(ConfigError::InheritanceCycle(chain));
    }
    visiting.push(name.to_owned());

    let (origin, text) = search.load(name)?;
    let (mut spec, mut warnings) = WorkloadSpec::parse_str(&text, &origin)?;
    if spec.name.is_empty() {
        // Default the name from the file name, like FireMarshal does.
        spec.name = file_stem(name);
    }

    let resolved = match spec.base.clone() {
        Some(base) => {
            let parent = resolve_inner(search, &base, visiting)?;
            let mut chain = parent.chain;
            chain.push(spec.name.clone());
            let mut levels = parent.levels;
            levels.push(spec.clone());
            let mut all_warnings = parent.warnings;
            all_warnings.append(&mut warnings);
            ResolvedWorkload {
                spec: merge_specs(spec, parent.spec),
                chain,
                levels,
                warnings: all_warnings,
            }
        }
        None => ResolvedWorkload {
            chain: vec![spec.name.clone()],
            levels: vec![spec.clone()],
            spec,
            warnings,
        },
    };
    visiting.pop();
    Ok(resolved)
}

fn file_stem(name: &str) -> String {
    let base = name.rsplit('/').next().unwrap_or(name);
    base.trim_end_matches(".json")
        .trim_end_matches(".yaml")
        .trim_end_matches(".yml")
        .to_owned()
}

/// Merges a child spec over a fully-resolved parent spec.
///
/// Exposed for the `jobs` expansion, which applies the same rules with the
/// enclosing workload as the implicit parent.
pub fn merge_specs(child: WorkloadSpec, parent: WorkloadSpec) -> WorkloadSpec {
    let linux = match (child.linux, parent.linux) {
        (Some(c), Some(p)) => Some(merge_linux(c, p)),
        (c, p) => c.or(p),
    };
    let firmware = match (child.firmware, parent.firmware) {
        (Some(c), Some(p)) => Some(merge_firmware(c, p)),
        (c, p) => c.or(p),
    };
    // `run`/`command` are one logical slot: a child setting either replaces
    // both (otherwise a child `command` could conflict with an inherited
    // `run`).
    let (run, command) = if child.run.is_some() || child.command.is_some() {
        (child.run, child.command)
    } else {
        (parent.run, parent.command)
    };
    WorkloadSpec {
        name: child.name,
        base: None,
        distro: child.distro.or(parent.distro),
        files: parent.files.into_iter().chain(child.files).collect(),
        overlay: child.overlay.or(parent.overlay),
        host_init: child.host_init.or(parent.host_init),
        guest_init: child.guest_init.or(parent.guest_init),
        run,
        command,
        outputs: parent.outputs.into_iter().chain(child.outputs).collect(),
        post_run_hook: child.post_run_hook.or(parent.post_run_hook),
        linux,
        firmware,
        spike: child.spike.or(parent.spike),
        spike_args: parent
            .spike_args
            .into_iter()
            .chain(child.spike_args)
            .collect(),
        qemu: child.qemu.or(parent.qemu),
        qemu_args: parent
            .qemu_args
            .into_iter()
            .chain(child.qemu_args)
            .collect(),
        bin: child.bin.or(parent.bin),
        img: child.img.or(parent.img),
        rootfs_size: child.rootfs_size.or(parent.rootfs_size),
        testing: child.testing.or(parent.testing),
        jobs: child.jobs,
    }
}

fn merge_linux(child: LinuxSpec, parent: LinuxSpec) -> LinuxSpec {
    let mut modules = parent.modules;
    modules.extend(child.modules);
    LinuxSpec {
        source: child.source.or(parent.source),
        config: parent.config.into_iter().chain(child.config).collect(),
        modules,
    }
}

fn merge_firmware(child: FirmwareSpec, parent: FirmwareSpec) -> FirmwareSpec {
    FirmwareSpec {
        kind: child.kind.or(parent.kind),
        source: child.source.or(parent.source),
        build_args: parent
            .build_args
            .into_iter()
            .chain(child.build_args)
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp(entries: &[(&str, &str)]) -> SearchPath {
        let mut sp = SearchPath::new();
        for (name, text) in entries {
            sp.add_builtin(*name, *text);
        }
        sp
    }

    #[test]
    fn three_level_chain() {
        let sp = sp(&[
            (
                "br-base.json",
                r#"{"name":"br-base","distro":"buildroot","rootfs-size":"1GiB"}"#,
            ),
            (
                "pfa-base.json",
                r#"{"name":"pfa-base","base":"br-base.json","host-init":"cross-compile.sh",
                   "linux":{"source":"pfa-linux","config":"pfa-linux.kfrag"}}"#,
            ),
            (
                "bench.json",
                r#"{"name":"bench","base":"pfa-base.json","command":"/bench",
                   "linux":{"config":"pfa.kfrag"}}"#,
            ),
        ]);
        let w = resolve_workload(&sp, "bench.json").unwrap();
        assert_eq!(w.chain, vec!["br-base", "pfa-base", "bench"]);
        assert_eq!(w.spec.distro.as_deref(), Some("buildroot"));
        assert_eq!(w.spec.rootfs_size, Some(1 << 30));
        assert_eq!(w.spec.host_init.as_deref(), Some("cross-compile.sh"));
        let linux = w.spec.linux.unwrap();
        assert_eq!(linux.source.as_deref(), Some("pfa-linux"));
        // Parent fragments first, child later (later wins at merge time).
        assert_eq!(linux.config, vec!["pfa-linux.kfrag", "pfa.kfrag"]);
    }

    #[test]
    fn child_overrides_scalars() {
        let sp = sp(&[
            (
                "p.json",
                r#"{"name":"p","command":"parent-cmd","spike":"spike-a"}"#,
            ),
            (
                "c.json",
                r#"{"name":"c","base":"p.json","command":"child-cmd"}"#,
            ),
        ]);
        let w = resolve_workload(&sp, "c.json").unwrap();
        assert_eq!(w.spec.command.as_deref(), Some("child-cmd"));
        assert_eq!(w.spec.spike.as_deref(), Some("spike-a"));
    }

    #[test]
    fn child_run_clears_parent_command() {
        let sp = sp(&[
            ("p.json", r#"{"name":"p","command":"parent-cmd"}"#),
            ("c.json", r#"{"name":"c","base":"p.json","run":"mine.sh"}"#),
        ]);
        let w = resolve_workload(&sp, "c.json").unwrap();
        assert_eq!(w.spec.run.as_deref(), Some("mine.sh"));
        assert_eq!(w.spec.command, None);
    }

    #[test]
    fn lists_append() {
        let sp = sp(&[
            ("p.json", r#"{"name":"p","outputs":["/a"],"files":["pa"]}"#),
            (
                "c.json",
                r#"{"name":"c","base":"p.json","outputs":["/b"],"files":["cb"]}"#,
            ),
        ]);
        let w = resolve_workload(&sp, "c.json").unwrap();
        assert_eq!(w.spec.outputs, vec!["/a", "/b"]);
        assert_eq!(w.spec.files.len(), 2);
        assert_eq!(w.spec.files[0].host, "pa");
    }

    #[test]
    fn jobs_not_inherited() {
        let sp = sp(&[
            ("p.json", r#"{"name":"p","jobs":[{"name":"pj"}]}"#),
            ("c.json", r#"{"name":"c","base":"p.json"}"#),
        ]);
        let w = resolve_workload(&sp, "c.json").unwrap();
        assert!(w.spec.jobs.is_empty());
    }

    #[test]
    fn cycle_detected() {
        let sp = sp(&[
            ("a.json", r#"{"name":"a","base":"b.json"}"#),
            ("b.json", r#"{"name":"b","base":"a.json"}"#),
        ]);
        match resolve_workload(&sp, "a.json") {
            Err(ConfigError::InheritanceCycle(chain)) => {
                assert_eq!(chain.first().map(String::as_str), Some("a.json"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn self_cycle_detected() {
        let sp = sp(&[("a.json", r#"{"name":"a","base":"a.json"}"#)]);
        assert!(matches!(
            resolve_workload(&sp, "a.json"),
            Err(ConfigError::InheritanceCycle(_))
        ));
    }

    #[test]
    fn missing_base_not_found() {
        let sp = sp(&[("a.json", r#"{"name":"a","base":"ghost.json"}"#)]);
        assert!(matches!(
            resolve_workload(&sp, "a.json"),
            Err(ConfigError::NotFound(_))
        ));
    }

    #[test]
    fn name_defaults_from_file() {
        let sp = sp(&[("quick.json", r#"{"command":"x"}"#)]);
        let w = resolve_workload(&sp, "quick.json").unwrap();
        assert_eq!(w.spec.name, "quick");
    }

    #[test]
    fn module_merge_child_wins() {
        let sp = sp(&[
            (
                "p.json",
                r#"{"name":"p","linux":{"modules":{"icenet":"icenet-v1","iceblk":"iceblk-v1"}}}"#,
            ),
            (
                "c.json",
                r#"{"name":"c","base":"p.json","linux":{"modules":{"icenet":"icenet-v2"}}}"#,
            ),
        ]);
        let w = resolve_workload(&sp, "c.json").unwrap();
        let m = w.spec.linux.unwrap().modules;
        assert_eq!(m["icenet"], "icenet-v2");
        assert_eq!(m["iceblk"], "iceblk-v1");
    }
}
