//! Expansion of the `jobs` option.
//!
//! "Jobs are implicitly based on the top level workload description and
//! follow all inheritance rules" (§III-A-1). A job that declares its own
//! `base` (like the bare-metal `server` job of Listing 1) instead inherits
//! from that base's chain.

use crate::error::ConfigError;
use crate::inherit::{merge_specs, resolve_workload, ResolvedWorkload};
use crate::search::SearchPath;

/// One node of a (possibly multi-node) workload, ready to build.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpandedJob {
    /// `parent.job` qualified name, used for artifact directories.
    pub qualified_name: String,
    /// The job's fully-merged spec.
    pub workload: ResolvedWorkload,
}

/// Expands a resolved workload into its runnable node list.
///
/// A workload without jobs expands to a single node: itself. A workload
/// with jobs expands to one node per job — the top-level workload then only
/// contributes shared options and is not itself a node, matching the
/// FireMarshal/FireSim model where each job becomes a simulated node.
///
/// # Errors
///
/// Propagates resolution errors for jobs that declare their own `base`.
pub fn expand_jobs(
    search: &SearchPath,
    workload: &ResolvedWorkload,
) -> Result<Vec<ExpandedJob>, ConfigError> {
    if workload.spec.jobs.is_empty() {
        return Ok(vec![ExpandedJob {
            qualified_name: workload.spec.name.clone(),
            workload: workload.clone(),
        }]);
    }
    let mut out = Vec::with_capacity(workload.spec.jobs.len());
    for job in &workload.spec.jobs {
        let qualified_name = format!("{}.{}", workload.spec.name, job.name);
        let resolved = match &job.base {
            Some(base) => {
                // Explicit base: the job ignores the enclosing workload.
                let parent = resolve_workload(search, base)?;
                let mut chain = parent.chain.clone();
                chain.push(job.name.clone());
                let mut levels = parent.levels.clone();
                levels.push(job.clone());
                ResolvedWorkload {
                    spec: merge_specs(job.clone(), parent.spec),
                    chain,
                    levels,
                    warnings: parent.warnings,
                }
            }
            None => {
                // Implicit base: the enclosing workload (without its jobs).
                let mut parent_spec = workload.spec.clone();
                parent_spec.jobs = Vec::new();
                let mut chain = workload.chain.clone();
                chain.push(job.name.clone());
                let mut levels = workload.levels.clone();
                levels.push(job.clone());
                ResolvedWorkload {
                    spec: merge_specs(job.clone(), parent_spec),
                    chain,
                    levels,
                    warnings: Vec::new(),
                }
            }
        };
        out.push(ExpandedJob {
            qualified_name,
            workload: resolved,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp() -> SearchPath {
        let mut sp = SearchPath::new();
        sp.add_builtin(
            "br-base.json",
            r#"{"name":"br-base","distro":"buildroot","rootfs-size":"1GiB"}"#,
        );
        sp.add_builtin(
            "bare-metal.json",
            r#"{"name":"bare-metal","distro":"bare-metal"}"#,
        );
        sp.add_builtin(
            "latency.json",
            r#"{ "name" : "latency-microbenchmark",
                 "base" : "br-base.json",
                 "post-run-hook" : "extract_csv.ms",
                 "jobs" : [
                   { "name" : "client", "command": "/client" },
                   { "name" : "server", "base" : "bare-metal.json", "bin" : "serve" }
                 ]}"#,
        );
        sp
    }

    #[test]
    fn single_node_workloads_expand_to_themselves() {
        let sp = sp();
        let w = resolve_workload(&sp, "br-base.json").unwrap();
        let jobs = expand_jobs(&sp, &w).unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].qualified_name, "br-base");
    }

    #[test]
    fn listing1_jobs_expand() {
        let sp = sp();
        let w = resolve_workload(&sp, "latency.json").unwrap();
        let jobs = expand_jobs(&sp, &w).unwrap();
        assert_eq!(jobs.len(), 2);

        let client = &jobs[0];
        assert_eq!(client.qualified_name, "latency-microbenchmark.client");
        // Implicit base: inherits buildroot distro and post-run-hook.
        assert_eq!(client.workload.spec.distro.as_deref(), Some("buildroot"));
        assert_eq!(
            client.workload.spec.post_run_hook.as_deref(),
            Some("extract_csv.ms")
        );
        assert_eq!(client.workload.spec.command.as_deref(), Some("/client"));
        assert_eq!(client.workload.spec.rootfs_size, Some(1 << 30));

        let server = &jobs[1];
        assert_eq!(server.qualified_name, "latency-microbenchmark.server");
        // Explicit base: bare-metal, NOT the enclosing workload.
        assert_eq!(server.workload.spec.distro.as_deref(), Some("bare-metal"));
        assert_eq!(server.workload.spec.bin.as_deref(), Some("serve"));
        assert_eq!(server.workload.spec.post_run_hook, None);
    }

    #[test]
    fn job_chain_names() {
        let sp = sp();
        let w = resolve_workload(&sp, "latency.json").unwrap();
        let jobs = expand_jobs(&sp, &w).unwrap();
        assert_eq!(
            jobs[0].workload.chain,
            vec!["br-base", "latency-microbenchmark", "client"]
        );
        assert_eq!(jobs[1].workload.chain, vec!["bare-metal", "server"]);
    }

    #[test]
    fn jobs_do_not_recurse() {
        let sp = sp();
        let w = resolve_workload(&sp, "latency.json").unwrap();
        let jobs = expand_jobs(&sp, &w).unwrap();
        for j in &jobs {
            assert!(j.workload.spec.jobs.is_empty());
        }
    }
}
