//! The typed workload specification — every option of Table II.

use std::collections::BTreeMap;

use crate::error::ConfigError;
use crate::value::Value;

/// Which SBI firmware implementation to link under the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FirmwareKind {
    /// OpenSBI (the modern default).
    #[default]
    OpenSbi,
    /// The Berkeley Boot Loader.
    Bbl,
}

impl FirmwareKind {
    /// Parses `"opensbi"` / `"bbl"`.
    pub fn parse(s: &str) -> Option<FirmwareKind> {
        match s.to_ascii_lowercase().as_str() {
            "opensbi" => Some(FirmwareKind::OpenSbi),
            "bbl" => Some(FirmwareKind::Bbl),
            _ => None,
        }
    }

    /// The canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            FirmwareKind::OpenSbi => "opensbi",
            FirmwareKind::Bbl => "bbl",
        }
    }
}

/// `linux` option block: kernel customisation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LinuxSpec {
    /// Kernel source identifier (a named modelled source tree).
    pub source: Option<String>,
    /// Ordered configuration fragments (later fragments win).
    pub config: Vec<String>,
    /// Kernel modules: name → source identifier.
    pub modules: BTreeMap<String, String>,
}

impl LinuxSpec {
    /// Whether nothing is customised.
    pub fn is_empty(&self) -> bool {
        self.source.is_none() && self.config.is_empty() && self.modules.is_empty()
    }
}

/// `firmware` option block.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FirmwareSpec {
    /// Which firmware to use.
    pub kind: Option<FirmwareKind>,
    /// Custom firmware source identifier.
    pub source: Option<String>,
    /// Extra build arguments folded into the firmware fingerprint.
    pub build_args: Vec<String>,
}

impl FirmwareSpec {
    /// Whether nothing is customised.
    pub fn is_empty(&self) -> bool {
        self.kind.is_none() && self.source.is_none() && self.build_args.is_empty()
    }
}

/// `testing` option block.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TestingSpec {
    /// Directory of reference outputs (`refDir` in FireMarshal).
    pub ref_dir: Option<String>,
    /// Simulation step budget before the test is considered hung.
    pub timeout: Option<u64>,
}

/// A `files` entry: copy a host path to a guest path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMapping {
    /// Host-side source path (relative to the workload directory).
    pub host: String,
    /// Guest-side destination path (absolute).
    pub guest: String,
}

/// A job is a full workload fragment nested under `jobs`.
pub type JobSpec = WorkloadSpec;

/// A workload specification: one parsed JSON/YAML file (Table II).
///
/// All fields except `name` are optional; unset fields inherit from `base`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WorkloadSpec {
    /// Workload name (required).
    pub name: String,
    /// Parent workload to inherit from.
    pub base: Option<String>,
    /// Distribution for root bases: `buildroot`, `fedora`, or `bare-metal`.
    pub distro: Option<String>,
    /// Files to copy into the image.
    pub files: Vec<FileMapping>,
    /// A directory overlaid onto the image root.
    pub overlay: Option<String>,
    /// Script to run on the host before building.
    pub host_init: Option<String>,
    /// Script to run once inside the guest at build time.
    pub guest_init: Option<String>,
    /// Script file to run on every boot.
    pub run: Option<String>,
    /// Command line to run on every boot (mutually exclusive with `run`).
    pub command: Option<String>,
    /// Files to copy out of the image after a run.
    pub outputs: Vec<String>,
    /// Host script run over the collected outputs.
    pub post_run_hook: Option<String>,
    /// Kernel customisation.
    pub linux: Option<LinuxSpec>,
    /// Firmware customisation.
    pub firmware: Option<FirmwareSpec>,
    /// Custom Spike simulator binary identifier.
    pub spike: Option<String>,
    /// Extra arguments for Spike.
    pub spike_args: Vec<String>,
    /// Custom QEMU simulator binary identifier.
    pub qemu: Option<String>,
    /// Extra arguments for QEMU.
    pub qemu_args: Vec<String>,
    /// Hard-coded boot binary (bare-metal workloads).
    pub bin: Option<String>,
    /// Hard-coded disk image.
    pub img: Option<String>,
    /// Disk image size in bytes.
    pub rootfs_size: Option<u64>,
    /// Testing configuration.
    pub testing: Option<TestingSpec>,
    /// Per-node job specifications.
    pub jobs: Vec<JobSpec>,
}

impl WorkloadSpec {
    /// Parses a spec from JSON or YAML text, picking the syntax from
    /// `file_name`'s extension (defaulting to JSON sniffing).
    ///
    /// Returns the spec plus warnings for unknown keys.
    ///
    /// # Errors
    ///
    /// Propagates parse errors and type errors as [`ConfigError`].
    pub fn parse_str(
        text: &str,
        file_name: &str,
    ) -> Result<(WorkloadSpec, Vec<String>), ConfigError> {
        let value = if file_name.ends_with(".yaml") || file_name.ends_with(".yml") {
            crate::yaml::parse(text)?
        } else if file_name.ends_with(".json") || text.trim_start().starts_with('{') {
            crate::json::parse(text)?
        } else {
            crate::yaml::parse(text)?
        };
        WorkloadSpec::from_value(&value, file_name)
    }

    /// Builds a spec from a parsed [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Invalid`] for non-object documents, wrongly
    /// typed options, or an invalid `rootfs-size`.
    pub fn from_value(
        value: &Value,
        origin: &str,
    ) -> Result<(WorkloadSpec, Vec<String>), ConfigError> {
        let obj = value
            .as_object()
            .ok_or_else(|| ConfigError::invalid(origin, "workload must be an object"))?;
        let mut spec = WorkloadSpec::default();
        let mut warnings = Vec::new();

        for (key, v) in obj {
            match key.as_str() {
                "name" => spec.name = str_opt(v, origin, key)?.unwrap_or_default(),
                "base" => spec.base = str_opt(v, origin, key)?,
                "distro" => spec.distro = str_opt(v, origin, key)?,
                "overlay" => spec.overlay = str_opt(v, origin, key)?,
                "host-init" | "host_init" => spec.host_init = str_opt(v, origin, key)?,
                "guest-init" | "guest_init" => spec.guest_init = str_opt(v, origin, key)?,
                "run" => spec.run = str_opt(v, origin, key)?,
                "command" => spec.command = str_opt(v, origin, key)?,
                "post-run-hook" | "post_run_hook" => spec.post_run_hook = str_opt(v, origin, key)?,
                "spike" => spec.spike = str_opt(v, origin, key)?,
                "qemu" => spec.qemu = str_opt(v, origin, key)?,
                "bin" => spec.bin = str_opt(v, origin, key)?,
                "img" => spec.img = str_opt(v, origin, key)?,
                "spike-args" | "spike_args" => spec.spike_args = str_list(v, origin, key)?,
                "qemu-args" | "qemu_args" => spec.qemu_args = str_list(v, origin, key)?,
                "outputs" => spec.outputs = str_list(v, origin, key)?,
                "rootfs-size" | "rootfs_size" => {
                    spec.rootfs_size = Some(parse_size(v, origin)?);
                }
                "files" => {
                    let items = v
                        .as_array()
                        .ok_or_else(|| ConfigError::invalid(origin, "`files` must be an array"))?;
                    for item in items {
                        spec.files.push(parse_file_mapping(item, origin)?);
                    }
                }
                "linux" => spec.linux = Some(parse_linux(v, origin)?),
                "firmware" => spec.firmware = Some(parse_firmware(v, origin)?),
                "testing" => spec.testing = Some(parse_testing(v, origin)?),
                "jobs" => {
                    let items = v
                        .as_array()
                        .ok_or_else(|| ConfigError::invalid(origin, "`jobs` must be an array"))?;
                    for item in items {
                        let (job, mut w) = WorkloadSpec::from_value(item, origin)?;
                        if job.name.is_empty() {
                            return Err(ConfigError::invalid(origin, "every job needs a `name`"));
                        }
                        warnings.append(&mut w);
                        spec.jobs.push(job);
                    }
                }
                other => warnings.push(format!("{origin}: unknown option `{other}`")),
            }
        }
        spec.validate(origin)?;
        Ok((spec, warnings))
    }

    /// Structural validation that does not require inheritance context.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Invalid`] when both `run` and `command` are
    /// set, or a job nests its own `jobs`.
    pub fn validate(&self, origin: &str) -> Result<(), ConfigError> {
        if self.run.is_some() && self.command.is_some() {
            return Err(ConfigError::invalid(
                origin,
                "`run` and `command` are mutually exclusive",
            ));
        }
        for job in &self.jobs {
            if !job.jobs.is_empty() {
                return Err(ConfigError::invalid(
                    origin,
                    format!("job `{}` must not define nested jobs", job.name),
                ));
            }
        }
        Ok(())
    }

    /// The boot-time payload, if any: `command` string or `run` script.
    pub fn boot_payload(&self) -> Option<&str> {
        self.command.as_deref().or(self.run.as_deref())
    }
}

fn str_opt(v: &Value, origin: &str, key: &str) -> Result<Option<String>, ConfigError> {
    match v {
        Value::Str(s) => Ok(Some(s.clone())),
        Value::Null => Ok(None),
        other => Err(ConfigError::invalid(
            origin,
            format!("`{key}` must be a string, found {}", other.kind()),
        )),
    }
}

fn str_list(v: &Value, origin: &str, key: &str) -> Result<Vec<String>, ConfigError> {
    match v {
        Value::Str(s) => Ok(vec![s.clone()]),
        Value::Array(items) => items
            .iter()
            .map(|i| {
                i.as_str().map(str::to_owned).ok_or_else(|| {
                    ConfigError::invalid(
                        origin,
                        format!("`{key}` entries must be strings, found {}", i.kind()),
                    )
                })
            })
            .collect(),
        other => Err(ConfigError::invalid(
            origin,
            format!("`{key}` must be a string or array, found {}", other.kind()),
        )),
    }
}

fn parse_file_mapping(v: &Value, origin: &str) -> Result<FileMapping, ConfigError> {
    match v {
        // "path" means host `path` -> guest `/path-basename`.
        Value::Str(s) => {
            let base = s.rsplit('/').find(|p| !p.is_empty()).unwrap_or(s);
            Ok(FileMapping {
                host: s.clone(),
                guest: format!("/{base}"),
            })
        }
        Value::Object(m) => {
            let host = m
                .get("host")
                .and_then(Value::as_str)
                .ok_or_else(|| ConfigError::invalid(origin, "file mapping needs `host`"))?;
            let guest = m
                .get("guest")
                .and_then(Value::as_str)
                .ok_or_else(|| ConfigError::invalid(origin, "file mapping needs `guest`"))?;
            Ok(FileMapping {
                host: host.to_owned(),
                guest: guest.to_owned(),
            })
        }
        Value::Array(pair) if pair.len() == 2 => {
            let host = pair[0].as_str().ok_or_else(|| {
                ConfigError::invalid(origin, "file mapping host must be a string")
            })?;
            let guest = pair[1].as_str().ok_or_else(|| {
                ConfigError::invalid(origin, "file mapping guest must be a string")
            })?;
            Ok(FileMapping {
                host: host.to_owned(),
                guest: guest.to_owned(),
            })
        }
        other => Err(ConfigError::invalid(
            origin,
            format!("bad file mapping: {}", other.kind()),
        )),
    }
}

fn parse_linux(v: &Value, origin: &str) -> Result<LinuxSpec, ConfigError> {
    let obj = v
        .as_object()
        .ok_or_else(|| ConfigError::invalid(origin, "`linux` must be an object"))?;
    let mut spec = LinuxSpec::default();
    for (key, v) in obj {
        match key.as_str() {
            "source" => spec.source = str_opt(v, origin, "linux.source")?,
            "config" => spec.config = str_list(v, origin, "linux.config")?,
            "modules" => {
                let m = v.as_object().ok_or_else(|| {
                    ConfigError::invalid(origin, "`linux.modules` must be an object")
                })?;
                for (name, src) in m {
                    let src = src.as_str().ok_or_else(|| {
                        ConfigError::invalid(origin, "`linux.modules` values must be strings")
                    })?;
                    spec.modules.insert(name.clone(), src.to_owned());
                }
            }
            other => {
                return Err(ConfigError::invalid(
                    origin,
                    format!("unknown `linux` option `{other}`"),
                ))
            }
        }
    }
    Ok(spec)
}

fn parse_firmware(v: &Value, origin: &str) -> Result<FirmwareSpec, ConfigError> {
    let obj = v
        .as_object()
        .ok_or_else(|| ConfigError::invalid(origin, "`firmware` must be an object"))?;
    let mut spec = FirmwareSpec::default();
    for (key, v) in obj {
        match key.as_str() {
            "use" | "kind" => {
                let s = str_opt(v, origin, "firmware.use")?;
                spec.kind = match s.as_deref() {
                    Some(s) => Some(FirmwareKind::parse(s).ok_or_else(|| {
                        ConfigError::invalid(origin, format!("unknown firmware `{s}`"))
                    })?),
                    None => None,
                };
            }
            "source" => spec.source = str_opt(v, origin, "firmware.source")?,
            "build-args" | "build_args" => {
                spec.build_args = str_list(v, origin, "firmware.build-args")?
            }
            other => {
                return Err(ConfigError::invalid(
                    origin,
                    format!("unknown `firmware` option `{other}`"),
                ))
            }
        }
    }
    Ok(spec)
}

fn parse_testing(v: &Value, origin: &str) -> Result<TestingSpec, ConfigError> {
    let obj = v
        .as_object()
        .ok_or_else(|| ConfigError::invalid(origin, "`testing` must be an object"))?;
    let mut spec = TestingSpec::default();
    for (key, v) in obj {
        match key.as_str() {
            "refDir" | "ref-dir" | "ref_dir" => {
                spec.ref_dir = str_opt(v, origin, "testing.refDir")?
            }
            "timeout" => {
                spec.timeout = match v {
                    Value::Int(n) if *n >= 0 => Some(*n as u64),
                    other => {
                        return Err(ConfigError::invalid(
                            origin,
                            format!(
                                "`testing.timeout` must be a non-negative int, found {}",
                                other.kind()
                            ),
                        ))
                    }
                }
            }
            other => {
                return Err(ConfigError::invalid(
                    origin,
                    format!("unknown `testing` option `{other}`"),
                ))
            }
        }
    }
    Ok(spec)
}

/// Parses a size: an integer byte count or a string like `"3GiB"`,
/// `"512MiB"`, `"4KiB"`, `"2GB"`, `"100"`.
fn parse_size(v: &Value, origin: &str) -> Result<u64, ConfigError> {
    match v {
        Value::Int(n) if *n >= 0 => Ok(*n as u64),
        Value::Str(s) => {
            parse_size_str(s).ok_or_else(|| ConfigError::invalid(origin, format!("bad size `{s}`")))
        }
        other => Err(ConfigError::invalid(
            origin,
            format!(
                "`rootfs-size` must be an int or string, found {}",
                other.kind()
            ),
        )),
    }
}

/// Parses `"3GiB"`-style size strings.
pub fn parse_size_str(s: &str) -> Option<u64> {
    let s = s.trim();
    let split = s.find(|c: char| !c.is_ascii_digit())?;
    if split == 0 {
        return None;
    }
    let (num, unit) = s.split_at(split);
    let num: u64 = num.parse().ok()?;
    let mult: u64 = match unit.trim() {
        "B" | "" => 1,
        "KiB" | "K" | "k" => 1 << 10,
        "MiB" | "M" | "m" => 1 << 20,
        "GiB" | "G" | "g" => 1 << 30,
        "KB" => 1_000,
        "MB" => 1_000_000,
        "GB" => 1_000_000_000,
        _ => return None,
    };
    num.checked_mul(mult)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_listing1_base() {
        // The pfa-base workload from Listing 1 of the paper.
        let src = r#"{
            "name": "pfa-base",
            "base": "buildroot",
            "host-init": "cross-compile.sh",
            "linux": {
                "source": "pfa-linux",
                "config": "pfa-linux.kfrag"
            },
            "overlay": "pfa-test-root/",
            "spike": "pfa-spike"
        }"#;
        let (spec, warnings) = WorkloadSpec::parse_str(src, "pfa-base.json").unwrap();
        assert!(warnings.is_empty());
        assert_eq!(spec.name, "pfa-base");
        assert_eq!(spec.base.as_deref(), Some("buildroot"));
        assert_eq!(spec.host_init.as_deref(), Some("cross-compile.sh"));
        let linux = spec.linux.unwrap();
        assert_eq!(linux.source.as_deref(), Some("pfa-linux"));
        assert_eq!(linux.config, vec!["pfa-linux.kfrag"]);
        assert_eq!(spec.overlay.as_deref(), Some("pfa-test-root/"));
        assert_eq!(spec.spike.as_deref(), Some("pfa-spike"));
    }

    #[test]
    fn parse_listing1_microbenchmark() {
        let src = r#"{ "name" : "latency-microbenchmark",
          "base" : "pfa-base",
          "post-run-hook" : "extract_csv.py",
          "jobs" : [
            { "name" : "client",
              "linux" : { "config" : "pfa.kfrag" }
            },
            { "name" : "server",
              "base" : "bare-metal",
              "bin" : "serve" }
          ]
        }"#;
        let (spec, _) = WorkloadSpec::parse_str(src, "latency.json").unwrap();
        assert_eq!(spec.jobs.len(), 2);
        assert_eq!(spec.jobs[0].name, "client");
        assert_eq!(spec.jobs[1].base.as_deref(), Some("bare-metal"));
        assert_eq!(spec.jobs[1].bin.as_deref(), Some("serve"));
        assert_eq!(spec.post_run_hook.as_deref(), Some("extract_csv.py"));
    }

    #[test]
    fn parse_listing2_intspeed_shape() {
        let src = r#"{ "name" : "intspeed",
          "base" : "buildroot",
          "host-init" : "speckle-build.sh intspeed ref",
          "overlay" : "overlay/intspeed/ref",
          "rootfs-size" : "3GiB",
          "outputs" : ["/output"],
          "post-run-hook" : "handle-results.py",
          "jobs" : [
            { "name" : "600.perlbench_s",
              "command": "/intspeed.sh 600.perlbench_s --threads 1"},
            { "name" : "657.xz_s",
              "command": "/intspeed.sh 657.xz_s --threads 1"}
          ]
        }"#;
        let (spec, _) = WorkloadSpec::parse_str(src, "intspeed.json").unwrap();
        assert_eq!(spec.rootfs_size, Some(3 << 30));
        assert_eq!(spec.outputs, vec!["/output"]);
        assert_eq!(spec.jobs.len(), 2);
        assert_eq!(
            spec.jobs[0].command.as_deref(),
            Some("/intspeed.sh 600.perlbench_s --threads 1")
        );
    }

    #[test]
    fn run_and_command_conflict() {
        let src = r#"{"name":"x","run":"a.sh","command":"b"}"#;
        assert!(matches!(
            WorkloadSpec::parse_str(src, "x.json"),
            Err(ConfigError::Invalid { .. })
        ));
    }

    #[test]
    fn nested_jobs_rejected() {
        let src = r#"{"name":"x","jobs":[{"name":"j","jobs":[{"name":"k"}]}]}"#;
        assert!(WorkloadSpec::parse_str(src, "x.json").is_err());
    }

    #[test]
    fn unknown_keys_warn() {
        let src = r#"{"name":"x","typo-option":1}"#;
        let (_, warnings) = WorkloadSpec::parse_str(src, "x.json").unwrap();
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("typo-option"));
    }

    #[test]
    fn sizes() {
        assert_eq!(parse_size_str("3GiB"), Some(3 << 30));
        assert_eq!(parse_size_str("512MiB"), Some(512 << 20));
        assert_eq!(parse_size_str("4KiB"), Some(4 << 10));
        assert_eq!(parse_size_str("2GB"), Some(2_000_000_000));
        assert_eq!(parse_size_str("100B"), Some(100));
        assert_eq!(parse_size_str("GiB"), None);
        assert_eq!(parse_size_str("3XB"), None);
    }

    #[test]
    fn yaml_spec() {
        let src = "name: w\nbase: br-base.json\ncommand: echo hi\noutputs:\n  - /out\n";
        let (spec, _) = WorkloadSpec::parse_str(src, "w.yaml").unwrap();
        assert_eq!(spec.name, "w");
        assert_eq!(spec.command.as_deref(), Some("echo hi"));
        assert_eq!(spec.outputs, vec!["/out"]);
    }

    #[test]
    fn file_mappings() {
        let src =
            r#"{"name":"x","files":["bench/a.out",{"host":"b","guest":"/usr/bin/b"},["c","/c2"]]}"#;
        let (spec, _) = WorkloadSpec::parse_str(src, "x.json").unwrap();
        assert_eq!(spec.files.len(), 3);
        assert_eq!(spec.files[0].guest, "/a.out");
        assert_eq!(spec.files[1].guest, "/usr/bin/b");
        assert_eq!(spec.files[2].host, "c");
    }

    #[test]
    fn boot_payload_priority() {
        let (spec, _) = WorkloadSpec::parse_str(r#"{"name":"x","command":"c"}"#, "x.json").unwrap();
        assert_eq!(spec.boot_payload(), Some("c"));
        let (spec, _) = WorkloadSpec::parse_str(r#"{"name":"x","run":"r.sh"}"#, "x.json").unwrap();
        assert_eq!(spec.boot_payload(), Some("r.sh"));
        let (spec, _) = WorkloadSpec::parse_str(r#"{"name":"x"}"#, "x.json").unwrap();
        assert_eq!(spec.boot_payload(), None);
    }

    #[test]
    fn firmware_parse() {
        let src = r#"{"name":"x","firmware":{"use":"bbl","build-args":["DEBUG=1"]}}"#;
        let (spec, _) = WorkloadSpec::parse_str(src, "x.json").unwrap();
        let fw = spec.firmware.unwrap();
        assert_eq!(fw.kind, Some(FirmwareKind::Bbl));
        assert_eq!(fw.build_args, vec!["DEBUG=1"]);
        let bad = r#"{"name":"x","firmware":{"use":"uboot"}}"#;
        assert!(WorkloadSpec::parse_str(bad, "x.json").is_err());
    }
}
