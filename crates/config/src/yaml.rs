//! A YAML-subset parser.
//!
//! FireMarshal accepts workloads in either JSON or YAML; this module
//! implements the subset of YAML that configuration files actually use:
//! block mappings, block sequences (including `- key: value` inline starts),
//! quoted and plain scalars, flow collections (`[a, b]`, `{k: v}`), comments
//! and an optional `---` document marker. Anchors, aliases, multi-document
//! streams and block scalars are not supported.

use std::collections::BTreeMap;

use crate::error::ConfigError;
use crate::value::Value;

/// Parses a YAML document into a [`Value`].
///
/// # Errors
///
/// Returns [`ConfigError::Parse`] for indentation errors, bad scalars, or
/// unsupported constructs.
///
/// ```rust
/// use marshal_config::yaml::parse;
/// let v = parse("name: bench\njobs:\n  - name: a\n  - name: b\n")?;
/// assert_eq!(v.get("jobs").unwrap().as_array().unwrap().len(), 2);
/// # Ok::<(), marshal_config::ConfigError>(())
/// ```
pub fn parse(text: &str) -> Result<Value, ConfigError> {
    let lines = preprocess(text);
    if lines.is_empty() {
        return Ok(Value::Null);
    }
    let mut p = YamlParser { lines, pos: 0 };
    let indent = p.lines[0].indent;
    let v = p.parse_block(indent)?;
    if p.pos < p.lines.len() {
        let l = &p.lines[p.pos];
        return Err(ConfigError::parse(
            l.number,
            l.indent + 1,
            "unexpected dedent/indent structure",
        ));
    }
    Ok(v)
}

#[derive(Debug, Clone)]
struct Line {
    number: usize,
    indent: usize,
    text: String,
}

fn preprocess(text: &str) -> Vec<Line> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let without_comment = strip_comment(raw);
        let trimmed = without_comment.trim_end();
        if trimmed.trim().is_empty() {
            continue;
        }
        if i == 0 && trimmed.trim() == "---" {
            continue;
        }
        let indent = trimmed.len() - trimmed.trim_start().len();
        out.push(Line {
            number: i + 1,
            indent,
            text: trimmed.trim_start().to_owned(),
        });
    }
    out
}

fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_single = false;
    let mut in_double = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'\'' if !in_double => in_single = !in_single,
            b'"' if !in_single => in_double = !in_double,
            b'#' if !in_single && !in_double
                // YAML comments must be preceded by whitespace or line start.
                && (i == 0 || bytes[i - 1] == b' ' || bytes[i - 1] == b'\t') =>
            {
                return &line[..i];
            }
            _ => {}
        }
    }
    line
}

struct YamlParser {
    lines: Vec<Line>,
    pos: usize,
}

impl YamlParser {
    fn peek(&self) -> Option<&Line> {
        self.lines.get(self.pos)
    }

    fn parse_block(&mut self, indent: usize) -> Result<Value, ConfigError> {
        let Some(line) = self.peek() else {
            return Ok(Value::Null);
        };
        if line.text == "-" || line.text.starts_with("- ") {
            self.parse_sequence(indent)
        } else {
            self.parse_mapping(indent)
        }
    }

    fn parse_sequence(&mut self, indent: usize) -> Result<Value, ConfigError> {
        let mut items = Vec::new();
        while let Some(line) = self.peek() {
            if line.indent != indent || !(line.text == "-" || line.text.starts_with("- ")) {
                break;
            }
            let number = line.number;
            let rest = line.text[1..].trim_start().to_owned();
            let rest_offset = line.indent + (line.text.len() - rest.len());
            self.pos += 1;
            if rest.is_empty() {
                // Nested block on following lines.
                match self.peek() {
                    Some(next) if next.indent > indent => {
                        let child_indent = next.indent;
                        items.push(self.parse_block(child_indent)?);
                    }
                    _ => items.push(Value::Null),
                }
            } else if let Some((key, val_text)) = split_mapping_entry(&rest) {
                // `- key: value` starts an inline mapping.
                items.push(self.parse_mapping_with_first(key, val_text, rest_offset, number)?);
            } else {
                items.push(parse_scalar(&rest, number)?);
            }
        }
        Ok(Value::Array(items))
    }

    fn parse_mapping(&mut self, indent: usize) -> Result<Value, ConfigError> {
        let mut map = BTreeMap::new();
        while let Some(line) = self.peek() {
            if line.indent != indent {
                break;
            }
            if line.text == "-" || line.text.starts_with("- ") {
                break;
            }
            let number = line.number;
            let text = line.text.clone();
            let Some((key, val_text)) = split_mapping_entry(&text) else {
                return Err(ConfigError::parse(
                    number,
                    indent + 1,
                    format!("expected `key: value`, found `{text}`"),
                ));
            };
            self.pos += 1;
            let value = self.parse_entry_value(val_text, indent, number)?;
            if map.insert(key.clone(), value).is_some() {
                return Err(ConfigError::parse(
                    number,
                    indent + 1,
                    format!("duplicate key `{key}`"),
                ));
            }
        }
        Ok(Value::Object(map))
    }

    fn parse_mapping_with_first(
        &mut self,
        first_key: String,
        first_val: Option<String>,
        indent: usize,
        number: usize,
    ) -> Result<Value, ConfigError> {
        let mut map = BTreeMap::new();
        let value = self.parse_entry_value(first_val, indent, number)?;
        map.insert(first_key, value);
        // Continue with following lines at the same effective indent.
        while let Some(line) = self.peek() {
            if line.indent != indent || line.text.starts_with("- ") || line.text == "-" {
                break;
            }
            let number = line.number;
            let text = line.text.clone();
            let Some((key, val_text)) = split_mapping_entry(&text) else {
                break;
            };
            self.pos += 1;
            let value = self.parse_entry_value(val_text, indent, number)?;
            if map.insert(key.clone(), value).is_some() {
                return Err(ConfigError::parse(
                    number,
                    indent + 1,
                    format!("duplicate key `{key}`"),
                ));
            }
        }
        Ok(Value::Object(map))
    }

    fn parse_entry_value(
        &mut self,
        val_text: Option<String>,
        indent: usize,
        number: usize,
    ) -> Result<Value, ConfigError> {
        match val_text {
            Some(text) => parse_scalar(&text, number),
            None => match self.peek() {
                Some(next) if next.indent > indent => {
                    let child = next.indent;
                    self.parse_block(child)
                }
                // A sequence may sit at the same indent as its key.
                Some(next)
                    if next.indent == indent
                        && (next.text == "-" || next.text.starts_with("- ")) =>
                {
                    self.parse_sequence(indent)
                }
                _ => Ok(Value::Null),
            },
        }
    }
}

/// Splits `key: value` / `key:`; returns `(key, Some(value_text) | None)`.
fn split_mapping_entry(text: &str) -> Option<(String, Option<String>)> {
    let (key_raw, rest) = if text.starts_with('"') || text.starts_with('\'') {
        let quote = text.chars().next().unwrap();
        let end = text[1..].find(quote)? + 1;
        let key = &text[1..end];
        let rest = text[end + 1..].trim_start();
        let rest = rest.strip_prefix(':')?;
        (key.to_owned(), rest)
    } else {
        let colon = find_mapping_colon(text)?;
        (text[..colon].trim().to_owned(), &text[colon + 1..])
    };
    let rest = rest.trim();
    if rest.is_empty() {
        Some((key_raw, None))
    } else {
        Some((key_raw, Some(rest.to_owned())))
    }
}

/// Finds a `:` that terminates a key (followed by space or end of line),
/// outside quotes and brackets.
fn find_mapping_colon(text: &str) -> Option<usize> {
    let bytes = text.as_bytes();
    let mut depth = 0i32;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'[' | b'{' => depth += 1,
            b']' | b'}' => depth -= 1,
            b'"' | b'\'' => return None, // quoted mid-key unsupported here
            b':' if depth == 0 && (i + 1 == bytes.len() || bytes[i + 1] == b' ') => {
                return Some(i);
            }
            _ => {}
        }
    }
    None
}

fn parse_scalar(text: &str, line: usize) -> Result<Value, ConfigError> {
    let text = text.trim();
    if text.starts_with('"') {
        if !(text.ends_with('"') && text.len() >= 2) {
            return Err(ConfigError::parse(
                line,
                1,
                "unterminated double-quoted scalar",
            ));
        }
        // Reuse the JSON string parser for escapes.
        return crate::json::parse(text);
    }
    if text.starts_with('\'') {
        if !(text.ends_with('\'') && text.len() >= 2) {
            return Err(ConfigError::parse(
                line,
                1,
                "unterminated single-quoted scalar",
            ));
        }
        return Ok(Value::Str(text[1..text.len() - 1].replace("''", "'")));
    }
    if text.starts_with('[') || text.starts_with('{') {
        return parse_flow(text, line);
    }
    Ok(match text {
        "null" | "~" | "" => Value::Null,
        "true" | "True" => Value::Bool(true),
        "false" | "False" => Value::Bool(false),
        _ => {
            if let Ok(v) = text.parse::<i64>() {
                Value::Int(v)
            } else if let Ok(v) = text.parse::<f64>() {
                Value::Float(v)
            } else {
                Value::Str(text.to_owned())
            }
        }
    })
}

fn parse_flow(text: &str, line: usize) -> Result<Value, ConfigError> {
    let inner = &text[1..text.len().saturating_sub(1)];
    if text.starts_with('[') {
        if !text.ends_with(']') {
            return Err(ConfigError::parse(line, 1, "unterminated flow sequence"));
        }
        let mut items = Vec::new();
        for part in split_flow(inner) {
            let part = part.trim();
            if !part.is_empty() {
                items.push(parse_scalar(part, line)?);
            }
        }
        Ok(Value::Array(items))
    } else {
        if !text.ends_with('}') {
            return Err(ConfigError::parse(line, 1, "unterminated flow mapping"));
        }
        let mut map = BTreeMap::new();
        for part in split_flow(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let colon = find_mapping_colon(part)
                .or_else(|| part.find(':'))
                .ok_or_else(|| {
                    ConfigError::parse(line, 1, "expected `key: value` in flow mapping")
                })?;
            let key = part[..colon].trim().trim_matches('"').trim_matches('\'');
            let value = parse_scalar(part[colon + 1..].trim(), line)?;
            map.insert(key.to_owned(), value);
        }
        Ok(Value::Object(map))
    }
}

fn split_flow(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let bytes = s.as_bytes();
    let mut depth = 0i32;
    let mut in_str = false;
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'"' | b'\'' => in_str = !in_str,
            b'[' | b'{' if !in_str => depth += 1,
            b']' | b'}' if !in_str => depth -= 1,
            b',' if !in_str && depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < s.len() {
        out.push(&s[start..]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_mapping() {
        let v = parse("name: bench\nbase: br-base.json\nrootfs-size: 3\n").unwrap();
        assert_eq!(v.get("name").and_then(Value::as_str), Some("bench"));
        assert_eq!(v.get("rootfs-size").and_then(Value::as_int), Some(3));
    }

    #[test]
    fn nested_blocks() {
        let v = parse(
            "name: pfa-base\nlinux:\n  source: pfa-linux\n  config: pfa-linux.kfrag\noverlay: pfa-test-root/\n",
        )
        .unwrap();
        assert_eq!(
            v.get("linux")
                .unwrap()
                .get("source")
                .and_then(Value::as_str),
            Some("pfa-linux")
        );
    }

    #[test]
    fn sequences() {
        let v = parse("outputs:\n  - /output\n  - /var/log\n").unwrap();
        let outs = v.get("outputs").unwrap().as_array().unwrap();
        assert_eq!(outs.len(), 2);
        assert_eq!(outs[0].as_str(), Some("/output"));
    }

    #[test]
    fn sequence_of_mappings() {
        let v = parse(
            "jobs:\n  - name: client\n    linux:\n      config: pfa.kfrag\n  - name: server\n    base: bare-metal\n    bin: serve\n",
        )
        .unwrap();
        let jobs = v.get("jobs").unwrap().as_array().unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].get("name").and_then(Value::as_str), Some("client"));
        assert_eq!(
            jobs[0]
                .get("linux")
                .unwrap()
                .get("config")
                .and_then(Value::as_str),
            Some("pfa.kfrag")
        );
        assert_eq!(jobs[1].get("bin").and_then(Value::as_str), Some("serve"));
    }

    #[test]
    fn sequence_at_key_indent() {
        let v = parse("jobs:\n- name: a\n- name: b\n").unwrap();
        assert_eq!(v.get("jobs").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn scalars_and_quotes() {
        let v = parse(
            "a: true\nb: false\nc: null\nd: ~\ne: 2.5\nf: \"quoted # not comment\"\ng: 'single ''quoted'''\nh: plain string here\n",
        )
        .unwrap();
        assert_eq!(v.get("a").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("b").and_then(Value::as_bool), Some(false));
        assert!(v.get("c").unwrap().is_null());
        assert!(v.get("d").unwrap().is_null());
        assert_eq!(v.get("e"), Some(&Value::Float(2.5)));
        assert_eq!(
            v.get("f").and_then(Value::as_str),
            Some("quoted # not comment")
        );
        assert_eq!(v.get("g").and_then(Value::as_str), Some("single 'quoted'"));
        assert_eq!(
            v.get("h").and_then(Value::as_str),
            Some("plain string here")
        );
    }

    #[test]
    fn comments_ignored() {
        let v = parse("# header\nname: x # trailing\n  # indented comment\nbase: y\n").unwrap();
        assert_eq!(v.get("name").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("base").and_then(Value::as_str), Some("y"));
    }

    #[test]
    fn flow_collections() {
        let v = parse("list: [1, 2, three]\nmap: {a: 1, b: two}\n").unwrap();
        assert_eq!(v.get("list").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("map").unwrap().get("b").and_then(Value::as_str),
            Some("two")
        );
    }

    #[test]
    fn document_marker() {
        let v = parse("---\nname: x\n").unwrap();
        assert_eq!(v.get("name").and_then(Value::as_str), Some("x"));
    }

    #[test]
    fn urls_are_not_mapping_keys() {
        // `:` not followed by a space must not split a key.
        let v = parse("url: http://example.com/path\n").unwrap();
        assert_eq!(
            v.get("url").and_then(Value::as_str),
            Some("http://example.com/path")
        );
    }

    #[test]
    fn empty_document_is_null() {
        assert_eq!(parse("").unwrap(), Value::Null);
        assert_eq!(parse("# only comments\n").unwrap(), Value::Null);
    }

    #[test]
    fn errors_reported() {
        assert!(parse("just a scalar line with: no structure\nbad line\n").is_err());
        assert!(matches!(
            parse("a: 1\na: 2\n"),
            Err(ConfigError::Parse { .. })
        ));
    }

    #[test]
    fn json_yaml_equivalence() {
        let yaml = parse("name: w\njobs:\n  - name: a\n    threads: 1\n").unwrap();
        let json = crate::json::parse(r#"{"name":"w","jobs":[{"name":"a","threads":1}]}"#).unwrap();
        assert_eq!(yaml, json);
    }
}
