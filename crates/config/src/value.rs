//! A dynamically-typed document tree shared by the JSON and YAML parsers.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed configuration value.
///
/// Objects keep key order-independent (sorted) storage so serialisation is
/// deterministic regardless of source ordering.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer number.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array of values.
    Array(Vec<Value>),
    /// String-keyed object.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Returns the string contents if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the boolean if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the elements if this is an `Array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the map if this is an `Object`.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Looks up `key` in an object, `None` for other kinds.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Whether this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Serialises to compact JSON. Deterministic: object keys are sorted.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(v) => out.push_str(&v.to_string()),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() {
                    out.push_str(&format!("{v:.1}"));
                } else {
                    out.push_str(&v.to_string());
                }
            }
            Value::Str(s) => write_json_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl<T: Into<Value>> FromIterator<T> for Value {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Value {
        Value::Array(iter.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let v = Value::Object(BTreeMap::from([
            ("a".to_owned(), Value::Int(1)),
            ("b".to_owned(), Value::Str("x".to_owned())),
        ]));
        assert_eq!(v.get("a").and_then(Value::as_int), Some(1));
        assert_eq!(v.get("b").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.kind(), "object");
    }

    #[test]
    fn json_serialisation_deterministic() {
        let v = Value::Object(BTreeMap::from([
            ("z".to_owned(), Value::Int(1)),
            (
                "a".to_owned(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]));
        assert_eq!(v.to_json(), r#"{"a":[true,null],"z":1}"#);
    }

    #[test]
    fn string_escapes() {
        let v = Value::Str("a\"b\\c\nd".to_owned());
        assert_eq!(v.to_json(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from("s"), Value::Str("s".into()));
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        let arr: Value = ["a", "b"].into_iter().collect();
        assert_eq!(arr.as_array().unwrap().len(), 2);
    }
}
