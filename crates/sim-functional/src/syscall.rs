//! The user-program runner: executes MEXE binaries over the syscall ABI.
//!
//! Programs run in a flat user address space with a downward-growing stack.
//! `ecall`s are serviced against an [`OsServices`] implementation — the
//! functional guest OS here, or the cycle-exact simulator's timed variant.
//! The step-wise API ([`UserRunner::step`]) exposes every retired
//! instruction so a timing model can observe the exact same execution.

use std::collections::BTreeMap;

use marshal_isa::abi::{self, fd, flags, sys};
use marshal_isa::interp::{Cpu, RetireKind, Retired, StepOutcome};
use marshal_isa::mem::{Bus, PagedMemory};
use marshal_isa::predecode::DecodeCache;
use marshal_isa::{MexeFile, Reg, Trap};

use crate::machine::SimError;

/// Base address of the remote-memory window mapped by `mmap_remote`.
pub const REMOTE_BASE: u64 = 0x1000_0000;
/// Maximum size of the remote-memory window.
pub const REMOTE_MAX: u64 = 0x1000_0000;
/// Guest page size.
pub const PAGE_SIZE: u64 = 4096;
/// Memory-mapped UART transmit register (bare-metal machines only).
///
/// Bare-metal unit tests (§IV-A-1) may poke the serial device directly
/// instead of going through the syscall ABI, like real driver bring-up
/// code. A store of a byte to this address emits it on the console; loads
/// return 0 (always ready).
pub const UART_TX: u64 = 0x6000_0000;
/// Size of the UART MMIO window.
pub const UART_SPAN: u64 = 0x1000;

/// Services a user program requests from its operating environment.
pub trait OsServices {
    /// Writes bytes to the serial console (stdout/stderr).
    fn serial_write(&mut self, bytes: &[u8]);

    /// Reads a whole file; `None` when missing.
    fn file_read(&mut self, path: &str) -> Option<Vec<u8>>;

    /// Writes a whole file; returns false on failure.
    fn file_write(&mut self, path: &str, data: &[u8]) -> bool;
}

struct OpenFile {
    path: String,
    data: Vec<u8>,
    cursor: usize,
    dirty: bool,
}

/// The user address space: local RAM, the lazily-mapped remote window,
/// and (on bare-metal machines) a memory-mapped UART.
#[derive(Debug)]
pub struct UserBus {
    local: PagedMemory,
    remote: Option<PagedMemory>,
    uart_enabled: bool,
    uart_tx: Vec<u8>,
}

impl UserBus {
    fn new() -> UserBus {
        UserBus {
            local: PagedMemory::with_base(0, abi::USER_MEM_SIZE),
            remote: None,
            uart_enabled: false,
            uart_tx: Vec::new(),
        }
    }

    /// Enables the memory-mapped UART at [`UART_TX`] (bare-metal mode).
    pub fn enable_uart(&mut self) {
        self.uart_enabled = true;
    }

    /// Drains bytes written to the MMIO UART since the last call.
    pub fn drain_uart(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.uart_tx)
    }

    fn is_uart(&self, addr: u64) -> bool {
        self.uart_enabled && (UART_TX..UART_TX + UART_SPAN).contains(&addr)
    }

    /// Maps `pages` pages of remote memory, returning the window base.
    pub fn map_remote(&mut self, pages: u64) -> Option<u64> {
        if self.remote.is_some() || pages == 0 || pages * PAGE_SIZE > REMOTE_MAX {
            return None;
        }
        self.remote = Some(PagedMemory::with_base(
            REMOTE_BASE,
            (pages * PAGE_SIZE) as usize,
        ));
        Some(REMOTE_BASE)
    }

    /// Whether an address falls inside the mapped remote window.
    pub fn is_remote(&self, addr: u64) -> bool {
        self.remote.as_ref().is_some_and(|r| r.contains(addr, 1))
    }

    /// The local memory (for loaders and argument setup).
    pub fn local_mut(&mut self) -> &mut PagedMemory {
        &mut self.local
    }
}

impl Bus for UserBus {
    fn load(&mut self, addr: u64, size: usize) -> Result<u64, Trap> {
        if self.is_uart(addr) {
            return Ok(0); // status: always ready
        }
        if let Some(remote) = &mut self.remote {
            if remote.contains(addr, size) {
                return remote.load(addr, size);
            }
        }
        self.local.load(addr, size)
    }

    fn store(&mut self, addr: u64, size: usize, value: u64) -> Result<(), Trap> {
        if self.is_uart(addr) {
            let _ = size;
            self.uart_tx.push(value as u8);
            return Ok(());
        }
        if let Some(remote) = &mut self.remote {
            if remote.contains(addr, size) {
                return remote.store(addr, size, value);
            }
        }
        self.local.store(addr, size, value)
    }
}

/// One step of user execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UserStep {
    /// An instruction retired (details for the timing model).
    Retired(Retired),
    /// A syscall was serviced; `sys` is the syscall number.
    Syscall {
        /// The syscall number serviced.
        sys: u64,
    },
    /// The program exited with this code.
    Exited(i64),
}

/// Executes one MEXE program against an [`OsServices`].
pub struct UserRunner {
    /// CPU state (public so timing models can read counters and write
    /// modelled cycles back for `rdcycle`).
    pub cpu: Cpu,
    /// The user address space.
    pub bus: UserBus,
    /// Predecoded instruction cache: every guest-memory write below goes
    /// through an invalidation so self-modifying code stays correct.
    dcache: DecodeCache,
    args: Vec<String>,
    files: BTreeMap<u64, OpenFile>,
    next_fd: u64,
    exited: Option<i64>,
}

impl UserRunner {
    /// Loads a program and prepares argv and the stack.
    ///
    /// # Errors
    ///
    /// [`SimError::BadArtifact`] when a segment does not fit user memory.
    pub fn new(exe: &MexeFile, args: &[String]) -> Result<UserRunner, SimError> {
        let mut bus = UserBus::new();
        exe.load_into(bus.local_mut())
            .map_err(|t| SimError::BadArtifact(format!("loading program: {t}")))?;
        let mut cpu = Cpu::new(exe.entry());
        cpu.write_reg(Reg::SP, abi::USER_STACK_TOP);
        Ok(UserRunner {
            cpu,
            bus,
            dcache: DecodeCache::new(),
            args: args.to_vec(),
            files: BTreeMap::new(),
            next_fd: fd::FIRST_OPEN,
            exited: None,
        })
    }

    /// The program's exit code, if it has exited.
    pub fn exit_code(&self) -> Option<i64> {
        self.exited
    }

    /// Executes one instruction (servicing a syscall if it is an `ecall`).
    ///
    /// # Errors
    ///
    /// [`SimError::Trap`] on architectural traps, [`SimError::BadArtifact`]
    /// after exit.
    pub fn step<S: OsServices + ?Sized>(&mut self, os: &mut S) -> Result<UserStep, SimError> {
        if let Some(code) = self.exited {
            return Ok(UserStep::Exited(code));
        }
        let step = self.dcache.step(&mut self.cpu, &mut self.bus);
        // Forward MMIO UART traffic to the console as it happens.
        if !self.bus.uart_tx.is_empty() {
            let bytes = self.bus.drain_uart();
            os.serial_write(&bytes);
        }
        match step {
            Ok(StepOutcome::Retired(r)) => {
                if let RetireKind::Store { addr } = r.kind {
                    // A naturally-aligned store touches one page at most.
                    self.dcache.invalidate(addr);
                }
                Ok(UserStep::Retired(r))
            }
            Ok(StepOutcome::Ecall) => {
                let sys = self.cpu.read_reg(Reg::A7);
                self.handle_syscall(sys, os)?;
                if let Some(code) = self.exited {
                    self.flush_files(os);
                    return Ok(UserStep::Exited(code));
                }
                Ok(UserStep::Syscall { sys })
            }
            Ok(StepOutcome::Ebreak) => {
                // Treat like abort(): exit code 134 (SIGABRT convention).
                self.exited = Some(134);
                self.flush_files(os);
                Ok(UserStep::Exited(134))
            }
            Err(trap) => Err(SimError::Trap(format!("{trap} (pc {:#x})", self.cpu.pc))),
        }
    }

    /// Runs to completion within an instruction budget.
    ///
    /// Returns `(exit_code, instructions_retired)`.
    ///
    /// # Errors
    ///
    /// [`SimError::Budget`] when the budget is exhausted, plus any error
    /// from [`UserRunner::step`].
    pub fn run<S: OsServices + ?Sized>(
        &mut self,
        os: &mut S,
        max_instructions: u64,
    ) -> Result<(i64, u64), SimError> {
        let start = self.cpu.instret;
        loop {
            if self.cpu.instret - start > max_instructions {
                return Err(SimError::Budget {
                    limit: max_instructions,
                });
            }
            if let UserStep::Exited(code) = self.step(os)? {
                return Ok((code, self.cpu.instret - start));
            }
        }
    }

    fn flush_files<S: OsServices + ?Sized>(&mut self, os: &mut S) {
        for f in self.files.values() {
            if f.dirty {
                os.file_write(&f.path, &f.data);
            }
        }
        self.files.clear();
    }

    fn read_guest_bytes(&mut self, addr: u64, len: u64) -> Result<Vec<u8>, SimError> {
        let mut out = Vec::with_capacity(len as usize);
        for i in 0..len {
            let b = self
                .bus
                .load(addr + i, 1)
                .map_err(|t| SimError::Trap(t.to_string()))?;
            out.push(b as u8);
        }
        Ok(out)
    }

    fn write_guest_bytes(&mut self, addr: u64, bytes: &[u8]) -> Result<(), SimError> {
        for (i, b) in bytes.iter().enumerate() {
            self.bus
                .store(addr + i as u64, 1, *b as u64)
                .map_err(|t| SimError::Trap(t.to_string()))?;
        }
        // Syscalls (READ, ARGV) write behind the interpreter's back.
        self.dcache.invalidate_range(addr, bytes.len());
        Ok(())
    }

    fn read_cstr(&mut self, addr: u64) -> Result<String, SimError> {
        let mut out = Vec::new();
        for i in 0..4096 {
            let b = self
                .bus
                .load(addr + i, 1)
                .map_err(|t| SimError::Trap(t.to_string()))? as u8;
            if b == 0 {
                break;
            }
            out.push(b);
        }
        Ok(String::from_utf8_lossy(&out).into_owned())
    }

    fn handle_syscall<S: OsServices + ?Sized>(
        &mut self,
        sysno: u64,
        os: &mut S,
    ) -> Result<(), SimError> {
        let a0 = self.cpu.read_reg(Reg::A0);
        let a1 = self.cpu.read_reg(Reg::A1);
        let a2 = self.cpu.read_reg(Reg::A2);
        let ret = match sysno {
            sys::EXIT => {
                self.exited = Some(a0 as i64);
                return Ok(());
            }
            sys::WRITE => {
                let bytes = self.read_guest_bytes(a1, a2)?;
                match a0 {
                    fd::STDOUT | fd::STDERR => {
                        os.serial_write(&bytes);
                        bytes.len() as u64
                    }
                    other => match self.files.get_mut(&other) {
                        Some(f) => {
                            f.data.extend_from_slice(&bytes);
                            f.dirty = true;
                            bytes.len() as u64
                        }
                        None => u64::MAX, // -1: bad fd
                    },
                }
            }
            sys::READ => {
                let len = a2 as usize;
                match self.files.get_mut(&a0) {
                    Some(f) => {
                        let available = f.data.len().saturating_sub(f.cursor);
                        let n = available.min(len);
                        let chunk = f.data[f.cursor..f.cursor + n].to_vec();
                        f.cursor += n;
                        self.write_guest_bytes(a1, &chunk)?;
                        n as u64
                    }
                    None => u64::MAX,
                }
            }
            sys::OPEN => {
                let path = self.read_cstr(a0)?;
                let fdnum = self.next_fd;
                match a1 {
                    flags::O_RDONLY => match os.file_read(&path) {
                        Some(data) => {
                            self.files.insert(
                                fdnum,
                                OpenFile {
                                    path,
                                    data,
                                    cursor: 0,
                                    dirty: false,
                                },
                            );
                            self.next_fd += 1;
                            fdnum
                        }
                        None => u64::MAX,
                    },
                    flags::O_WRONLY => {
                        self.files.insert(
                            fdnum,
                            OpenFile {
                                path,
                                data: Vec::new(),
                                cursor: 0,
                                dirty: true,
                            },
                        );
                        self.next_fd += 1;
                        fdnum
                    }
                    flags::O_APPEND => {
                        let data = os.file_read(&path).unwrap_or_default();
                        self.files.insert(
                            fdnum,
                            OpenFile {
                                path,
                                data,
                                cursor: 0,
                                dirty: true,
                            },
                        );
                        self.next_fd += 1;
                        fdnum
                    }
                    _ => u64::MAX,
                }
            }
            sys::CLOSE => match self.files.remove(&a0) {
                Some(f) => {
                    if f.dirty {
                        os.file_write(&f.path, &f.data);
                    }
                    0
                }
                None => u64::MAX,
            },
            sys::ARGC => self.args.len() as u64,
            sys::ARGV => {
                let idx = a0 as usize;
                match self.args.get(idx) {
                    Some(arg) => {
                        let bytes = arg.as_bytes();
                        let n = bytes.len().min(a2 as usize);
                        let chunk = bytes[..n].to_vec();
                        self.write_guest_bytes(a1, &chunk)?;
                        // NUL-terminate when there is room.
                        if n < a2 as usize {
                            self.write_guest_bytes(a1 + n as u64, &[0])?;
                        }
                        n as u64
                    }
                    None => u64::MAX,
                }
            }
            sys::MMAP_REMOTE => match self.bus.map_remote(a0) {
                Some(base) => {
                    // The window was previously unmapped: drop any pages
                    // predecoded while fetches there still faulted.
                    self.dcache.clear();
                    base
                }
                None => u64::MAX,
            },
            sys::TRACE => {
                os.serial_write(format!("[trace] marker {a0}\n").as_bytes());
                0
            }
            other => {
                os.serial_write(format!("[guest] unknown syscall {other}\n").as_bytes());
                u64::MAX
            }
        };
        self.cpu.write_reg(Reg::A0, ret);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marshal_isa::asm::assemble;

    /// Minimal OsServices backed by in-memory maps.
    #[derive(Default)]
    pub struct TestOs {
        pub serial: Vec<u8>,
        pub files: BTreeMap<String, Vec<u8>>,
    }

    impl OsServices for TestOs {
        fn serial_write(&mut self, bytes: &[u8]) {
            self.serial.extend_from_slice(bytes);
        }
        fn file_read(&mut self, path: &str) -> Option<Vec<u8>> {
            self.files.get(path).cloned()
        }
        fn file_write(&mut self, path: &str, data: &[u8]) -> bool {
            self.files.insert(path.to_owned(), data.to_vec());
            true
        }
    }

    fn run_asm(src: &str, args: &[&str], os: &mut TestOs) -> (i64, u64) {
        let exe = assemble(src, abi::USER_BASE).expect("assemble");
        let args: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        let mut runner = UserRunner::new(&exe, &args).unwrap();
        runner.run(os, 10_000_000).unwrap()
    }

    #[test]
    fn hello_world_to_serial() {
        let src = r#"
        .data
msg:    .ascii "hello from guest\n"
        .equ MSGLEN, 17
        .text
_start:
        li      a0, 1          # stdout
        la      a1, msg
        li      a2, MSGLEN
        li      a7, 64         # WRITE
        ecall
        li      a0, 0
        li      a7, 93         # EXIT
        ecall
"#;
        let mut os = TestOs::default();
        let (code, _) = run_asm(src, &[], &mut os);
        assert_eq!(code, 0);
        assert_eq!(String::from_utf8_lossy(&os.serial), "hello from guest\n");
    }

    #[test]
    fn file_write_and_read_back() {
        let src = r#"
        .data
path:   .asciiz "/output/result.txt"
body:   .ascii "42\n"
        .text
_start:
        la      a0, path
        li      a1, 1          # O_WRONLY
        li      a7, 1024       # OPEN
        ecall
        mv      t0, a0         # fd
        mv      a0, t0
        la      a1, body
        li      a2, 3
        li      a7, 64         # WRITE
        ecall
        mv      a0, t0
        li      a7, 57         # CLOSE
        ecall
        li      a0, 0
        li      a7, 93
        ecall
"#;
        let mut os = TestOs::default();
        let (code, _) = run_asm(src, &[], &mut os);
        assert_eq!(code, 0);
        assert_eq!(os.files["/output/result.txt"], b"42\n");
    }

    #[test]
    fn read_existing_file() {
        let src = r#"
        .data
path:   .asciiz "/etc/input"
buf:    .space 16
        .text
_start:
        la      a0, path
        li      a1, 0          # O_RDONLY
        li      a7, 1024
        ecall
        mv      t0, a0
        la      a1, buf
        li      a2, 16
        li      a7, 63         # READ
        ecall
        mv      t1, a0         # bytes read
        li      a0, 1
        la      a1, buf
        mv      a2, t1
        li      a7, 64         # echo to serial
        ecall
        li      a0, 0
        li      a7, 93
        ecall
"#;
        let mut os = TestOs::default();
        os.files.insert("/etc/input".to_owned(), b"ping".to_vec());
        run_asm(src, &[], &mut os);
        assert_eq!(&os.serial, b"ping");
    }

    #[test]
    fn argv_delivery() {
        let src = r#"
        .data
buf:    .space 32
        .text
_start:
        li      a7, 2000       # ARGC
        ecall
        mv      t0, a0
        li      a0, 1          # argv[1]
        la      a1, buf
        li      a2, 32
        li      a7, 2001       # ARGV
        ecall
        mv      t1, a0         # len
        li      a0, 1
        la      a1, buf
        mv      a2, t1
        li      a7, 64
        ecall
        mv      a0, t0         # exit code = argc
        li      a7, 93
        ecall
"#;
        let mut os = TestOs::default();
        let (code, _) = run_asm(src, &["prog", "600.perlbench_s"], &mut os);
        assert_eq!(code, 2);
        assert_eq!(&os.serial, b"600.perlbench_s");
    }

    #[test]
    fn mmap_remote_window() {
        let src = r#"
_start:
        li      a0, 4          # pages
        li      a7, 2002       # MMAP_REMOTE
        ecall
        mv      t0, a0
        li      t1, 99
        sd      t1, 0(t0)      # write remote
        ld      a0, 0(t0)      # read back
        li      a7, 93
        ecall
"#;
        let mut os = TestOs::default();
        let (code, _) = run_asm(src, &[], &mut os);
        assert_eq!(code, 99);
    }

    #[test]
    fn missing_file_open_fails() {
        let src = r#"
        .data
path:   .asciiz "/nope"
        .text
_start:
        la      a0, path
        li      a1, 0
        li      a7, 1024
        ecall
        # a0 is -1 on failure; exit with 1 if so
        li      t0, -1
        beq     a0, t0, fail
        li      a0, 0
        li      a7, 93
        ecall
fail:
        li      a0, 1
        li      a7, 93
        ecall
"#;
        let mut os = TestOs::default();
        let (code, _) = run_asm(src, &[], &mut os);
        assert_eq!(code, 1);
    }

    #[test]
    fn budget_enforced() {
        let exe = assemble("_start:\n j _start\n", abi::USER_BASE).unwrap();
        let mut runner = UserRunner::new(&exe, &[]).unwrap();
        let mut os = TestOs::default();
        assert!(matches!(
            runner.run(&mut os, 1000),
            Err(SimError::Budget { limit: 1000 })
        ));
    }

    #[test]
    fn ebreak_aborts() {
        let exe = assemble("_start:\n ebreak\n", abi::USER_BASE).unwrap();
        let mut runner = UserRunner::new(&exe, &[]).unwrap();
        let mut os = TestOs::default();
        let (code, _) = runner.run(&mut os, 1000).unwrap();
        assert_eq!(code, 134);
    }

    #[test]
    fn trap_reports_pc() {
        let exe = assemble(
            "_start:\n li t0, 0x7f000000\n ld a0, 0(t0)\n",
            abi::USER_BASE,
        )
        .unwrap();
        let mut runner = UserRunner::new(&exe, &[]).unwrap();
        let mut os = TestOs::default();
        match runner.run(&mut os, 1000) {
            Err(SimError::Trap(m)) => assert!(m.contains("load fault")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn deterministic_instruction_counts() {
        let src = r#"
_start:
        li      t0, 1000
loop:   addi    t0, t0, -1
        bnez    t0, loop
        li      a0, 0
        li      a7, 93
        ecall
"#;
        let mut os1 = TestOs::default();
        let mut os2 = TestOs::default();
        let (_, n1) = run_asm(src, &[], &mut os1);
        let (_, n2) = run_asm(src, &[], &mut os2);
        assert_eq!(n1, n2);
        assert_eq!(n1, 1 + 2000 + 3); // li + 1000*(addi+bnez) + li,li,ecall
    }
}
