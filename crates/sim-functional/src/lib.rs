//! # marshal-sim-functional
//!
//! Functional simulation — the reproduction's QEMU and Spike (§II-A-3).
//!
//! These simulators "aim to faithfully implement the system specification
//! without particular concern for timing modeling". They boot the exact
//! boot binary + disk image that `marshal build` produced, run the
//! workload's boot payload by executing real guest binaries on the RV64IM
//! interpreter from `marshal-isa`, and capture the serial console to a log.
//!
//! The cycle-exact simulator (`marshal-sim-rtl`) executes the *same*
//! artifacts through the same boot model and the same interpreter — only
//! with a timing model attached — which is how the reproduction realises
//! the paper's launch/install portability guarantee.
//!
//! - [`machine`]: simulator configuration and results.
//! - [`syscall`]: the user-program runner (syscall ABI over the ISA core).
//! - [`guest`]: the modelled guest OS — filesystem, serial console, and the
//!   mscript guest environment.
//! - [`boot`]: the boot flow (firmware → kernel → initramfs → init system
//!   → payload).
//! - [`checkpoint`]: boot-state snapshots for launch checkpointing.
//! - [`qemu`] / [`spike`]: the two functional simulator front-ends.

#![warn(missing_docs)]

pub mod boot;
pub mod checkpoint;
pub mod guest;
pub mod machine;
pub mod qemu;
pub mod spike;
pub mod syscall;

pub use checkpoint::BootSnapshot;
pub use machine::{LaunchMode, SimConfig, SimError, SimKind, SimResult, WATCHDOG_EXIT_CODE};
pub use qemu::Qemu;
pub use spike::Spike;
