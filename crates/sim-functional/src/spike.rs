//! The Spike-like ISA simulator front-end.
//!
//! Workloads can point at a *custom* Spike binary (the `spike` option) —
//! the PFA case study used a modified Spike carrying a golden model of the
//! accelerator. Custom binaries are identified by name and contribute
//! feature tags (e.g. `pfa-spike` → feature `pfa`).

use marshal_firmware::BootBinary;
use marshal_image::FsImage;

use crate::boot::{simulate_bare, simulate_linux, simulate_linux_checkpointed};
use crate::checkpoint::BootSnapshot;
use crate::guest::FunctionalExecutor;
use crate::machine::{LaunchMode, SimConfig, SimError, SimKind, SimResult};

/// The Spike-like ISA-level functional simulator.
///
/// ```rust
/// use marshal_sim_functional::Spike;
/// let spike = Spike::with_binary("pfa-spike");
/// assert!(spike.config().has_feature("pfa"));
/// ```
#[derive(Debug, Clone)]
pub struct Spike {
    config: SimConfig,
    binary: String,
}

impl Default for Spike {
    fn default() -> Spike {
        Spike::new()
    }
}

impl Spike {
    /// The stock Spike simulator.
    pub fn new() -> Spike {
        Spike {
            config: SimConfig::new(SimKind::Spike),
            binary: "spike".to_owned(),
        }
    }

    /// A custom Spike build (the workload's `spike` option). Name segments
    /// other than `spike` become feature tags: `pfa-spike` carries the PFA
    /// golden model.
    pub fn with_binary(name: &str) -> Spike {
        let mut config = SimConfig::new(SimKind::Spike);
        for part in name.split(['-', '_']) {
            if !part.is_empty() && part != "spike" {
                config.features.push(part.to_owned());
            }
        }
        if !config.features.is_empty() {
            config.extra_args.push(format!("(custom binary: {name})"));
        }
        Spike {
            config,
            binary: name.to_owned(),
        }
    }

    /// Adds extra arguments (the workload's `spike-args` option).
    pub fn with_args(mut self, args: &[String]) -> Spike {
        self.config.extra_args.extend(args.iter().cloned());
        self
    }

    /// Overrides the instruction budget.
    pub fn with_budget(mut self, max_instructions: u64) -> Spike {
        self.config.max_instructions = max_instructions;
        self
    }

    /// The simulator configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The binary name this instance models.
    pub fn binary(&self) -> &str {
        &self.binary
    }

    /// Boots a Linux workload.
    ///
    /// # Errors
    ///
    /// See [`simulate_linux`].
    pub fn launch(
        &self,
        boot: &BootBinary,
        disk: Option<&FsImage>,
        mode: LaunchMode,
    ) -> Result<SimResult, SimError> {
        let mut exec = FunctionalExecutor;
        simulate_linux(&self.config, boot, disk, mode, &mut exec)
    }

    /// [`Spike::launch`] with boot checkpointing: resumes from `resume` when
    /// given, and returns a capturable boot snapshot on an eligible cold run.
    ///
    /// # Errors
    ///
    /// See [`simulate_linux_checkpointed`].
    pub fn launch_checkpointed(
        &self,
        boot: &BootBinary,
        disk: Option<&FsImage>,
        mode: LaunchMode,
        resume: Option<&BootSnapshot>,
    ) -> Result<(SimResult, Option<BootSnapshot>), SimError> {
        let mut exec = FunctionalExecutor;
        simulate_linux_checkpointed(&self.config, boot, disk, mode, &mut exec, resume)
    }

    /// Runs a bare-metal binary (Spike's most common use in the paper's
    /// unit-test workflow).
    ///
    /// # Errors
    ///
    /// See [`simulate_bare`].
    pub fn launch_bare(&self, bin: &[u8]) -> Result<SimResult, SimError> {
        simulate_bare(&self.config, bin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn custom_binary_features() {
        let s = Spike::with_binary("pfa-spike");
        assert!(s.config().has_feature("pfa"));
        assert_eq!(s.binary(), "pfa-spike");
        let stock = Spike::new();
        assert!(stock.config().features.is_empty());
    }

    #[test]
    fn multi_feature_binary() {
        let s = Spike::with_binary("pfa-nic-spike");
        assert!(s.config().has_feature("pfa"));
        assert!(s.config().has_feature("nic"));
    }
}
