//! Simulator configuration, inputs, and results.

use marshal_image::FsImage;

/// Which functional simulator front-end is running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimKind {
    /// QEMU-like full-system functional simulator (the `launch` default).
    Qemu,
    /// Spike-like ISA simulator (selected by the `spike` workload option).
    Spike,
    /// The FireSim-like cycle-exact simulator (set by `marshal-sim-rtl`
    /// when it reuses this crate's boot model).
    CycleExact,
}

impl SimKind {
    /// Display name used in serial banners.
    pub fn name(self) -> &'static str {
        match self {
            SimKind::Qemu => "qemu-system-riscv64",
            SimKind::Spike => "spike",
            SimKind::CycleExact => "firesim",
        }
    }

    /// Nanoseconds of modelled guest time per instruction, used only for
    /// dmesg timestamps. Each simulator runs at a different apparent speed —
    /// exactly why FireMarshal's `test` command strips timestamps before
    /// comparing outputs.
    pub fn ns_per_instruction(self) -> u64 {
        match self {
            SimKind::Qemu => 2,
            SimKind::Spike => 5,
            SimKind::CycleExact => 1,
        }
    }
}

/// How a simulation is being used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaunchMode {
    /// Normal launch: boot and execute the workload payload.
    Run,
    /// Build-time boot to execute a pending `guest-init` script exactly
    /// once (§III-B step 5b) — the payload is *not* run.
    GuestInit,
}

/// Functional simulator configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfig {
    /// Which front-end this is.
    pub kind: SimKind,
    /// Guest instruction budget before the run is declared hung.
    pub max_instructions: u64,
    /// Feature tags of a custom simulator binary (e.g. `pfa` from the
    /// PFA case study's `pfa-spike`).
    pub features: Vec<String>,
    /// Extra arguments (`qemu-args` / `spike-args`), logged in the banner.
    pub extra_args: Vec<String>,
}

impl SimConfig {
    /// Default configuration for a front-end.
    pub fn new(kind: SimKind) -> SimConfig {
        SimConfig {
            kind,
            max_instructions: 500_000_000,
            features: Vec::new(),
            extra_args: Vec::new(),
        }
    }

    /// Whether a feature tag is present.
    pub fn has_feature(&self, name: &str) -> bool {
        self.features.iter().any(|f| f == name)
    }
}

/// Exit code reported when the guest watchdog terminates a hung payload
/// (mirrors the `timeout(1)` convention).
pub const WATCHDOG_EXIT_CODE: i64 = 124;

/// The outcome of a simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Full serial console log.
    pub serial: String,
    /// Final state of the root filesystem (absent for bare-metal runs).
    pub image: Option<FsImage>,
    /// Exit code of the workload payload (0 when no payload ran).
    pub exit_code: i64,
    /// Guest instructions executed by user programs.
    pub instructions: u64,
    /// Whether the watchdog terminated a hung payload (instruction budget
    /// exhausted). The serial log and image hold whatever the guest
    /// produced before termination.
    pub timed_out: bool,
}

impl SimResult {
    /// The serial log split into lines.
    pub fn serial_lines(&self) -> Vec<&str> {
        self.serial.lines().collect()
    }

    /// Whether the payload exited successfully (a watchdog-terminated run
    /// is never a success, whatever its exit code).
    pub fn success(&self) -> bool {
        self.exit_code == 0 && !self.timed_out
    }
}

/// Simulation errors.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A guest program trapped (fault details included).
    Trap(String),
    /// The instruction budget was exhausted (hung workload).
    Budget {
        /// The configured budget.
        limit: u64,
    },
    /// The workload artifact was malformed.
    BadArtifact(String),
    /// A guest or init script failed.
    Script(String),
    /// A filesystem image operation failed.
    Image(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Trap(m) => write!(f, "guest trap: {m}"),
            SimError::Budget { limit } => {
                write!(f, "instruction budget exhausted ({limit} instructions)")
            }
            SimError::BadArtifact(m) => write!(f, "bad artifact: {m}"),
            SimError::Script(m) => write!(f, "guest script error: {m}"),
            SimError::Image(m) => write!(f, "image error: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<marshal_image::FsError> for SimError {
    fn from(e: marshal_image::FsError) -> SimError {
        SimError::Image(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_kinds_differ_in_apparent_speed() {
        assert_ne!(
            SimKind::Qemu.ns_per_instruction(),
            SimKind::Spike.ns_per_instruction()
        );
    }

    #[test]
    fn config_features() {
        let mut c = SimConfig::new(SimKind::Spike);
        assert!(!c.has_feature("pfa"));
        c.features.push("pfa".to_owned());
        assert!(c.has_feature("pfa"));
    }

    #[test]
    fn result_helpers() {
        let r = SimResult {
            serial: "a\nb\n".to_owned(),
            image: None,
            exit_code: 0,
            instructions: 10,
            timed_out: false,
        };
        assert_eq!(r.serial_lines(), vec!["a", "b"]);
        assert!(r.success());
    }

    #[test]
    fn timed_out_runs_are_not_successful() {
        let r = SimResult {
            serial: String::new(),
            image: None,
            exit_code: 0,
            instructions: 10,
            timed_out: true,
        };
        assert!(!r.success());
    }
}
