//! The QEMU-like front-end — the default simulator for `marshal launch`.

use marshal_firmware::BootBinary;
use marshal_image::FsImage;

use crate::boot::{simulate_bare, simulate_linux, simulate_linux_checkpointed};
use crate::checkpoint::BootSnapshot;
use crate::guest::FunctionalExecutor;
use crate::machine::{LaunchMode, SimConfig, SimError, SimKind, SimResult};

/// The QEMU-like full-system functional simulator.
///
/// ```rust
/// use marshal_sim_functional::Qemu;
/// let qemu = Qemu::new();
/// assert_eq!(qemu.config().kind, marshal_sim_functional::SimKind::Qemu);
/// ```
#[derive(Debug, Clone)]
pub struct Qemu {
    config: SimConfig,
}

impl Default for Qemu {
    fn default() -> Qemu {
        Qemu::new()
    }
}

impl Qemu {
    /// A QEMU instance with default configuration.
    pub fn new() -> Qemu {
        Qemu {
            config: SimConfig::new(SimKind::Qemu),
        }
    }

    /// A custom QEMU build (the workload's `qemu` option). Mirrors
    /// [`crate::Spike::with_binary`]: name segments other than `qemu` (and
    /// the stock `qemu-system-riscv64` suffix parts) become feature tags.
    pub fn with_binary(name: &str) -> Qemu {
        let mut config = SimConfig::new(SimKind::Qemu);
        for part in name.split(['-', '_']) {
            if !part.is_empty() && !["qemu", "system", "riscv64"].contains(&part) {
                config.features.push(part.to_owned());
            }
        }
        if !config.features.is_empty() {
            config.extra_args.push(format!("(custom binary: {name})"));
        }
        Qemu { config }
    }

    /// Adds extra arguments (the workload's `qemu-args` option).
    pub fn with_args(mut self, args: &[String]) -> Qemu {
        self.config.extra_args.extend(args.iter().cloned());
        self
    }

    /// Overrides the instruction budget.
    pub fn with_budget(mut self, max_instructions: u64) -> Qemu {
        self.config.max_instructions = max_instructions;
        self
    }

    /// The simulator configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Boots a Linux workload.
    ///
    /// # Errors
    ///
    /// See [`simulate_linux`].
    pub fn launch(
        &self,
        boot: &BootBinary,
        disk: Option<&FsImage>,
        mode: LaunchMode,
    ) -> Result<SimResult, SimError> {
        let mut exec = FunctionalExecutor;
        simulate_linux(&self.config, boot, disk, mode, &mut exec)
    }

    /// [`Qemu::launch`] with boot checkpointing: resumes from `resume` when
    /// given, and returns a capturable boot snapshot on an eligible cold run.
    ///
    /// # Errors
    ///
    /// See [`simulate_linux_checkpointed`].
    pub fn launch_checkpointed(
        &self,
        boot: &BootBinary,
        disk: Option<&FsImage>,
        mode: LaunchMode,
        resume: Option<&BootSnapshot>,
    ) -> Result<(SimResult, Option<BootSnapshot>), SimError> {
        let mut exec = FunctionalExecutor;
        simulate_linux_checkpointed(&self.config, boot, disk, mode, &mut exec, resume)
    }

    /// Runs a bare-metal binary.
    ///
    /// # Errors
    ///
    /// See [`simulate_bare`].
    pub fn launch_bare(&self, bin: &[u8]) -> Result<SimResult, SimError> {
        simulate_bare(&self.config, bin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn custom_binary_features() {
        let q = Qemu::with_binary("pfa-qemu-system-riscv64");
        assert!(q.config().has_feature("pfa"));
        let stock = Qemu::with_binary("qemu-system-riscv64");
        assert!(stock.config().features.is_empty());
    }

    #[test]
    fn builder_options() {
        let q = Qemu::new()
            .with_args(&["-m".to_owned(), "16G".to_owned()])
            .with_budget(1234);
        assert_eq!(q.config().extra_args, vec!["-m", "16G"]);
        assert_eq!(q.config().max_instructions, 1234);
    }
}
