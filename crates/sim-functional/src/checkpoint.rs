//! Boot-state snapshots for launch checkpointing.
//!
//! A [`BootSnapshot`] captures the complete machine-observable state of a
//! Linux launch at the post-init seam — after firmware, kernel, initramfs
//! handoff, root mount, and init-system bring-up, immediately before the
//! workload payload runs. Restoring one and running the payload phase is
//! observationally identical to a cold boot: the serial log, mounted image,
//! instruction/cycle counters, and init state are all part of the snapshot.
//!
//! Snapshots are only captured when the boot phase retired **zero** user
//! instructions ([`crate::boot::simulate_linux_checkpointed`] enforces
//! this). That invariant is what makes a restore bit-exact even for the
//! cycle-exact simulator: its timing pipeline is only ever touched by
//! retired user instructions, so a zero-instruction boot leaves it in the
//! same (cold) state a restore starts from.
//!
//! Persistence, content-addressed keying, checksums, and corruption
//! quarantine live in `marshal-core`; this module only defines the state
//! itself and its portable byte encoding.

use marshal_image::FsImage;

/// Snapshot magic: "MSNP".
const MAGIC: &[u8; 4] = b"MSNP";
/// Encoding version.
const VERSION: u32 = 1;

/// Machine state at the post-init point of a Linux boot.
#[derive(Debug, Clone, PartialEq)]
pub struct BootSnapshot {
    /// Serial console contents accumulated during boot.
    pub serial: String,
    /// The mounted root filesystem at payload start.
    pub image: FsImage,
    /// Guest cycle counter at payload start.
    pub cycles: u64,
    /// User instructions retired during boot (always 0 for a snapshot
    /// eligible for persistence; see the module docs).
    pub instructions: u64,
    /// Exit code of the most recently executed boot program.
    pub last_exit: i64,
    /// Root device requested by the initramfs `switch_root` call.
    pub switch_root_target: Option<String>,
    /// Whether the init system was detected as systemd at boot time (the
    /// payload phase chooses its console lines by this).
    pub systemd: bool,
}

impl BootSnapshot {
    /// Encodes the snapshot as a self-describing byte stream.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.cycles.to_le_bytes());
        out.extend_from_slice(&self.instructions.to_le_bytes());
        out.extend_from_slice(&self.last_exit.to_le_bytes());
        out.push(u8::from(self.systemd));
        match &self.switch_root_target {
            Some(t) => {
                out.push(1);
                out.extend_from_slice(&(t.len() as u32).to_le_bytes());
                out.extend_from_slice(t.as_bytes());
            }
            None => out.push(0),
        }
        out.extend_from_slice(&(self.serial.len() as u64).to_le_bytes());
        out.extend_from_slice(self.serial.as_bytes());
        let image = self.image.to_bytes();
        out.extend_from_slice(&(image.len() as u64).to_le_bytes());
        out.extend_from_slice(&image);
        out
    }

    /// Decodes a snapshot previously produced by [`BootSnapshot::to_bytes`].
    ///
    /// # Errors
    ///
    /// A description of the first structural problem found. Any truncation,
    /// bad magic, or unknown version is an error — callers treat a failed
    /// decode as a corrupt checkpoint and fall back to a cold boot.
    pub fn from_bytes(bytes: &[u8]) -> Result<BootSnapshot, String> {
        let mut r = Reader { bytes, pos: 0 };
        let magic = r.take(4)?;
        if magic != MAGIC {
            return Err("bad snapshot magic".to_owned());
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(format!("unsupported snapshot version {version}"));
        }
        let cycles = r.u64()?;
        let instructions = r.u64()?;
        let last_exit = r.u64()? as i64;
        let systemd = r.u8()? != 0;
        let switch_root_target = match r.u8()? {
            0 => None,
            1 => {
                let len = r.u32()? as usize;
                let raw = r.take(len)?;
                Some(
                    String::from_utf8(raw.to_vec())
                        .map_err(|_| "switch-root target is not UTF-8".to_owned())?,
                )
            }
            other => return Err(format!("bad switch-root tag {other}")),
        };
        let serial_len = r.u64()? as usize;
        let serial = String::from_utf8(r.take(serial_len)?.to_vec())
            .map_err(|_| "serial log is not UTF-8".to_owned())?;
        let image_len = r.u64()? as usize;
        let image =
            FsImage::from_bytes(r.take(image_len)?).map_err(|e| format!("embedded image: {e}"))?;
        if r.pos != bytes.len() {
            return Err("trailing bytes after snapshot".to_owned());
        }
        Ok(BootSnapshot {
            serial,
            image,
            cycles,
            instructions,
            last_exit,
            switch_root_target,
            systemd,
        })
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| "truncated snapshot".to_owned())?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BootSnapshot {
        let mut image = FsImage::new();
        image.write_file("/etc/hostname", b"buildroot\n").unwrap();
        image.write_file("/etc/kernel-release", b"5.7.0\n").unwrap();
        BootSnapshot {
            serial: "OpenSBI v0.9\n[    0.000100] Linux version 5.7\n".to_owned(),
            image,
            cycles: 123_456,
            instructions: 0,
            last_exit: 0,
            switch_root_target: Some("/dev/vda".to_owned()),
            systemd: false,
        }
    }

    #[test]
    fn roundtrip_is_exact() {
        let snap = sample();
        let decoded = BootSnapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(snap, decoded);
        assert_eq!(snap.image.fingerprint(), decoded.image.fingerprint());
    }

    #[test]
    fn roundtrip_without_switch_root() {
        let mut snap = sample();
        snap.switch_root_target = None;
        snap.systemd = true;
        assert_eq!(snap, BootSnapshot::from_bytes(&snap.to_bytes()).unwrap());
    }

    #[test]
    fn truncation_anywhere_is_detected() {
        let bytes = sample().to_bytes();
        for cut in [0, 3, 4, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                BootSnapshot::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} must not decode"
            );
        }
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert!(BootSnapshot::from_bytes(&bytes).is_err());
        let mut bytes = sample().to_bytes();
        bytes[4] = 0xEE;
        assert!(BootSnapshot::from_bytes(&bytes).is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert!(BootSnapshot::from_bytes(&bytes).is_err());
    }
}
