//! The full-system boot flow: firmware → kernel → initramfs → init system
//! → workload payload.
//!
//! Both functional simulators and the cycle-exact simulator drive this same
//! flow with the same artifacts; only the [`Executor`] differs. This is the
//! mechanism behind the paper's §III-E guarantee: "the workload outputs are
//! not modified in any way between the launch and install commands; the
//! exact same artifacts are run on both simulators."

use marshal_firmware::BootBinary;
use marshal_image::{initsys, FsImage};
use marshal_isa::MexeFile;

use crate::checkpoint::BootSnapshot;
use crate::guest::{Executor, GuestEnv, GuestOs};
use crate::machine::{LaunchMode, SimConfig, SimError, SimResult, WATCHDOG_EXIT_CODE};
use crate::syscall::{OsServices, UserRunner};

/// Whether a payload error means the guest hung and the watchdog fired.
///
/// Budget exhaustion reaches us three ways: as [`SimError::Budget`]
/// directly, stringified through mscript as a [`SimError::Script`], or —
/// most reliably — as an exhausted budget counter on the OS (executors
/// account the consumed budget before reporting the error).
fn watchdog_fired(err: &SimError, os: &GuestOs) -> bool {
    os.remaining_budget().is_err()
        || matches!(err, SimError::Budget { .. })
        || matches!(err, SimError::Script(m) if m.contains("instruction budget exhausted"))
}

/// Boots a Linux workload and runs its payload.
///
/// `disk` is required when the kernel's initramfs hands off to `/dev/vda`
/// (normal builds) and unused for diskless (`--no-disk`) builds.
///
/// # Errors
///
/// [`SimError::BadArtifact`] for inconsistent artifacts (e.g. missing disk),
/// plus any trap/budget/script error from the payload.
pub fn simulate_linux<E: Executor>(
    cfg: &SimConfig,
    boot: &BootBinary,
    disk: Option<&FsImage>,
    mode: LaunchMode,
    exec: &mut E,
) -> Result<SimResult, SimError> {
    let (os, systemd) = boot_linux(cfg, boot, disk, exec)?;
    run_payload(cfg, os, systemd, mode, exec)
}

/// [`simulate_linux`] with boot checkpointing.
///
/// With `resume = Some(snapshot)` (and [`LaunchMode::Run`]) the entire boot
/// phase is skipped: the OS is rebuilt from the snapshot and only the
/// payload phase executes — `boot` and `disk` are not consulted at all.
///
/// On a cold run the boot state is captured at the payload seam and
/// returned alongside the result, but only when the boot phase retired zero
/// user instructions: a boot that executed guest binaries (init scripts
/// exec-ing programs, a still-pending `guest-init`) would have warmed the
/// cycle-exact simulator's timing pipeline, and restoring past it could
/// change modelled time. Refusing to capture keeps restores bit-exact by
/// construction. [`LaunchMode::GuestInit`] runs never capture or resume —
/// their purpose is the boot itself.
///
/// # Errors
///
/// Exactly those of [`simulate_linux`].
pub fn simulate_linux_checkpointed<E: Executor>(
    cfg: &SimConfig,
    boot: &BootBinary,
    disk: Option<&FsImage>,
    mode: LaunchMode,
    exec: &mut E,
    resume: Option<&BootSnapshot>,
) -> Result<(SimResult, Option<BootSnapshot>), SimError> {
    let resume = resume.filter(|_| matches!(mode, LaunchMode::Run));
    let (os, systemd) = match resume {
        Some(snap) => (GuestOs::from_snapshot(snap, cfg), snap.systemd),
        None => boot_linux(cfg, boot, disk, exec)?,
    };
    let captured = if resume.is_none() && matches!(mode, LaunchMode::Run) && os.instructions == 0 {
        Some(os.snapshot(systemd))
    } else {
        None
    };
    let result = run_payload(cfg, os, systemd, mode, exec)?;
    Ok((result, captured))
}

/// The boot phase: firmware → kernel → initramfs → root mount → init
/// system → (pending) guest-init. Returns the OS at the payload seam and
/// the detected-systemd flag.
fn boot_linux<E: Executor>(
    cfg: &SimConfig,
    boot: &BootBinary,
    disk: Option<&FsImage>,
    exec: &mut E,
) -> Result<(GuestOs, bool), SimError> {
    // --- Simulator banner -------------------------------------------------
    let mut preboot = Vec::new();
    let args = if cfg.extra_args.is_empty() {
        String::new()
    } else {
        format!(" {}", cfg.extra_args.join(" "))
    };
    preboot.push(format!(
        "{}: starting full-system simulation{args}",
        cfg.kind.name()
    ));
    for feature in &cfg.features {
        preboot.push(format!("{}: feature `{feature}` enabled", cfg.kind.name()));
    }

    // --- Firmware ----------------------------------------------------------
    for line in boot.firmware().banner().lines() {
        preboot.push(line.to_owned());
    }

    // --- Kernel ------------------------------------------------------------
    let kernel = boot.kernel();
    let initramfs_img = kernel
        .initramfs()
        .unpack()
        .map_err(|e| SimError::BadArtifact(e.to_string()))?;

    // Start the OS on the initramfs; the /init script picks the real root.
    let mut os = GuestOs::new(initramfs_img.clone(), cfg);
    for line in preboot {
        os.serial_line(&line);
    }
    os.dmesg(&kernel.banner());
    os.dmesg(&format!("Machine model: firemarshal,{}", cfg.kind.name()));
    os.dmesg("Memory: 16384MB available");
    let cpus = kernel
        .config()
        .get("NR_CPUS")
        .and_then(|v| match v {
            marshal_linux::ConfigValue::Int(n) => Some(*n),
            _ => None,
        })
        .unwrap_or(1);
    os.dmesg(&format!("smp: Brought up 1 node, {cpus} CPUs"));
    if kernel.config().is_enabled("NET") {
        os.dmesg("NET: Registered protocol family 2");
    }
    if kernel.config().is_enabled("SERIAL_8250") {
        os.dmesg("Serial: 8250/16550 driver");
    }
    if kernel.config().is_enabled("PFA") {
        os.dmesg("pfa: page fault accelerator driver registered");
    }
    // Boot work scales with the artifact like real load/decompress time.
    os.account(0, boot.size() / 256);
    os.dmesg(&format!(
        "Unpacking initramfs... ({} modules)",
        kernel.initramfs().module_names().len()
    ));

    // --- First-stage init (initramfs /init) --------------------------------
    if os.image.exists(marshal_linux::initramfs::INIT_PATH) {
        let init_src = String::from_utf8_lossy(
            os.image
                .read_file(marshal_linux::initramfs::INIT_PATH)
                .expect("checked exists"),
        )
        .into_owned();
        let mut env = GuestEnv::new(&mut os, exec);
        env.run_script_source(&init_src, &[])?;
    }

    // --- Mount the real root -----------------------------------------------
    let target = os.switch_root_target.clone();
    let rootfs = match target.as_deref() {
        Some("initramfs") => {
            // Diskless: the initramfs payload IS the rootfs.
            let mut root = os.image.clone();
            root.remove(marshal_linux::initramfs::INIT_PATH);
            root
        }
        Some(_dev) => disk
            .ok_or_else(|| {
                SimError::BadArtifact(
                    "kernel wants a root block device but no disk image was provided".to_owned(),
                )
            })?
            .clone(),
        None => match disk {
            Some(d) => d.clone(),
            None => os.image.clone(),
        },
    };
    os.image = rootfs;
    os.image
        .write_file("/etc/kernel-release", kernel.version().as_bytes())?;
    os.dmesg("VFS: Mounted root (ext4 filesystem) readonly on device 254:0.");

    // --- Init system --------------------------------------------------------
    let systemd = os.image.exists("/etc/systemd/system");
    if systemd {
        os.serial_line("systemd[1]: Detected architecture riscv64.");
        os.serial_line("systemd[1]: Reached target Local File Systems.");
        os.serial_line("systemd[1]: Reached target Multi-User System.");
    } else {
        os.serial_line("Starting syslogd: OK");
        os.serial_line("Starting network: OK");
    }

    // --- guest-init (one-shot, §III-B step 5b) ------------------------------
    if initsys::guest_init_pending(&os.image) {
        let src = String::from_utf8_lossy(
            os.image
                .read_file(initsys::GUEST_INIT_PATH)
                .expect("pending implies present"),
        )
        .into_owned();
        os.serial_line("firemarshal: running one-shot guest-init");
        // Scar the image before the script runs: a crash (or torn image
        // write) mid-guest-init leaves `guest-init.started` behind, so the
        // interrupted image is detectable instead of silently half-built.
        initsys::mark_guest_init_started(&mut os.image)?;
        {
            let mut env = GuestEnv::new(&mut os, exec);
            env.run_script_source(&src, &[])?;
        }
        initsys::mark_guest_init_done(&mut os.image)?;
        os.serial_line("firemarshal: guest-init complete");
    }

    Ok((os, systemd))
}

/// The payload phase: everything after the post-init seam.
fn run_payload<E: Executor>(
    cfg: &SimConfig,
    mut os: GuestOs,
    systemd: bool,
    mode: LaunchMode,
    exec: &mut E,
) -> Result<SimResult, SimError> {
    // --- Workload payload ----------------------------------------------------
    // Boot problems (init scripts, guest-init) stay hard errors: a broken
    // image is a build defect, not a hung workload. Only the payload phase
    // runs under the watchdog — budget exhaustion there terminates the
    // guest and salvages the partial serial log and image instead of
    // throwing everything away.
    let mut timed_out = false;
    if matches!(mode, LaunchMode::Run) {
        if os.image.exists(initsys::RUN_SCRIPT) {
            let src =
                String::from_utf8_lossy(os.image.read_file(initsys::RUN_SCRIPT).expect("exists"))
                    .into_owned();
            if systemd {
                os.serial_line("systemd[1]: Starting FireMarshal workload payload...");
            } else {
                os.serial_line("Starting firemarshal payload:");
            }
            let payload_err = {
                let mut env = GuestEnv::new(&mut os, exec);
                env.run_script_source(&src, &[]).err()
            };
            if let Some(e) = payload_err {
                if watchdog_fired(&e, &os) {
                    timed_out = true;
                    os.serial_line(&format!(
                        "firemarshal: watchdog: instruction budget exhausted \
                         ({} instructions); terminating hung guest",
                        cfg.max_instructions
                    ));
                    os.last_exit = WATCHDOG_EXIT_CODE;
                } else {
                    return Err(e);
                }
            }
        } else {
            os.serial_line("firemarshal: no run/command configured; interactive console");
            os.serial_line("buildroot login: root (automatic login)");
            os.serial_line("#");
        }
    }

    if !timed_out {
        os.dmesg("reboot: Power down");
    }
    let (serial, image, instructions, exit_code) = os.into_parts();
    Ok(SimResult {
        serial,
        image: Some(image),
        exit_code,
        instructions,
        timed_out,
    })
}

/// Runs a bare-metal workload: the hard-coded `bin` executes directly on
/// the hart with the console as its only device.
///
/// # Errors
///
/// [`SimError::BadArtifact`] for non-MEXE binaries; traps and budget errors
/// from execution.
pub fn simulate_bare(cfg: &SimConfig, bin: &[u8]) -> Result<SimResult, SimError> {
    struct BareOs {
        serial: String,
    }
    impl OsServices for BareOs {
        fn serial_write(&mut self, bytes: &[u8]) {
            self.serial.push_str(&String::from_utf8_lossy(bytes));
        }
        fn file_read(&mut self, _path: &str) -> Option<Vec<u8>> {
            None
        }
        fn file_write(&mut self, _path: &str, _data: &[u8]) -> bool {
            false
        }
    }

    if !MexeFile::sniff(bin) {
        return Err(SimError::BadArtifact(
            "bare-metal workload binary is not a MEXE image".to_owned(),
        ));
    }
    let exe = MexeFile::from_bytes(bin)
        .map_err(|e| SimError::BadArtifact(format!("bare-metal binary: {e}")))?;
    let mut os = BareOs {
        serial: format!("{}: starting bare-metal simulation\n", cfg.kind.name()),
    };
    let mut runner = UserRunner::new(&exe, &[])?;
    runner.bus.enable_uart();
    let (exit_code, instructions, timed_out) = match runner.run(&mut os, cfg.max_instructions) {
        Ok((code, insts)) => (code, insts, false),
        Err(SimError::Budget { limit }) => {
            os.serial.push_str(&format!(
                "{}: watchdog: instruction budget exhausted ({limit} instructions); \
                 terminating hung guest\n",
                cfg.kind.name()
            ));
            (WATCHDOG_EXIT_CODE, limit, true)
        }
        Err(e) => return Err(e),
    };
    if !timed_out {
        os.serial.push_str(&format!(
            "{}: exited with code {exit_code}\n",
            cfg.kind.name()
        ));
    }
    Ok(SimResult {
        serial: os.serial,
        image: None,
        exit_code,
        instructions,
        timed_out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guest::FunctionalExecutor;
    use crate::machine::SimKind;
    use marshal_firmware::{build_firmware, link_boot_binary, FirmwareBuild};
    use marshal_image::{BootPayload, InitSystem};
    use marshal_isa::abi;
    use marshal_isa::asm::assemble;
    use marshal_linux::kconfig::KernelConfig;
    use marshal_linux::kernel::{build_kernel, KernelSource};
    use marshal_linux::InitramfsSpec;

    fn boot_binary(diskless_rootfs: Option<FsImage>) -> BootBinary {
        let config = KernelConfig::riscv_defconfig();
        let src = KernelSource::default_source();
        let mut spec = InitramfsSpec::new().module("iceblk", "v1");
        if let Some(rootfs) = diskless_rootfs {
            spec = spec.embed_rootfs(rootfs);
        }
        let initramfs = spec.build(&config, &src).unwrap();
        let kernel = build_kernel(&src, &config, &initramfs).unwrap();
        let fw = build_firmware(&FirmwareBuild::default()).unwrap();
        link_boot_binary(&fw, &kernel).unwrap()
    }

    fn disk_with_payload(cmd: &str) -> FsImage {
        let mut img = FsImage::new();
        img.write_file("/etc/hostname", b"buildroot").unwrap();
        img.mkdir_p("/etc/init.d").unwrap();
        let exe = assemble(
            r#"
        .data
msg:    .ascii "payload ran\n"
        .text
_start:
        li      a0, 1
        la      a1, msg
        li      a2, 12
        li      a7, 64
        ecall
        li      a0, 0
        li      a7, 93
        ecall
"#,
            abi::USER_BASE,
        )
        .unwrap();
        img.write_exec("/bin/payload", &exe.to_bytes()).unwrap();
        InitSystem::Initd
            .install_payload(&mut img, &BootPayload::Command(cmd.to_owned()))
            .unwrap();
        img
    }

    #[test]
    fn full_boot_runs_payload() {
        let cfg = SimConfig::new(SimKind::Qemu);
        let boot = boot_binary(None);
        let disk = disk_with_payload("/bin/payload");
        let mut fexec = FunctionalExecutor;
        let result = simulate_linux(&cfg, &boot, Some(&disk), LaunchMode::Run, &mut fexec).unwrap();
        let serial = &result.serial;
        assert!(serial.contains("OpenSBI"), "firmware banner: {serial}");
        assert!(serial.contains("Linux version"), "kernel banner");
        assert!(serial.contains("iceblk: module loaded"), "module load");
        assert!(serial.contains("payload ran"), "payload output: {serial}");
        assert!(serial.contains("reboot: Power down"));
        assert_eq!(result.exit_code, 0);
        assert!(result.instructions > 0);
    }

    #[test]
    fn boot_order_is_correct() {
        let cfg = SimConfig::new(SimKind::Qemu);
        let boot = boot_binary(None);
        let disk = disk_with_payload("/bin/payload");
        let mut fexec = FunctionalExecutor;
        let result = simulate_linux(&cfg, &boot, Some(&disk), LaunchMode::Run, &mut fexec).unwrap();
        let s = &result.serial;
        let fw = s.find("OpenSBI").unwrap();
        let kernel = s.find("Linux version").unwrap();
        let module = s.find("iceblk: module loaded").unwrap();
        let init = s.find("Starting syslogd").unwrap();
        let payload = s.find("payload ran").unwrap();
        let off = s.find("reboot: Power down").unwrap();
        assert!(fw < kernel && kernel < module && module < init && init < payload && payload < off);
    }

    #[test]
    fn missing_disk_is_error() {
        let cfg = SimConfig::new(SimKind::Qemu);
        let boot = boot_binary(None);
        let mut fexec = FunctionalExecutor;
        assert!(matches!(
            simulate_linux(&cfg, &boot, None, LaunchMode::Run, &mut fexec),
            Err(SimError::BadArtifact(_))
        ));
    }

    #[test]
    fn diskless_boot_uses_embedded_rootfs() {
        let rootfs = disk_with_payload("/bin/payload");
        let cfg = SimConfig::new(SimKind::Qemu);
        let boot = boot_binary(Some(rootfs));
        let mut fexec = FunctionalExecutor;
        let result = simulate_linux(&cfg, &boot, None, LaunchMode::Run, &mut fexec).unwrap();
        assert!(result.serial.contains("switching root to initramfs"));
        assert!(result.serial.contains("payload ran"));
    }

    #[test]
    fn guest_init_runs_once_and_marks_done() {
        let cfg = SimConfig::new(SimKind::Qemu);
        let boot = boot_binary(None);
        let mut disk = disk_with_payload("/bin/payload");
        initsys::install_guest_init(
            &mut disk,
            "#!mscript\nprint(\"guest-init!\")\nwrite_file(\"/etc/setup-done\", \"yes\")\n",
        )
        .unwrap();
        let mut fexec = FunctionalExecutor;
        let result =
            simulate_linux(&cfg, &boot, Some(&disk), LaunchMode::GuestInit, &mut fexec).unwrap();
        assert!(result.serial.contains("guest-init!"));
        // Payload NOT run in guest-init mode.
        assert!(!result.serial.contains("payload ran"));
        let image = result.image.unwrap();
        assert_eq!(image.read_file("/etc/setup-done").unwrap(), b"yes");
        assert!(!initsys::guest_init_pending(&image));

        // Booting the post-init image again: guest-init must not re-run.
        let result2 =
            simulate_linux(&cfg, &boot, Some(&image), LaunchMode::Run, &mut fexec).unwrap();
        assert!(!result2.serial.contains("guest-init!"));
        assert!(result2.serial.contains("payload ran"));
    }

    #[test]
    fn interactive_boot_without_payload() {
        let cfg = SimConfig::new(SimKind::Qemu);
        let boot = boot_binary(None);
        let mut disk = FsImage::new();
        disk.mkdir_p("/etc/init.d").unwrap();
        let mut fexec = FunctionalExecutor;
        let result = simulate_linux(&cfg, &boot, Some(&disk), LaunchMode::Run, &mut fexec).unwrap();
        assert!(result.serial.contains("interactive console"));
    }

    #[test]
    fn systemd_images_print_systemd_lines() {
        let cfg = SimConfig::new(SimKind::Qemu);
        let boot = boot_binary(None);
        let mut disk = FsImage::new();
        InitSystem::Systemd
            .install_payload(&mut disk, &BootPayload::Command("/bin/payload".into()))
            .unwrap();
        let exe = assemble("_start:\n li a0, 0\n li a7, 93\n ecall\n", abi::USER_BASE).unwrap();
        disk.write_exec("/bin/payload", &exe.to_bytes()).unwrap();
        let mut fexec = FunctionalExecutor;
        let result = simulate_linux(&cfg, &boot, Some(&disk), LaunchMode::Run, &mut fexec).unwrap();
        assert!(result.serial.contains("Multi-User System"));
        assert!(result
            .serial
            .contains("Starting FireMarshal workload payload"));
    }

    #[test]
    fn bare_metal_runs() {
        let cfg = SimConfig::new(SimKind::Spike);
        let exe = assemble(
            r#"
        .data
msg:    .ascii "bare metal ok\n"
        .text
_start:
        li      a0, 1
        la      a1, msg
        li      a2, 14
        li      a7, 64
        ecall
        li      a0, 0
        li      a7, 93
        ecall
"#,
            abi::USER_BASE,
        )
        .unwrap();
        let result = simulate_bare(&cfg, &exe.to_bytes()).unwrap();
        assert!(result.serial.contains("bare metal ok"));
        assert_eq!(result.exit_code, 0);
        assert!(result.image.is_none());
        assert!(simulate_bare(&cfg, b"garbage").is_err());
    }

    #[test]
    fn watchdog_salvages_hung_payload() {
        let mut cfg = SimConfig::new(SimKind::Qemu);
        cfg.max_instructions = 50_000;
        let boot = boot_binary(None);
        let mut disk = FsImage::new();
        disk.mkdir_p("/etc/init.d").unwrap();
        let spin = assemble("_start:\n j _start\n", abi::USER_BASE).unwrap();
        disk.write_exec("/bin/spin", &spin.to_bytes()).unwrap();
        InitSystem::Initd
            .install_payload(&mut disk, &BootPayload::Command("/bin/spin".to_owned()))
            .unwrap();
        let mut fexec = FunctionalExecutor;
        let result = simulate_linux(&cfg, &boot, Some(&disk), LaunchMode::Run, &mut fexec).unwrap();
        assert!(result.timed_out);
        assert!(!result.success());
        assert_eq!(result.exit_code, WATCHDOG_EXIT_CODE);
        let serial = &result.serial;
        assert!(
            serial.contains("watchdog: instruction budget exhausted"),
            "diagnostic in salvaged log: {serial}"
        );
        // Everything up to the hang is salvaged; the clean-shutdown line
        // is not faked.
        assert!(serial.contains("OpenSBI"), "boot log salvaged: {serial}");
        assert!(!serial.contains("reboot: Power down"));
        assert!(result.image.is_some(), "partial image salvaged");
    }

    #[test]
    fn hung_guest_init_is_a_hard_error() {
        // A hang during build-time guest-init is a build defect, not a
        // workload timeout: no salvage.
        let mut cfg = SimConfig::new(SimKind::Qemu);
        cfg.max_instructions = 50_000;
        let boot = boot_binary(None);
        let mut disk = disk_with_payload("/bin/payload");
        let spin = assemble("_start:\n j _start\n", abi::USER_BASE).unwrap();
        disk.write_exec("/bin/spin", &spin.to_bytes()).unwrap();
        initsys::install_guest_init(&mut disk, "#!mscript\nexec(\"/bin/spin\")\n").unwrap();
        let mut fexec = FunctionalExecutor;
        assert!(
            simulate_linux(&cfg, &boot, Some(&disk), LaunchMode::GuestInit, &mut fexec).is_err()
        );
    }

    #[test]
    fn bare_metal_watchdog() {
        let mut cfg = SimConfig::new(SimKind::Spike);
        cfg.max_instructions = 10_000;
        let spin = assemble("_start:\n j _start\n", abi::USER_BASE).unwrap();
        let result = simulate_bare(&cfg, &spin.to_bytes()).unwrap();
        assert!(result.timed_out);
        assert!(!result.success());
        assert_eq!(result.exit_code, WATCHDOG_EXIT_CODE);
        assert!(result.serial.contains("watchdog"), "{}", result.serial);
    }

    #[test]
    fn deterministic_serial_logs() {
        let cfg = SimConfig::new(SimKind::Qemu);
        let boot = boot_binary(None);
        let disk = disk_with_payload("/bin/payload");
        let mut fexec = FunctionalExecutor;
        let a = simulate_linux(&cfg, &boot, Some(&disk), LaunchMode::Run, &mut fexec).unwrap();
        let b = simulate_linux(&cfg, &boot, Some(&disk), LaunchMode::Run, &mut fexec).unwrap();
        assert_eq!(a.serial, b.serial);
        assert_eq!(a.instructions, b.instructions);
    }

    #[test]
    fn different_simulators_differ_only_in_volatile_lines() {
        let boot = boot_binary(None);
        let disk = disk_with_payload("/bin/payload");
        let mut fexec = FunctionalExecutor;
        let q = simulate_linux(
            &SimConfig::new(SimKind::Qemu),
            &boot,
            Some(&disk),
            LaunchMode::Run,
            &mut fexec,
        )
        .unwrap();
        let s = simulate_linux(
            &SimConfig::new(SimKind::Spike),
            &boot,
            Some(&disk),
            LaunchMode::Run,
            &mut fexec,
        )
        .unwrap();
        // Raw logs differ (timestamps, banner)...
        assert_ne!(q.serial, s.serial);
        // ...but stripping the volatile prefix yields identical content.
        let clean = |log: &str| -> Vec<String> {
            log.lines()
                .filter(|l| !l.starts_with("qemu") && !l.starts_with("spike"))
                .map(|l| match l.find("] ") {
                    Some(i) if l.starts_with('[') => l[i + 2..].to_owned(),
                    _ => l.to_owned(),
                })
                .filter(|l| !l.starts_with("Machine model"))
                .collect()
        };
        assert_eq!(clean(&q.serial), clean(&s.serial));
    }
}

#[cfg(test)]
mod mmio_tests {
    use super::*;
    use crate::machine::{SimConfig, SimKind};
    use marshal_isa::abi;
    use marshal_isa::asm::assemble;

    #[test]
    fn bare_metal_mmio_uart() {
        // A driver-style program that writes the console through the
        // memory-mapped UART instead of the syscall ABI (§IV-A-1 bare
        // metal unit tests).
        let src = r#"
        .equ UART_TX, 0x60000000
        .data
msg:    .asciiz "mmio uart ok"
        .text
_start:
        li      t0, UART_TX
        la      t1, msg
loop:
        lbu     t2, 0(t1)
        beqz    t2, done
        # poll status (always ready in the model), then transmit
        ld      t3, 0(t0)
        sb      t2, 0(t0)
        addi    t1, t1, 1
        j       loop
done:
        li      t2, 10          # newline
        sb      t2, 0(t0)
        li      a0, 0
        li      a7, 93
        ecall
"#;
        let exe = assemble(src, abi::USER_BASE).unwrap();
        let cfg = SimConfig::new(SimKind::Spike);
        let result = simulate_bare(&cfg, &exe.to_bytes()).unwrap();
        assert!(
            result.serial.contains("mmio uart ok\n"),
            "{}",
            result.serial
        );
        assert_eq!(result.exit_code, 0);
    }
}
