//! The modelled guest operating system.
//!
//! [`GuestOs`] owns the mounted root filesystem, the serial console, and
//! the guest clock. [`GuestEnv`] exposes the guest to mscript — it is the
//! environment in which init scripts, `guest-init`, and the workload's
//! boot payload run. Program execution goes through the [`Executor`] trait
//! so the cycle-exact simulator can attach its timing model while sharing
//! every other piece of the OS model.

use marshal_image::FsImage;
use marshal_isa::MexeFile;
use marshal_script::{Extern, ExternResult, Interp, Value};

use crate::checkpoint::BootSnapshot;
use crate::machine::{SimConfig, SimError, SimKind};
use crate::syscall::{OsServices, UserRunner};

/// Maximum nesting of guest scripts/binaries (scripts invoking scripts).
const MAX_EXEC_DEPTH: u32 = 8;

/// Executes user programs — functionally here, with a timing model in the
/// cycle-exact simulator.
pub trait Executor {
    /// Runs `exe` with `args` against the guest OS; returns
    /// `(exit_code, instructions)`.
    ///
    /// # Errors
    ///
    /// Propagates traps, budget exhaustion, and artifact errors.
    fn exec(
        &mut self,
        exe: &MexeFile,
        args: &[String],
        os: &mut GuestOs,
    ) -> Result<(i64, u64), SimError>;
}

/// The functional executor: no timing model, one cycle per instruction.
#[derive(Debug, Clone, Copy)]
pub struct FunctionalExecutor;

impl Executor for FunctionalExecutor {
    fn exec(
        &mut self,
        exe: &MexeFile,
        args: &[String],
        os: &mut GuestOs,
    ) -> Result<(i64, u64), SimError> {
        let budget = os.remaining_budget()?;
        let mut runner = UserRunner::new(exe, args)?;
        let (code, insts) = match runner.run(os, budget) {
            Ok(r) => r,
            Err(SimError::Budget { limit }) => {
                // The program consumed the whole remaining budget before it
                // was stopped. Account it so `remaining_budget()` reports
                // exhaustion — the watchdog relies on this to tell a hung
                // guest apart from an ordinary script failure even after
                // the error has been stringified through mscript.
                os.account(budget, budget);
                return Err(SimError::Budget { limit });
            }
            Err(e) => return Err(e),
        };
        os.account(insts, insts);
        Ok((code, insts))
    }
}

/// The guest operating system state during a simulation.
#[derive(Debug)]
pub struct GuestOs {
    /// The mounted root filesystem (mutated by the run).
    pub image: FsImage,
    serial: String,
    /// Guest cycles (functional sims count instructions).
    pub cycles: u64,
    /// Total user instructions retired.
    pub instructions: u64,
    kind: SimKind,
    max_instructions: u64,
    /// Exit code of the most recently executed program.
    pub last_exit: i64,
    /// Root device requested by the initramfs `switch_root` call.
    pub switch_root_target: Option<String>,
}

impl GuestOs {
    /// Creates the guest OS around a root filesystem.
    pub fn new(image: FsImage, cfg: &SimConfig) -> GuestOs {
        GuestOs {
            image,
            serial: String::new(),
            cycles: 0,
            instructions: 0,
            kind: cfg.kind,
            max_instructions: cfg.max_instructions,
            last_exit: 0,
            switch_root_target: None,
        }
    }

    /// The serial log so far.
    pub fn serial(&self) -> &str {
        &self.serial
    }

    /// Captures the complete observable OS state as a [`BootSnapshot`].
    ///
    /// `systemd` is the init-system flag the boot phase computed; it rides
    /// along so a restored payload phase prints the identical console
    /// lines. The image clone is O(1) (copy-on-write).
    pub fn snapshot(&self, systemd: bool) -> BootSnapshot {
        BootSnapshot {
            serial: self.serial.clone(),
            image: self.image.clone(),
            cycles: self.cycles,
            instructions: self.instructions,
            last_exit: self.last_exit,
            switch_root_target: self.switch_root_target.clone(),
            systemd,
        }
    }

    /// Rebuilds the OS exactly as it was when `snap` was captured.
    ///
    /// `cfg` must describe the same simulator configuration the snapshot
    /// was taken under (the checkpoint store keys snapshots by it).
    pub fn from_snapshot(snap: &BootSnapshot, cfg: &SimConfig) -> GuestOs {
        GuestOs {
            image: snap.image.clone(),
            serial: snap.serial.clone(),
            cycles: snap.cycles,
            instructions: snap.instructions,
            kind: cfg.kind,
            max_instructions: cfg.max_instructions,
            last_exit: snap.last_exit,
            switch_root_target: snap.switch_root_target.clone(),
        }
    }

    /// Takes the serial log out of the OS.
    pub fn into_parts(self) -> (String, FsImage, u64, i64) {
        (self.serial, self.image, self.instructions, self.last_exit)
    }

    /// Appends a raw line to the serial console.
    pub fn serial_line(&mut self, line: &str) {
        self.serial.push_str(line);
        self.serial.push('\n');
    }

    /// Appends a kernel-style line with a `[ seconds.micros ]` timestamp
    /// derived from the guest clock — the non-deterministic-looking prefix
    /// FireMarshal's output cleaning strips.
    pub fn dmesg(&mut self, line: &str) {
        let ns = self.cycles * self.kind.ns_per_instruction();
        let secs = ns / 1_000_000_000;
        let micros = (ns % 1_000_000_000) / 1_000;
        self.serial
            .push_str(&format!("[{secs:5}.{micros:06}] {line}\n"));
        // Each dmesg line models a little boot work.
        self.cycles += 1_000;
    }

    /// Instruction budget remaining.
    ///
    /// # Errors
    ///
    /// [`SimError::Budget`] once the budget is exhausted.
    pub fn remaining_budget(&self) -> Result<u64, SimError> {
        if self.instructions >= self.max_instructions {
            return Err(SimError::Budget {
                limit: self.max_instructions,
            });
        }
        Ok(self.max_instructions - self.instructions)
    }

    /// Accounts executed instructions and elapsed cycles.
    pub fn account(&mut self, instructions: u64, cycles: u64) {
        self.instructions += instructions;
        self.cycles += cycles;
    }

    /// Loads an executable file from the image.
    ///
    /// # Errors
    ///
    /// [`SimError::BadArtifact`] when missing or not executable.
    pub fn load_program(&self, path: &str) -> Result<GuestProgram, SimError> {
        let data = self
            .image
            .read_file(path)
            .map_err(|e| SimError::BadArtifact(format!("exec {path}: {e}")))?;
        if MexeFile::sniff(data) {
            let exe = MexeFile::from_bytes(data)
                .map_err(|e| SimError::BadArtifact(format!("exec {path}: {e}")))?;
            Ok(GuestProgram::Binary(exe))
        } else if marshal_script::is_mscript(data) {
            Ok(GuestProgram::Script(
                String::from_utf8_lossy(data).into_owned(),
            ))
        } else {
            Err(SimError::BadArtifact(format!(
                "exec {path}: not a MEXE binary or mscript"
            )))
        }
    }
}

/// An executable loaded from the guest image.
#[derive(Debug, Clone)]
pub enum GuestProgram {
    /// A MEXE machine-code binary.
    Binary(MexeFile),
    /// An mscript source file.
    Script(String),
}

impl OsServices for GuestOs {
    fn serial_write(&mut self, bytes: &[u8]) {
        self.serial.push_str(&String::from_utf8_lossy(bytes));
    }

    fn file_read(&mut self, path: &str) -> Option<Vec<u8>> {
        self.image.read_file(path).ok().map(<[u8]>::to_vec)
    }

    fn file_write(&mut self, path: &str, data: &[u8]) -> bool {
        self.image.write_file(path, data).is_ok()
    }
}

/// The mscript environment for guest scripts.
pub struct GuestEnv<'a, E: Executor> {
    /// The guest OS.
    pub os: &'a mut GuestOs,
    /// Program executor (functional or timed).
    pub exec: &'a mut E,
    depth: u32,
}

impl<'a, E: Executor> GuestEnv<'a, E> {
    /// Creates the environment.
    pub fn new(os: &'a mut GuestOs, exec: &'a mut E) -> GuestEnv<'a, E> {
        GuestEnv { os, exec, depth: 0 }
    }

    /// Runs a guest script from source with arguments.
    ///
    /// # Errors
    ///
    /// Script errors and any execution error, as [`SimError::Script`].
    pub fn run_script_source(&mut self, source: &str, args: &[Value]) -> Result<Value, SimError> {
        let mut interp = Interp::new();
        let result = interp
            .run(source, self, args)
            .map_err(|e| SimError::Script(e.to_string()))?;
        Ok(result)
    }

    fn exec_path(&mut self, path: &str, args: &[String]) -> Result<i64, SimError> {
        if self.depth >= MAX_EXEC_DEPTH {
            return Err(SimError::Script(format!(
                "exec depth limit reached running {path}"
            )));
        }
        let program = self.os.load_program(path)?;
        let code = match program {
            GuestProgram::Binary(exe) => {
                let mut argv = vec![path.to_owned()];
                argv.extend(args.iter().cloned());
                let (code, _) = self.exec.exec(&exe, &argv, self.os)?;
                code
            }
            GuestProgram::Script(source) => {
                self.depth += 1;
                let argv: Vec<Value> = args.iter().map(|a| Value::Str(a.clone())).collect();
                let result = self.run_script_source(&source, &argv);
                self.depth -= 1;
                result?;
                self.os.last_exit
            }
        };
        self.os.last_exit = code;
        Ok(code)
    }

    fn exec_line(&mut self, line: &str) -> Result<i64, SimError> {
        let mut parts = line.split_whitespace();
        let Some(path) = parts.next() else {
            return Ok(0);
        };
        let args: Vec<String> = parts.map(str::to_owned).collect();
        self.exec_path(path, &args)
    }
}

impl<E: Executor> Extern for GuestEnv<'_, E> {
    fn call(&mut self, name: &str, args: &[Value]) -> ExternResult {
        let str_arg = |i: usize| -> Result<&str, String> {
            match args.get(i) {
                Some(Value::Str(s)) => Ok(s.as_str()),
                other => Err(format!(
                    "{name}: argument {i} must be a string, got {:?}",
                    other.map(Value::type_name)
                )),
            }
        };
        let result = (|| -> Result<Option<Value>, String> {
            match name {
                "print" => {
                    let line = args.iter().map(Value::render).collect::<Vec<_>>().join(" ");
                    self.os.serial_line(&line);
                    Ok(Some(Value::Null))
                }
                "exec" => {
                    let path = str_arg(0)?.to_owned();
                    let rest: Vec<String> = args[1..]
                        .iter()
                        .map(|v| match v {
                            Value::Str(s) => s.clone(),
                            other => other.render(),
                        })
                        .collect();
                    let code = self.exec_path(&path, &rest).map_err(|e| e.to_string())?;
                    Ok(Some(Value::Int(code)))
                }
                "exec_line" => {
                    let line = str_arg(0)?.to_owned();
                    let code = self.exec_line(&line).map_err(|e| e.to_string())?;
                    Ok(Some(Value::Int(code)))
                }
                "run_script" => {
                    let path = str_arg(0)?.to_owned();
                    let code = self.exec_path(&path, &[]).map_err(|e| e.to_string())?;
                    Ok(Some(Value::Int(code)))
                }
                "read_file" => {
                    let path = str_arg(0)?;
                    let data = self.os.image.read_file(path).map_err(|e| e.to_string())?;
                    Ok(Some(Value::Str(String::from_utf8_lossy(data).into_owned())))
                }
                "write_file" => {
                    let path = str_arg(0)?.to_owned();
                    let body = str_arg(1)?;
                    self.os
                        .image
                        .write_file(&path, body.as_bytes())
                        .map_err(|e| e.to_string())?;
                    Ok(Some(Value::Null))
                }
                "append_file" => {
                    let path = str_arg(0)?.to_owned();
                    let body = str_arg(1)?.to_owned();
                    let mut data = self
                        .os
                        .image
                        .read_file(&path)
                        .map(<[u8]>::to_vec)
                        .unwrap_or_default();
                    data.extend_from_slice(body.as_bytes());
                    self.os
                        .image
                        .write_file(&path, &data)
                        .map_err(|e| e.to_string())?;
                    Ok(Some(Value::Null))
                }
                "exists" => Ok(Some(Value::Bool(self.os.image.exists(str_arg(0)?)))),
                "list_dir" => {
                    let names = self
                        .os
                        .image
                        .list_dir(str_arg(0)?)
                        .map_err(|e| e.to_string())?;
                    Ok(Some(Value::List(
                        names.into_iter().map(Value::Str).collect(),
                    )))
                }
                "remove" => Ok(Some(Value::Bool(self.os.image.remove(str_arg(0)?)))),
                "hostname" => {
                    let name = self
                        .os
                        .image
                        .read_file("/etc/hostname")
                        .map(|d| String::from_utf8_lossy(d).trim().to_owned())
                        .unwrap_or_else(|_| "(none)".to_owned());
                    Ok(Some(Value::Str(name)))
                }
                "cycles" => Ok(Some(Value::Int(self.os.cycles as i64))),
                "load_module" => {
                    let path = str_arg(0)?.to_owned();
                    if !self.os.image.exists(&path) {
                        return Err(format!("load_module: {path} not found"));
                    }
                    let name = path
                        .rsplit('/')
                        .next()
                        .unwrap_or(&path)
                        .trim_end_matches(".ko")
                        .to_owned();
                    self.os.dmesg(&format!("{name}: module loaded"));
                    Ok(Some(Value::Null))
                }
                "switch_root" => {
                    let target = str_arg(0)?.to_owned();
                    self.os.dmesg(&format!("switching root to {target}"));
                    self.os.switch_root_target = Some(target);
                    Ok(Some(Value::Null))
                }
                "install_packages" => {
                    // Fedora-style guest-init package installation.
                    for pkg in args {
                        let pkg = pkg.render();
                        self.os.serial_line(&format!("Installing : {pkg:<30} 1/1"));
                        let _ = self
                            .os
                            .image
                            .write_file(&format!("/usr/share/packages/{pkg}"), b"installed");
                    }
                    Ok(Some(Value::Null))
                }
                "uname" => Ok(Some(Value::Str(
                    self.os
                        .image
                        .read_file("/etc/kernel-release")
                        .map(|d| String::from_utf8_lossy(d).trim().to_owned())
                        .unwrap_or_else(|_| "unknown".to_owned()),
                ))),
                _ => Ok(None),
            }
        })();
        match result {
            Ok(Some(v)) => ExternResult::Value(v),
            Ok(None) => ExternResult::NotHandled,
            Err(m) => ExternResult::Err(m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marshal_isa::abi;
    use marshal_isa::asm::assemble;

    fn os_with(files: &[(&str, &[u8])]) -> GuestOs {
        let mut img = FsImage::new();
        for (p, d) in files {
            img.write_exec(p, d).unwrap();
        }
        GuestOs::new(img, &SimConfig::new(SimKind::Qemu))
    }

    fn hello_exe() -> Vec<u8> {
        assemble(
            r#"
        .data
msg:    .ascii "bench output: 7\n"
        .text
_start:
        li      a0, 1
        la      a1, msg
        li      a2, 16
        li      a7, 64
        ecall
        li      a0, 0
        li      a7, 93
        ecall
"#,
            abi::USER_BASE,
        )
        .unwrap()
        .to_bytes()
    }

    #[test]
    fn exec_binary_writes_serial() {
        let mut os = os_with(&[("/bin/bench", &hello_exe())]);
        let mut fexec = FunctionalExecutor;
        let mut env = GuestEnv::new(&mut os, &mut fexec);
        let code = env.exec_line("/bin/bench --fast").unwrap();
        assert_eq!(code, 0);
        assert!(os.serial().contains("bench output: 7"));
        assert!(os.instructions > 0);
    }

    #[test]
    fn script_execs_binary() {
        let script = b"#!mscript\nprint(\"starting\")\nlet rc = exec(\"/bin/bench\")\nprint(\"rc=\" + str(rc))\n";
        let mut os = os_with(&[("/bin/bench", &hello_exe()), ("/run.ms", script)]);
        let mut fexec = FunctionalExecutor;
        let mut env = GuestEnv::new(&mut os, &mut fexec);
        env.exec_line("/run.ms").unwrap();
        let serial = os.serial();
        let starting = serial.find("starting").unwrap();
        let output = serial.find("bench output").unwrap();
        let rc = serial.find("rc=0").unwrap();
        assert!(starting < output && output < rc, "serial order: {serial}");
    }

    #[test]
    fn guest_file_builtins() {
        let script = b"#!mscript\nwrite_file(\"/output/r.csv\", \"a,b\\n\")\nappend_file(\"/output/r.csv\", \"1,2\\n\")\nprint(read_file(\"/output/r.csv\"))\nprint(exists(\"/output/r.csv\"), exists(\"/nope\"))\n";
        let mut os = os_with(&[("/go.ms", script)]);
        let mut fexec = FunctionalExecutor;
        let mut env = GuestEnv::new(&mut os, &mut fexec);
        env.exec_line("/go.ms").unwrap();
        assert_eq!(os.image.read_file("/output/r.csv").unwrap(), b"a,b\n1,2\n");
        assert!(os.serial().contains("true false"));
    }

    #[test]
    fn exec_depth_bounded() {
        let script = b"#!mscript\nexec(\"/loop.ms\")\n";
        let mut os = os_with(&[("/loop.ms", script)]);
        let mut fexec = FunctionalExecutor;
        let mut env = GuestEnv::new(&mut os, &mut fexec);
        assert!(env.exec_line("/loop.ms").is_err());
    }

    #[test]
    fn dmesg_stamps_monotonic() {
        let mut os = os_with(&[]);
        os.dmesg("first");
        os.account(1_000_000, 1_000_000);
        os.dmesg("second");
        let lines: Vec<&str> = os.serial().lines().collect();
        assert!(lines[0].contains("first"));
        assert!(lines[0].starts_with('['));
        assert_ne!(lines[0].split(']').next(), lines[1].split(']').next());
    }

    #[test]
    fn missing_program_errors() {
        let mut os = os_with(&[]);
        let mut fexec = FunctionalExecutor;
        let mut env = GuestEnv::new(&mut os, &mut fexec);
        assert!(env.exec_line("/not/there").is_err());
    }

    #[test]
    fn non_executable_rejected() {
        let mut os = os_with(&[("/etc/plain.txt", b"not a program")]);
        let mut fexec = FunctionalExecutor;
        let mut env = GuestEnv::new(&mut os, &mut fexec);
        assert!(matches!(
            env.exec_line("/etc/plain.txt"),
            Err(SimError::BadArtifact(_))
        ));
    }
}

#[cfg(test)]
mod identity_tests {
    use super::*;
    use crate::machine::{SimConfig, SimKind};
    use marshal_image::FsImage;

    #[test]
    fn hostname_uname_and_cycles_builtins() {
        let mut img = FsImage::new();
        img.write_file("/etc/hostname", b"buildroot\n").unwrap();
        img.write_file("/etc/kernel-release", b"5.7.0-firemarshal\n")
            .unwrap();
        let script = br#"#!mscript
print("host=" + hostname())
print("kernel=" + uname())
let c = cycles()
print("cycles nonneg=" + str(c >= 0))
"#;
        img.write_exec("/id.ms", script).unwrap();
        let mut os = GuestOs::new(img, &SimConfig::new(SimKind::Qemu));
        os.account(0, 123);
        let mut fexec = FunctionalExecutor;
        let mut env = GuestEnv::new(&mut os, &mut fexec);
        env.exec_line("/id.ms").unwrap();
        let serial = os.serial();
        assert!(serial.contains("host=buildroot"), "{serial}");
        assert!(serial.contains("kernel=5.7.0-firemarshal"));
        assert!(serial.contains("cycles nonneg=true"));
    }

    #[test]
    fn hostname_defaults_when_missing() {
        let mut os = GuestOs::new(FsImage::new(), &SimConfig::new(SimKind::Qemu));
        let mut fexec = FunctionalExecutor;
        let mut env = GuestEnv::new(&mut os, &mut fexec);
        let v = env.run_script_source("hostname()", &[]).unwrap();
        assert_eq!(v, marshal_script::Value::Str("(none)".into()));
    }
}
