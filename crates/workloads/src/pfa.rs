//! The Page Fault Accelerator case-study workloads (§IV-A, Listing 1).
//!
//! `pfa-base` carries the common setup (custom `pfa-linux` kernel tree, a
//! test-root overlay, the `pfa-spike` golden-model simulator);
//! `latency-microbenchmark` derives from it with two jobs: a Linux client
//! measuring per-fault latency and a bare-metal memory server.

use crate::runtime::compose_benchmark;

/// Listing 1 (upper): the base workload for PFA Linux unit tests.
pub const PFA_BASE_JSON: &str = r#"{
    "name": "pfa-base",
    "base": "br-base.json",
    "host-init": "cross-compile.ms",
    "linux": {
        "source": "pfa-linux",
        "config": "pfa-linux.kfrag"
    },
    "overlay": "pfa-test-root",
    "spike": "pfa-spike"
}
"#;

/// Listing 1 (lower): the latency microbenchmark with client + server jobs.
pub const LATENCY_JSON: &str = r#"{ "name" : "latency-microbenchmark",
  "base" : "pfa-base.json",
  "post-run-hook" : "extract_csv.ms",
  "outputs" : ["/output"],
  "testing" : { "refDir" : "refs" },
  "jobs" : [
    { "name" : "client",
      "linux" : { "config" : "pfa.kfrag" },
      "command" : "/bin/latency" },
    { "name" : "server",
      "base" : "bare-metal.json",
      "bin" : "serve.mexe" }
  ]
}
"#;

/// Kernel fragment enabling the paging features `pfa-base` needs.
pub const PFA_LINUX_KFRAG: &str = "CONFIG_SWAP=y\nCONFIG_FRONTSWAP=y\n";

/// Kernel fragment enabling the PFA driver — the paper's "one-line Linux
/// configuration fragment" that switched from emulation to the real driver.
pub const PFA_KFRAG: &str = "CONFIG_PFA=y\n";

/// The host-init cross-compile script.
pub const CROSS_COMPILE_MS: &str = r#"#!mscript
# cross-compile.ms — build the PFA unit-test programs.
print("pfa: cross-compiling unit tests")
assemble("src/latency.s", "pfa-test-root/bin/latency")
assemble("src/serve.s", "serve.mexe")
print("pfa: build complete")
"#;

/// The post-run hook turning client serial output into a CSV — the
/// `extract_csv.py` of Listing 1.
pub const EXTRACT_CSV_MS: &str = r#"#!mscript
# extract_csv.ms — pull per-step fault latencies out of the client log.
let rows = ["job,faults,avg_cycles,min_cycles,max_cycles"]
for job in args() {
    let log = read_file(job + "/uartlog")
    let faults = "0"
    let avg = "0"
    let mn = "0"
    let mx = "0"
    for line in lines(log) {
        if starts_with(line, "latency-ubench faults=") { faults = substr(line, 22, 20) }
        if starts_with(line, "avg-cycles=") { avg = substr(line, 11, 20) }
        if starts_with(line, "min-cycles=") { mn = substr(line, 11, 20) }
        if starts_with(line, "max-cycles=") { mx = substr(line, 11, 20) }
    }
    rows = push(rows, csv_row([job, faults, avg, mn, mx]))
}
write_file("latency.csv", join(rows, "\n") + "\n")
print("extract_csv: wrote latency.csv")
"#;

/// The latency microbenchmark client: maps remote memory and times the
/// first touch of every page with `rdcycle` (Fig. 5's measurement loop).
pub fn latency_source() -> String {
    compose_benchmark(
        "latency-ubench",
        r#"
        .data
__lat_faults: .asciiz "latency-ubench faults="
__lat_avg:    .asciiz "avg-cycles="
__lat_min:    .asciiz "min-cycles="
__lat_max:    .asciiz "max-cycles="
        .text
bench_main:
        addi    sp, sp, -16
        sd      ra, 8(sp)
        li      a0, 64             # pages of remote memory
        li      a7, 2002           # MMAP_REMOTE
        ecall
        mv      s2, a0             # window base
        li      s3, 64             # pages to touch
        li      s4, 0              # total cycles
        li      s5, -1             # min
        li      s6, 0              # max
        mv      s7, s2
lat_loop:
        rdcycle t0
        ld      t1, 0(s7)          # first touch: remote page fault
        rdcycle t2
        sub     t3, t2, t0
        add     s4, s4, t3
        bgeu    t3, s5, lat_no_min
        mv      s5, t3
lat_no_min:
        bleu    t3, s6, lat_no_max
        mv      s6, t3
lat_no_max:
        li      t4, 4096
        add     s7, s7, t4
        addi    s3, s3, -1
        bnez    s3, lat_loop
        la      a0, __lat_faults
        call    print_cstr
        li      a0, 64
        call    print_u64
        la      a0, __lat_avg
        call    print_cstr
        srli    a0, s4, 6          # /64
        call    print_u64
        la      a0, __lat_min
        call    print_cstr
        mv      a0, s5
        call    print_u64
        la      a0, __lat_max
        call    print_cstr
        mv      a0, s6
        call    print_u64
        li      a0, 64             # checksum: fault count
        ld      ra, 8(sp)
        addi    sp, sp, 16
        ret
"#,
    )
}

/// The bare-metal memory server (Listing 1's `serve` binary).
pub fn serve_source() -> String {
    compose_benchmark(
        "pfa-server",
        r#"
        .text
bench_main:
        # Model the server's registration + serve loop: it would sit in a
        # NIC polling loop; here it spins a bounded number of iterations.
        li      t0, 10000
serve_loop:
        addi    t0, t0, -1
        bnez    t0, serve_loop
        li      a0, 1              # checksum: ready marker
        ret
"#,
    )
}

/// Reference serial output for `test` (stable lines only).
pub const CLIENT_REF_UARTLOG: &str = "latency-ubench faults=64\nlatency-ubench checksum: 64\n";
/// Reference for the server job.
pub const SERVER_REF_UARTLOG: &str = "pfa-server checksum: 1\n";

/// Writes the PFA workload directory.
///
/// # Errors
///
/// I/O failures.
pub fn materialize(dir: &std::path::Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir.join("src"))?;
    std::fs::create_dir_all(dir.join("pfa-test-root/bin"))?;
    std::fs::create_dir_all(dir.join("refs/latency-microbenchmark.client"))?;
    std::fs::create_dir_all(dir.join("refs/latency-microbenchmark.server"))?;
    std::fs::write(dir.join("pfa-base.json"), PFA_BASE_JSON)?;
    std::fs::write(dir.join("latency-microbenchmark.json"), LATENCY_JSON)?;
    std::fs::write(dir.join("pfa-linux.kfrag"), PFA_LINUX_KFRAG)?;
    std::fs::write(dir.join("pfa.kfrag"), PFA_KFRAG)?;
    std::fs::write(dir.join("cross-compile.ms"), CROSS_COMPILE_MS)?;
    std::fs::write(dir.join("extract_csv.ms"), EXTRACT_CSV_MS)?;
    std::fs::write(dir.join("src/latency.s"), latency_source())?;
    std::fs::write(dir.join("src/serve.s"), serve_source())?;
    std::fs::write(
        dir.join("refs/latency-microbenchmark.client/uartlog"),
        CLIENT_REF_UARTLOG,
    )?;
    std::fs::write(
        dir.join("refs/latency-microbenchmark.server/uartlog"),
        SERVER_REF_UARTLOG,
    )?;
    // A marker file in the overlay so the image visibly carries it.
    std::fs::write(
        dir.join("pfa-test-root/etc-pfa-note"),
        "pfa test root overlay\n",
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use marshal_isa::abi;
    use marshal_isa::asm::assemble;
    use marshal_sim_functional::Spike;

    #[test]
    fn specs_parse_like_listing1() {
        let (base, w) =
            marshal_config::WorkloadSpec::parse_str(PFA_BASE_JSON, "pfa-base.json").unwrap();
        assert!(w.is_empty());
        assert_eq!(base.spike.as_deref(), Some("pfa-spike"));
        assert_eq!(
            base.linux.as_ref().unwrap().source.as_deref(),
            Some("pfa-linux")
        );

        let (lat, w) =
            marshal_config::WorkloadSpec::parse_str(LATENCY_JSON, "latency.json").unwrap();
        assert!(w.is_empty());
        assert_eq!(lat.jobs.len(), 2);
        assert_eq!(lat.jobs[1].bin.as_deref(), Some("serve.mexe"));
    }

    #[test]
    fn latency_bench_runs_on_spike_golden_model() {
        let exe = assemble(&latency_source(), abi::USER_BASE).unwrap();
        let result = Spike::with_binary("pfa-spike")
            .launch_bare(&exe.to_bytes())
            .unwrap();
        assert!(result.serial.contains("latency-ubench faults=64"));
        assert!(result.serial.contains("latency-ubench checksum: 64"));
        assert_eq!(result.exit_code, 0);
    }

    #[test]
    fn server_runs_bare() {
        let exe = assemble(&serve_source(), abi::USER_BASE).unwrap();
        let result = Spike::new().launch_bare(&exe.to_bytes()).unwrap();
        assert!(result.serial.contains("pfa-server checksum: 1"));
    }
}
