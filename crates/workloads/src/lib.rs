//! # marshal-workloads
//!
//! The standard boards, base workloads, and benchmark suites that ship
//! with the FireMarshal reproduction:
//!
//! - [`board`]: the Chipyard-like board (kernel sources incl. `pfa-linux`,
//!   iceblk/icenet drivers, Buildroot and Fedora base images).
//! - [`bases`]: the built-in base workload specs (`br-base.json`,
//!   `fedora-base.json`, `bare-metal.json`).
//! - [`runtime`]: the shared guest assembly runtime (print/exit helpers)
//!   every benchmark links against.
//! - [`intspeed`]: the SPEC2017-intspeed-shaped suite — ten synthetic
//!   benchmarks whose branch/memory behaviour mimics their namesakes
//!   (§IV-B, Listing 2; SPEC itself is licensed so the programs are
//!   substitutes, see DESIGN.md).
//! - [`pfa`]: the Page Fault Accelerator case-study workloads
//!   (§IV-A, Listing 1).
//! - [`coremark`]: a CoreMark-like self-checking benchmark.
//! - [`dnn`]: an ONNX-runtime-style DNN inference workload on the Fedora
//!   base (guest-init installed dependencies).
//! - [`registry`]: one-call setup materialising everything into a workload
//!   directory and returning the board + search path.
//!
//! ## Example
//!
//! ```rust,no_run
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let setup = marshal_workloads::setup(std::path::Path::new("./marshal-workdir"))?;
//! let mut builder = marshal_core::Builder::new(
//!     setup.board,
//!     setup.search,
//!     "./marshal-workdir",
//! )?;
//! let products = builder.build("intspeed.json", &Default::default())?;
//! assert_eq!(products.jobs.len(), 10);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod bases;
pub mod board;
pub mod coremark;
pub mod dnn;
pub mod intspeed;
pub mod pfa;
pub mod registry;
pub mod runtime;

pub use registry::{setup, Setup};
