//! The SPEC2017-intspeed-shaped benchmark suite (§IV-B, Listing 2).
//!
//! SPEC is closed-source, so each benchmark is a synthetic program whose
//! *character* mimics its namesake: interpreter dispatch for perlbench,
//! pointer chasing for mcf, predictable arithmetic for x264, and so on.
//! What the case study needs — ten independent, long-running, branchy jobs
//! whose predictor sensitivity varies — is preserved (see DESIGN.md §2).
//!
//! Cross-compilation is modelled by `speckle-build.ms` (the Speckle
//! substitute): a `host-init` script that assembles each source into the
//! workload overlay, exactly where Listing 2 put Speckle's output.

use crate::runtime::compose_benchmark;

/// The ten benchmark names, in suite order.
pub const NAMES: [&str; 10] = [
    "600.perlbench_s",
    "602.gcc_s",
    "605.mcf_s",
    "620.omnetpp_s",
    "623.xalancbmk_s",
    "625.x264_s",
    "631.deepsjeng_s",
    "641.leela_s",
    "648.exchange2_s",
    "657.xz_s",
];

/// Returns `(name, full assembly source)` for every benchmark.
pub fn benchmarks() -> Vec<(&'static str, String)> {
    vec![
        (
            "600.perlbench_s",
            compose_benchmark("600.perlbench_s", PERLBENCH),
        ),
        ("602.gcc_s", compose_benchmark("602.gcc_s", GCC)),
        ("605.mcf_s", compose_benchmark("605.mcf_s", MCF)),
        ("620.omnetpp_s", compose_benchmark("620.omnetpp_s", OMNETPP)),
        (
            "623.xalancbmk_s",
            compose_benchmark("623.xalancbmk_s", XALANCBMK),
        ),
        ("625.x264_s", compose_benchmark("625.x264_s", X264)),
        (
            "631.deepsjeng_s",
            compose_benchmark("631.deepsjeng_s", DEEPSJENG),
        ),
        ("641.leela_s", compose_benchmark("641.leela_s", LEELA)),
        (
            "648.exchange2_s",
            compose_benchmark("648.exchange2_s", EXCHANGE2),
        ),
        ("657.xz_s", compose_benchmark("657.xz_s", XZ)),
    ]
}

/// Interpreter dispatch: a byte-code loop driven through a jump table —
/// indirect jumps and data-dependent handler branches, perlbench's
/// signature behaviour.
const PERLBENCH: &str = r#"
        .data
        .align  3
optable: .dword op_add, op_sub, op_xor, op_shl, op_shr, op_mul, op_store, op_load
bytecode: .space 256
memcell: .space 64
        .text
bench_main:
        # Generate the byte-code program with an LCG.
        la      t0, bytecode
        li      t1, 256
        li      t2, 12345
gen:
        li      t5, 1103515245
        mul     t2, t2, t5
        li      t6, 12345
        add     t2, t2, t6
        srli    t3, t2, 16
        andi    t3, t3, 255
        sb      t3, 0(t0)
        addi    t0, t0, 1
        addi    t1, t1, -1
        bnez    t1, gen
        # Interpret it repeatedly.
        li      s2, 150            # outer iterations
        li      s3, 0              # accumulator
outer:
        la      s4, bytecode
        li      s5, 256
dispatch:
        lbu     t0, 0(s4)
        andi    t1, t0, 7
        la      t2, optable
        slli    t3, t1, 3
        add     t2, t2, t3
        ld      t2, 0(t2)
        srli    s6, t0, 3          # operand
        jr      t2
op_add:
        add     s3, s3, s6
        j       next
op_sub:
        sub     s3, s3, s6
        j       next
op_xor:
        xor     s3, s3, s6
        j       next
op_shl:
        andi    t4, s6, 7
        sll     s3, s3, t4
        j       next
op_shr:
        andi    t4, s6, 7
        srl     s3, s3, t4
        j       next
op_mul:
        ori     t4, s6, 1
        mul     s3, s3, t4
        j       next
op_store:
        la      t4, memcell
        andi    t5, s6, 7
        slli    t5, t5, 3
        add     t4, t4, t5
        sd      s3, 0(t4)
        j       next
op_load:
        la      t4, memcell
        andi    t5, s6, 7
        slli    t5, t5, 3
        add     t4, t4, t5
        ld      t5, 0(t4)
        add     s3, s3, t5
        j       next
next:
        addi    s4, s4, 1
        addi    s5, s5, -1
        bnez    s5, dispatch
        addi    s2, s2, -1
        bnez    s2, outer
        slli    a0, s3, 32
        srli    a0, a0, 32
        ret
"#;

/// Pointer-heavy structure walking with value-dependent branches — gcc's
/// IR-traversal character.
const GCC: &str = r#"
        .data
        .align  3
nodes:  .space  8192               # 512 nodes x 16 bytes (next, value)
        .text
bench_main:
        # Link nodes in a strided permutation: next(i) = (i*167+13) % 512.
        li      t1, 0
        li      t2, 512
build:
        li      t3, 167
        mul     t4, t1, t3
        addi    t4, t4, 13
        andi    t4, t4, 511
        slli    t5, t4, 4
        la      t6, nodes
        add     t5, t6, t5
        slli    t6, t1, 4
        la      t3, nodes
        add     t6, t3, t6
        sd      t5, 0(t6)
        sw      t1, 8(t6)
        addi    t1, t1, 1
        bne     t1, t2, build
        # Walk with value-dependent branches.
        la      t0, nodes
        li      s2, 40000
        li      s3, 0
walk:
        lw      t1, 8(t0)
        andi    t2, t1, 3
        beqz    t2, w_xor
        add     s3, s3, t1
        j       w_next
w_xor:
        xor     s3, s3, t1
w_next:
        ld      t0, 0(t0)
        addi    s2, s2, -1
        bnez    s2, walk
        mv      a0, s3
        ret
"#;

/// Dependent pointer chasing over a 64 KiB permutation — far beyond the
/// 16 KiB L1, mcf's cache-miss-bound character.
const MCF: &str = r#"
        .data
        .align  3
chase:  .space  65536              # 8192 u64 slots
        .text
bench_main:
        li      t1, 0
        li      t2, 8192
mbuild:
        li      t3, 3023
        mul     t4, t1, t3
        addi    t4, t4, 7
        li      t5, 8191
        and     t4, t4, t5
        slli    t6, t1, 3
        la      t5, chase
        add     t6, t5, t6
        sd      t4, 0(t6)
        addi    t1, t1, 1
        bne     t1, t2, mbuild
        li      s2, 60000
        li      s3, 0
        li      s4, 0
mchase:
        slli    t0, s3, 3
        la      t1, chase
        add     t0, t1, t0
        ld      s3, 0(t0)
        add     s4, s4, s3
        addi    s2, s2, -1
        bnez    s2, mchase
        mv      a0, s4
        ret
"#;

/// Discrete-event-style binary heap churn — omnetpp's priority-queue
/// character (sift loops with hard-to-predict comparisons).
const OMNETPP: &str = r#"
        .data
        .align  3
heap:   .space  8200
        .text
bench_main:
        li      s2, 0              # heap size
        li      s3, 99991          # lcg state
        li      s4, 18000          # operations
        li      s5, 0              # checksum
o_loop:
        li      t0, 6364136223846793005
        mul     s3, s3, t0
        li      t0, 1442695040888963407
        add     s3, s3, t0
        srli    s6, s3, 33         # key
        li      t0, 1000
        blt     s2, t0, push
pop:
        la      t0, heap
        ld      t1, 0(t0)          # root
        add     s5, s5, t1
        addi    s2, s2, -1
        slli    t2, s2, 3
        add     t2, t0, t2
        ld      t3, 0(t2)          # last element
        sd      t3, 0(t0)
        li      t4, 0              # i = 0, sift down
sift_down:
        slli    t5, t4, 1
        addi    t5, t5, 1          # left child
        bge     t5, s2, o_next
        addi    t6, t5, 1          # right child
        bge     t6, s2, sd_useleft
        # pick larger child
        slli    a1, t5, 3
        add     a1, t0, a1
        ld      a2, 0(a1)
        slli    a3, t6, 3
        add     a3, t0, a3
        ld      a4, 0(a3)
        bgeu    a2, a4, sd_useleft
        mv      t5, t6
sd_useleft:
        slli    a1, t4, 3
        add     a1, t0, a1
        ld      a2, 0(a1)          # parent value
        slli    a3, t5, 3
        add     a3, t0, a3
        ld      a4, 0(a3)          # child value
        bgeu    a2, a4, o_next     # heap property holds
        sd      a4, 0(a1)
        sd      a2, 0(a3)
        mv      t4, t5
        j       sift_down
push:
        la      t0, heap
        slli    t1, s2, 3
        add     t1, t0, t1
        sd      s6, 0(t1)
        mv      t2, s2             # i
        addi    s2, s2, 1
sift_up:
        beqz    t2, o_next
        addi    t3, t2, -1
        srli    t3, t3, 1          # parent
        slli    t4, t3, 3
        add     t4, t0, t4
        ld      t5, 0(t4)
        slli    t6, t2, 3
        add     t6, t0, t6
        ld      a1, 0(t6)
        bgeu    t5, a1, o_next
        sd      a1, 0(t4)
        sd      t5, 0(t6)
        mv      t2, t3
        j       sift_up
o_next:
        addi    s4, s4, -1
        bnez    s4, o_loop
        mv      a0, s5
        ret
"#;

/// Byte-wise text scanning with many small classification branches —
/// xalancbmk's parsing character.
const XALANCBMK: &str = r#"
        .data
text:   .space  4096
        .text
bench_main:
        # Fill with printable pseudo-text.
        la      t0, text
        li      t1, 4096
        li      t2, 7777
xfill:
        li      t3, 1103515245
        mul     t2, t2, t3
        li      t4, 12345
        add     t2, t2, t4
        srli    t3, t2, 16
        andi    t3, t3, 95
        addi    t3, t3, 32         # ' '..~
        sb      t3, 0(t0)
        addi    t0, t0, 1
        addi    t1, t1, -1
        bnez    t1, xfill
        li      s2, 15             # passes
        li      s3, 0              # vowels
        li      s4, 0              # digits
        li      s5, 0              # words
xpass:
        la      t0, text
        li      t1, 4096
        li      s6, 0              # in-word flag
xscan:
        lbu     t2, 0(t0)
        # digit?
        li      t3, 48
        blt     t2, t3, xnotdigit
        li      t3, 58
        bge     t2, t3, xnotdigit
        addi    s4, s4, 1
xnotdigit:
        # vowel? (a e i o u lowercase)
        li      t3, 97
        beq     t2, t3, xvowel
        li      t3, 101
        beq     t2, t3, xvowel
        li      t3, 105
        beq     t2, t3, xvowel
        li      t3, 111
        beq     t2, t3, xvowel
        li      t3, 117
        beq     t2, t3, xvowel
        j       xword
xvowel:
        addi    s3, s3, 1
xword:
        # word boundary: space -> non-space
        li      t3, 32
        bne     t2, t3, xinword
        li      s6, 0
        j       xnext
xinword:
        bnez    s6, xnext
        li      s6, 1
        addi    s5, s5, 1
xnext:
        addi    t0, t0, 1
        addi    t1, t1, -1
        bnez    t1, xscan
        addi    s2, s2, -1
        bnez    s2, xpass
        slli    a0, s3, 20
        slli    t0, s4, 10
        add     a0, a0, t0
        add     a0, a0, s5
        ret
"#;

/// Regular SAD/MAC blocks over pixel buffers — x264's predictable,
/// arithmetic-dense character (the predictor-insensitive control).
const X264: &str = r#"
        .data
frame_a: .space 4096
frame_b: .space 4096
        .text
bench_main:
        # Fill both frames.
        la      t0, frame_a
        la      t1, frame_b
        li      t2, 4096
        li      t3, 5555
vfill:
        li      t4, 1103515245
        mul     t3, t3, t4
        li      t6, 12345
        add     t3, t3, t6
        srli    t4, t3, 16
        andi    t5, t4, 255
        sb      t5, 0(t0)
        srli    t4, t3, 24
        andi    t5, t4, 255
        sb      t5, 0(t1)
        addi    t0, t0, 1
        addi    t1, t1, 1
        addi    t2, t2, -1
        bnez    t2, vfill
        li      s2, 30             # passes
        li      s3, 0              # SAD accumulator
vpass:
        la      t0, frame_a
        la      t1, frame_b
        li      t2, 4096
vsad:
        lbu     t3, 0(t0)
        lbu     t4, 0(t1)
        sub     t5, t3, t4
        srai    t6, t5, 63
        xor     t5, t5, t6
        sub     t5, t5, t6         # |a-b| branchless
        mul     t5, t5, t3
        add     s3, s3, t5
        addi    t0, t0, 1
        addi    t1, t1, 1
        addi    t2, t2, -1
        bnez    t2, vsad
        addi    s2, s2, -1
        bnez    s2, vpass
        mv      a0, s3
        ret
"#;

/// Recursive game-tree search with data-dependent pruning — deepsjeng's
/// minimax character (deep call stacks, branchy).
const DEEPSJENG: &str = r#"
        .text
bench_main:
        addi    sp, sp, -16
        sd      ra, 8(sp)
        li      a0, 18             # depth
        li      a1, 77777          # state
        call    negamax
        ld      ra, 8(sp)
        addi    sp, sp, 16
        ret

# negamax(depth a0, state a1) -> score a0
negamax:
        bnez    a0, ng_inner
        andi    a0, a1, 255        # leaf: score from state
        ret
ng_inner:
        addi    sp, sp, -48
        sd      ra, 40(sp)
        sd      s2, 32(sp)
        sd      s3, 24(sp)
        sd      s4, 16(sp)
        mv      s2, a0             # depth
        mv      s3, a1             # state
        # left child
        li      t0, 6364136223846793005
        mul     a1, s3, t0
        addi    a1, a1, 1
        addi    a0, s2, -1
        call    negamax
        mv      s4, a0             # best
        # prune right subtree 1 time in 4 (state-dependent)
        andi    t0, s3, 3
        beqz    t0, ng_done
        li      t0, 2862933555777941757
        mul     a1, s3, t0
        li      t1, 3037
        add     a1, a1, t1
        addi    a0, s2, -1
        call    negamax
        blt     a0, s4, ng_done
        mv      s4, a0
ng_done:
        # negate and fold, minimax-style
        li      t0, 255
        sub     a0, t0, s4
        ld      s4, 16(sp)
        ld      s3, 24(sp)
        ld      s2, 32(sp)
        ld      ra, 40(sp)
        addi    sp, sp, 48
        ret
"#;

/// Pseudo-random playout walks on a 19x19 board — leela's Monte-Carlo
/// character (incompressible branch outcomes).
const LEELA: &str = r#"
        .data
        .align  3
visits: .space  2888               # 19*19 u64 visit counts
        .text
bench_main:
        li      s2, 9              # x
        li      s3, 9              # y
        li      s4, 40000          # steps
        li      s5, 31337          # lcg
        li      s6, 0              # checksum
l_step:
        li      t0, 6364136223846793005
        mul     s5, s5, t0
        li      t0, 1442695040888963407
        add     s5, s5, t0
        srli    t1, s5, 59         # direction bits
        andi    t1, t1, 3
        beqz    t1, l_north
        li      t2, 1
        beq     t1, t2, l_south
        li      t2, 2
        beq     t1, t2, l_east
        # west
        beqz    s2, l_mark
        addi    s2, s2, -1
        j       l_mark
l_north:
        beqz    s3, l_mark
        addi    s3, s3, -1
        j       l_mark
l_south:
        li      t2, 18
        bge     s3, t2, l_mark
        addi    s3, s3, 1
        j       l_mark
l_east:
        li      t2, 18
        bge     s2, t2, l_mark
        addi    s2, s2, 1
l_mark:
        li      t3, 19
        mul     t4, s3, t3
        add     t4, t4, s2
        slli    t4, t4, 3
        la      t5, visits
        add     t4, t5, t4
        ld      t6, 0(t4)
        addi    t6, t6, 1
        sd      t6, 0(t4)
        add     s6, s6, s2
        xor     s6, s6, s3
        addi    s4, s4, -1
        bnez    s4, l_step
        mv      a0, s6
        ret
"#;

/// Deep nested counting loops with simple guards — exchange2's extremely
/// predictable branch character.
const EXCHANGE2: &str = r#"
        .text
bench_main:
        li      s2, 0              # combinations found
        li      t0, 0              # i
e_i:
        li      t1, 0              # j
e_j:
        li      t2, 0              # k
e_k:
        li      t3, 0              # l
e_l:
        li      t4, 0              # m
e_m:
        # count tuples where no adjacent pair is equal
        beq     t0, t1, e_m_next
        beq     t1, t2, e_m_next
        beq     t2, t3, e_m_next
        beq     t3, t4, e_m_next
        addi    s2, s2, 1
e_m_next:
        addi    t4, t4, 1
        li      t5, 8
        blt     t4, t5, e_m
        addi    t3, t3, 1
        blt     t3, t5, e_l
        addi    t2, t2, 1
        blt     t2, t5, e_k
        addi    t1, t1, 1
        blt     t1, t5, e_j
        addi    t0, t0, 1
        blt     t0, t5, e_i
        mv      a0, s2
        ret
"#;

/// LZ-style longest-match scanning over an 8 KiB window — xz's
/// semi-random comparison character.
const XZ: &str = r#"
        .data
window: .space  8192
        .text
bench_main:
        # Fill the window with compressible-ish pseudo-data (low entropy).
        la      t0, window
        li      t1, 8192
        li      t2, 4242
zfill:
        li      t3, 1103515245
        mul     t2, t2, t3
        li      t4, 12345
        add     t2, t2, t4
        srli    t3, t2, 18
        andi    t3, t3, 15         # only 16 symbols: matches are common
        sb      t3, 0(t0)
        addi    t0, t0, 1
        addi    t1, t1, -1
        bnez    t1, zfill
        li      s2, 4000           # match attempts
        li      s3, 987654321      # lcg
        li      s4, 0              # total match length (checksum)
z_attempt:
        li      t0, 6364136223846793005
        mul     s3, s3, t0
        addi    s3, s3, 1
        srli    t1, s3, 40
        li      t2, 4095
        and     t1, t1, t2         # position p in [0, 4095]
        la      t3, window
        add     t3, t3, t1         # &window[p]
        addi    t4, t3, 64         # candidate start: p+64
        li      t5, 0              # best length
        li      t6, 16             # candidates to try
z_cand:
        li      a1, 0              # match length
z_cmp:
        add     a2, t3, a1
        lbu     a3, 0(a2)
        add     a2, t4, a1
        lbu     a4, 0(a2)
        bne     a3, a4, z_cmp_done
        addi    a1, a1, 1
        li      a2, 32
        blt     a1, a2, z_cmp
z_cmp_done:
        ble     a1, t5, z_cand_next
        mv      t5, a1
z_cand_next:
        addi    t4, t4, 17         # next candidate
        addi    t6, t6, -1
        bnez    t6, z_cand
        add     s4, s4, t5
        addi    s2, s2, -1
        bnez    s2, z_attempt
        mv      a0, s4
        ret
"#;

/// The Listing-2-shaped workload spec.
pub fn spec_json() -> String {
    let jobs: Vec<String> = NAMES
        .iter()
        .map(|n| {
            format!(
                r#"    {{ "name" : "{n}",
      "command": "/intspeed.sh {n} --threads 1" }}"#
            )
        })
        .collect();
    format!(
        r#"{{ "name" : "intspeed",
  "base" : "br-base.json",
  "host-init" : "speckle-build.ms intspeed ref",
  "overlay" : "overlay/intspeed/ref",
  "rootfs-size" : "3GiB",
  "outputs" : ["/output"],
  "post-run-hook" : "handle-results.ms",
  "jobs" : [
{}
  ]
}}
"#,
        jobs.join(",\n")
    )
}

/// The Speckle-substitute build script (`host-init`).
pub fn speckle_build_script() -> String {
    let mut s = String::from(
        r#"#!mscript
# speckle-build.ms <suite> <dataset> — cross-compile the suite into the
# overlay, the way Speckle drove GCC in the paper's SPEC workload.
let a = args()
let suite = a[0]
let dataset = a[1]
let root = "overlay/" + suite + "/" + dataset
print("speckle: building " + suite + " (" + dataset + " dataset)")
copy("static/intspeed.sh", root + "/intspeed.sh")
"#,
    );
    for n in NAMES {
        s.push_str(&format!(
            "assemble(\"src/{n}.s\", root + \"/intspeed/bin/{n}\")\nprint(\"speckle: built {n}\")\n"
        ));
    }
    s
}

/// The in-guest run script (`/intspeed.sh`).
pub const INTSPEED_SH: &str = r#"#!mscript
# usage: /intspeed.sh <benchmark> [--threads N]
let a = args()
let bench = a[0]
print("Running " + bench + " (ref dataset, 1 thread)")
let rc = exec("/intspeed/bin/" + bench)
write_file("/output/" + bench + ".status", "rc=" + str(rc) + "\n")
print(bench + " complete rc=" + str(rc))
"#;

/// The result-combining post-run hook (`handle-results.ms`): emits the
/// Listing 3 CSV (`name,RealTime,UserTime,KernelTime,score`).
///
/// Reference times (milliseconds of simulated time) play SPEC's reference
/// machine role; they are calibrated so the boom-gshare configuration
/// scores near 1.0.
pub fn handle_results_script() -> String {
    let mut s = String::from(
        r#"#!mscript
# handle-results.ms — combine per-job stats into results.csv (Listing 3).
fn fmt_ms(us) {
    # microseconds -> "millis.micros" fixed point string
    let whole = us / 1000
    let frac = us % 1000
    let f = str(frac)
    while len(f) < 3 { f = "0" + f }
    return str(whole) + "." + f
}
fn fmt_score(x100) {
    let f = str(x100 % 100)
    while len(f) < 2 { f = "0" + f }
    return str(x100 / 100) + "." + f
}
let refs = map()
"#,
    );
    for (name, ref_us) in REFERENCE_TIMES_US {
        s.push_str(&format!("refs[\"{name}\"] = {ref_us}\n"));
    }
    s.push_str(
        r#"let rows = ["name,RealTime,UserTime,KernelTime,score"]
for job in args() {
    if exists(job + "/stats") {
        let stat_lines = lines(read_file(job + "/stats"))
        let f = split(stat_lines[1], ",")
        let cycles = parse_int(f[0])
        let user = parse_int(f[1])
        let kernel = parse_int(f[2])
        let freq_mhz = parse_int(f[4])
        # microseconds of simulated time
        let real_us = cycles / freq_mhz
        let user_us = user / freq_mhz
        let kernel_us = kernel / freq_mhz
        # job dirs are qualified (workload.jobname): score by suffix
        let parts = split(job, ".")
        let bench = parts[len(parts) - 2] + "." + parts[len(parts) - 1]
        let ref_us = get(refs, bench, 0)
        let score = 0
        if real_us > 0 { score = ref_us * 100 / real_us }
        rows = push(rows, csv_row([bench, fmt_ms(real_us), fmt_ms(user_us), fmt_ms(kernel_us), fmt_score(score)]))
    }
}
write_file("results.csv", join(rows, "\n") + "\n")
print("handle-results: wrote results.csv (" + str(len(rows) - 1) + " benchmarks)")
"#,
    );
    s
}

/// Per-benchmark reference times in microseconds of simulated time
/// (SPEC's "reference machine"). Calibrated near the boom-gshare results
/// so Fig. 6 scores land in SPEC's typical 0.5–3 range.
pub const REFERENCE_TIMES_US: [(&str, u64); 10] = [
    ("600.perlbench_s", 1080),
    ("602.gcc_s", 420),
    ("605.mcf_s", 2600),
    ("620.omnetpp_s", 4000),
    ("623.xalancbmk_s", 2100),
    ("625.x264_s", 2700),
    ("631.deepsjeng_s", 1600),
    ("641.leela_s", 2000),
    ("648.exchange2_s", 580),
    ("657.xz_s", 2100),
];

/// Writes the whole intspeed workload directory.
///
/// # Errors
///
/// I/O failures.
pub fn materialize(dir: &std::path::Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir.join("src"))?;
    std::fs::create_dir_all(dir.join("static"))?;
    std::fs::create_dir_all(dir.join("overlay/intspeed/ref/intspeed/bin"))?;
    std::fs::write(dir.join("intspeed.json"), spec_json())?;
    std::fs::write(dir.join("speckle-build.ms"), speckle_build_script())?;
    std::fs::write(dir.join("static/intspeed.sh"), INTSPEED_SH)?;
    std::fs::write(dir.join("handle-results.ms"), handle_results_script())?;
    for (name, source) in benchmarks() {
        std::fs::write(dir.join("src").join(format!("{name}.s")), source)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use marshal_isa::abi;
    use marshal_isa::asm::assemble;
    use marshal_sim_functional::Qemu;

    #[test]
    fn all_benchmarks_assemble_and_run() {
        for (name, source) in benchmarks() {
            let exe = assemble(&source, abi::USER_BASE).unwrap_or_else(|e| panic!("{name}: {e}"));
            let result = Qemu::new()
                .launch_bare(&exe.to_bytes())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(result.exit_code, 0, "{name} serial: {}", result.serial);
            assert!(
                result.serial.contains(&format!("{name} checksum: ")),
                "{name} must print its checksum: {}",
                result.serial
            );
            assert!(
                result.instructions > 50_000,
                "{name} too short: {} instructions",
                result.instructions
            );
            assert!(
                result.instructions < 5_000_000,
                "{name} too long: {} instructions",
                result.instructions
            );
        }
    }

    #[test]
    fn checksums_deterministic() {
        for (name, source) in benchmarks().into_iter().take(3) {
            let exe = assemble(&source, abi::USER_BASE).unwrap();
            let a = Qemu::new().launch_bare(&exe.to_bytes()).unwrap();
            let b = Qemu::new().launch_bare(&exe.to_bytes()).unwrap();
            assert_eq!(a.serial, b.serial, "{name} must be deterministic");
        }
    }

    #[test]
    fn spec_matches_listing2_shape() {
        let (spec, warnings) =
            marshal_config::WorkloadSpec::parse_str(&spec_json(), "intspeed.json").unwrap();
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(spec.jobs.len(), 10);
        assert_eq!(spec.rootfs_size, Some(3 << 30));
        assert_eq!(spec.outputs, vec!["/output"]);
        assert_eq!(
            spec.jobs[0].command.as_deref(),
            Some("/intspeed.sh 600.perlbench_s --threads 1")
        );
        assert_eq!(spec.jobs[9].name, "657.xz_s");
    }

    #[test]
    fn benchmarks_have_distinct_characters() {
        // Sanity: instruction mixes must differ meaningfully; compare
        // dynamic counts between a predictable and an unpredictable bench.
        use marshal_sim_rtl::{FireSim, HardwareConfig};
        let run = |name: &str| {
            let source = benchmarks()
                .into_iter()
                .find(|(n, _)| *n == name)
                .unwrap()
                .1;
            let exe = assemble(&source, abi::USER_BASE).unwrap();
            let (_, report) = FireSim::new(HardwareConfig::boom_gshare())
                .launch_bare(&exe.to_bytes())
                .unwrap();
            report
        };
        let leela = run("641.leela_s"); // random branches
        let exchange = run("648.exchange2_s"); // predictable branches
        assert!(
            leela.counters.branch_accuracy() < exchange.counters.branch_accuracy(),
            "leela {:.4} must be harder to predict than exchange2 {:.4}",
            leela.counters.branch_accuracy(),
            exchange.counters.branch_accuracy()
        );
        let mcf = run("605.mcf_s"); // cache-hostile
        let x264 = run("625.x264_s"); // streaming
        assert!(
            mcf.dcache.miss_rate() > x264.dcache.miss_rate(),
            "mcf {:.4} must miss more than x264 {:.4}",
            mcf.dcache.miss_rate(),
            x264.dcache.miss_rate()
        );
    }
}
