//! One-call setup: materialise every bundled workload and return the board
//! plus a ready search path.

use std::path::{Path, PathBuf};

use marshal_config::SearchPath;
use marshal_core::Board;

use crate::runtime::compose_benchmark;

/// A complete environment: the board, the search path covering all bundled
/// workloads, and the directory they were materialised into.
#[derive(Debug)]
pub struct Setup {
    /// The Chipyard-like board.
    pub board: Board,
    /// Search path: built-in bases + every bundled workload directory.
    pub search: SearchPath,
    /// Root of the materialised workload sources.
    pub dir: PathBuf,
}

/// The quickstart workload: hello-world with an output file and reference.
pub const HELLO_JSON: &str = r#"{
    "name": "hello",
    "base": "br-base.json",
    "host-init": "build.ms",
    "overlay": "overlay",
    "command": "/bin/hello",
    "outputs": ["/output"],
    "testing": { "refDir": "refs" }
}
"#;

fn hello_source() -> String {
    compose_benchmark(
        "hello",
        r#"
        .data
__greeting: .asciiz "Hello from FireMarshal!\n"
__out_path: .asciiz "/output/hello.txt"
__out_body: .ascii  "greetings\n"
        .text
bench_main:
        addi    sp, sp, -16
        sd      ra, 8(sp)
        la      a0, __greeting
        call    print_cstr
        # write /output/hello.txt
        la      a0, __out_path
        li      a1, 1              # O_WRONLY
        li      a7, 1024           # OPEN
        ecall
        mv      t0, a0
        mv      a0, t0
        la      a1, __out_body
        li      a2, 10
        li      a7, 64             # WRITE
        ecall
        mv      a0, t0
        li      a7, 57             # CLOSE
        ecall
        li      a0, 42
        ld      ra, 8(sp)
        addi    sp, sp, 16
        ret
"#,
    )
}

/// Materialises the quickstart workload.
fn materialize_hello(dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir.join("src"))?;
    std::fs::create_dir_all(dir.join("overlay/bin"))?;
    std::fs::create_dir_all(dir.join("refs"))?;
    std::fs::write(dir.join("hello.json"), HELLO_JSON)?;
    std::fs::write(
        dir.join("build.ms"),
        "#!mscript\nassemble(\"src/hello.s\", \"overlay/bin/hello\")\n",
    )?;
    std::fs::write(dir.join("src/hello.s"), hello_source())?;
    std::fs::write(
        dir.join("refs/uartlog"),
        "Hello from FireMarshal!\nhello checksum: 42\n",
    )?;
    Ok(())
}

/// Materialises every bundled workload under `root/workloads/` and builds
/// the standard board + search path.
///
/// Idempotent: rewrites the same bytes on every call, so incremental
/// builds stay incremental.
///
/// # Errors
///
/// I/O failures creating the tree.
pub fn setup(root: &Path) -> std::io::Result<Setup> {
    let dir = root.join("workloads");
    let intspeed_dir = dir.join("intspeed");
    let pfa_dir = dir.join("pfa");
    let coremark_dir = dir.join("coremark");
    let dnn_dir = dir.join("onnx");
    let hello_dir = dir.join("quickstart");
    crate::intspeed::materialize(&intspeed_dir)?;
    crate::pfa::materialize(&pfa_dir)?;
    crate::coremark::materialize(&coremark_dir)?;
    crate::dnn::materialize(&dnn_dir)?;
    materialize_hello(&hello_dir)?;

    let mut search = SearchPath::new();
    for (name, text) in crate::bases::all() {
        search.add_builtin(name, text);
    }
    search.add_dir(&intspeed_dir);
    search.add_dir(&pfa_dir);
    search.add_dir(&coremark_dir);
    search.add_dir(&dnn_dir);
    search.add_dir(&hello_dir);

    Ok(Setup {
        board: crate::board::chipyard_board(),
        search,
        dir,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use marshal_core::{launch, BuildOptions, Builder};

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("marshal-registry-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn setup_materialises_everything() {
        let root = tmpdir("setup");
        let s = setup(&root).unwrap();
        assert!(s.dir.join("intspeed/intspeed.json").exists());
        assert!(s.dir.join("intspeed/src/600.perlbench_s.s").exists());
        assert!(s.dir.join("pfa/pfa-base.json").exists());
        assert!(s.dir.join("coremark/coremark.json").exists());
        assert!(s.dir.join("quickstart/hello.json").exists());
        assert!(s.search.locate("br-base.json").is_some());
        assert!(s.search.locate("intspeed.json").is_some());
        // Idempotent.
        setup(&root).unwrap();
        std::fs::remove_dir_all(root).unwrap();
    }

    #[test]
    fn hello_builds_launches_and_produces_outputs() {
        let root = tmpdir("hello");
        let s = setup(&root).unwrap();
        let mut builder = Builder::new(s.board, s.search, root.join("work")).unwrap();
        let products = builder
            .build("hello.json", &BuildOptions::default())
            .unwrap();
        assert_eq!(products.jobs.len(), 1);
        let run = launch::launch_workload(&builder, &products, &Default::default()).unwrap();
        let out = &run.jobs[0];
        assert!(
            out.serial.contains("Hello from FireMarshal!"),
            "{}",
            out.serial
        );
        assert!(out.serial.contains("hello checksum: 42"));
        assert_eq!(out.exit_code, 0);
        assert!(out.job_dir.join("uartlog").exists());
        assert!(out.job_dir.join("output/hello.txt").exists());
        std::fs::remove_dir_all(root).unwrap();
    }

    #[test]
    fn hello_test_command_passes() {
        let root = tmpdir("hellotest");
        let s = setup(&root).unwrap();
        let mut builder = Builder::new(s.board, s.search, root.join("work")).unwrap();
        let outcomes = marshal_core::test::test_workload(
            &mut builder,
            "hello.json",
            &Default::default(),
            &Default::default(),
        )
        .unwrap();
        assert!(outcomes.iter().all(|o| o.passed()), "{outcomes:?}");
        assert!(matches!(outcomes[0], marshal_core::TestOutcome::Pass));
        std::fs::remove_dir_all(root).unwrap();
    }
}
