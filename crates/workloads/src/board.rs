//! The Chipyard-like board: the reproduction of §III-A-2's board
//! requirements (Linux source, firmware, drivers, base workloads) for a
//! RocketChip-generator-style SoC.

use marshal_core::Board;
use marshal_image::FsImage;
use marshal_linux::kernel::KernelSource;

/// Builds the standard board.
///
/// Provides:
/// - the default kernel tree plus the PFA case study's `pfa-linux` tree,
/// - the `iceblk` (block device) and `icenet` (NIC) platform drivers,
/// - Buildroot and Fedora base images with working init-system layouts.
pub fn chipyard_board() -> Board {
    let mut board = Board::minimal("chipyard-rocket");
    board.kernel_sources.insert(
        "pfa-linux".to_owned(),
        KernelSource::custom("pfa-linux", "5.7.0-pfa", vec!["pfa".to_owned()]),
    );
    board.drivers = vec![
        ("iceblk".to_owned(), "iceblk-v1".to_owned()),
        ("icenet".to_owned(), "icenet-v1".to_owned()),
    ];
    board
        .distro_images
        .insert("buildroot".to_owned(), buildroot_image());
    board
        .distro_images
        .insert("fedora".to_owned(), fedora_image());
    board
}

/// The Buildroot base image: busybox-style layout with a SysV init.
fn buildroot_image() -> FsImage {
    let mut img = FsImage::new();
    let w = |img: &mut FsImage, p: &str, d: &[u8]| {
        img.write_file(p, d).expect("static path");
    };
    w(
        &mut img,
        "/etc/os-release",
        b"NAME=Buildroot\nVERSION_ID=2020.02\nID=buildroot\n",
    );
    w(&mut img, "/etc/hostname", b"buildroot");
    w(&mut img, "/etc/passwd", b"root::0:0:root:/root:/bin/sh\n");
    w(
        &mut img,
        "/etc/profile",
        b"# buildroot profile\nexport PATH=/bin:/usr/bin\n",
    );
    img.mkdir_p("/etc/init.d").expect("static path");
    img.write_exec("/etc/init.d/S01syslogd", b"#!mscript\n# start syslog\n")
        .expect("static path");
    img.write_exec("/etc/init.d/S40network", b"#!mscript\n# bring up network\n")
        .expect("static path");
    img.write_exec(
        "/bin/busybox",
        b"#!mscript\nprint(\"BusyBox v1.31 multi-call binary\")\n",
    )
    .expect("static path");
    img.symlink("/bin/sh", "busybox").expect("static path");
    for dir in [
        "/bin",
        "/usr/bin",
        "/root",
        "/tmp",
        "/output",
        "/dev",
        "/proc",
        "/sys",
        "/lib/modules",
    ] {
        img.mkdir_p(dir).expect("static path");
    }
    img
}

/// The Fedora base image: systemd layout with a package database
/// (guest-init's `install_packages` writes markers here).
fn fedora_image() -> FsImage {
    let mut img = FsImage::new();
    let w = |img: &mut FsImage, p: &str, d: &[u8]| {
        img.write_file(p, d).expect("static path");
    };
    w(
        &mut img,
        "/etc/os-release",
        b"NAME=Fedora\nVERSION_ID=31\nID=fedora\n",
    );
    w(&mut img, "/etc/hostname", b"fedora-riscv");
    w(&mut img, "/etc/passwd", b"root::0:0:root:/root:/bin/bash\n");
    img.mkdir_p("/etc/systemd/system/multi-user.target.wants")
        .expect("static path");
    w(
        &mut img,
        "/etc/systemd/system/getty.target",
        b"[Unit]\nDescription=Login Prompts\n",
    );
    img.write_exec(
        "/bin/bash",
        b"#!mscript\nprint(\"GNU bash, version 5.0\")\n",
    )
    .expect("static path");
    img.write_exec("/usr/bin/dnf", b"#!mscript\nprint(\"dnf (modelled)\")\n")
        .expect("static path");
    for dir in [
        "/bin",
        "/usr/bin",
        "/usr/share/packages",
        "/root",
        "/tmp",
        "/output",
        "/dev",
        "/proc",
        "/sys",
        "/var/log",
        "/lib/modules",
    ] {
        img.mkdir_p(dir).expect("static path");
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn board_provides_case_study_pieces() {
        let b = chipyard_board();
        assert_eq!(b.name, "chipyard-rocket");
        assert!(b
            .kernel_source(Some("pfa-linux"))
            .unwrap()
            .has_feature("pfa"));
        assert_eq!(b.drivers.len(), 2);
        let br = b.distro_image("buildroot").unwrap();
        assert!(br.exists("/etc/init.d/S01syslogd"));
        assert!(br.is_executable("/bin/sh"));
        let fedora = b.distro_image("fedora").unwrap();
        assert!(fedora.exists("/etc/systemd/system"));
        assert!(fedora.exists("/usr/share/packages"));
    }

    #[test]
    fn images_are_deterministic() {
        assert_eq!(buildroot_image().to_bytes(), buildroot_image().to_bytes());
        assert_eq!(fedora_image().to_bytes(), fedora_image().to_bytes());
    }
}
