//! The built-in base workload specs every other workload inherits from.

/// `br-base.json`: the Buildroot base (§IV-A-2: "a bare-bones Linux
/// distribution designed for embedded workloads").
pub const BR_BASE: &str = r#"{
    "name": "br-base",
    "distro": "buildroot",
    "rootfs-size": "256MiB"
}"#;

/// `fedora-base.json`: the full-featured distribution used for end-to-end
/// benchmarks (§IV-A-3).
pub const FEDORA_BASE: &str = r#"{
    "name": "fedora-base",
    "distro": "fedora",
    "rootfs-size": "2GiB"
}"#;

/// `bare-metal.json`: no kernel, no image — the workload's `bin` runs on
/// the hart directly.
pub const BARE_METAL: &str = r#"{
    "name": "bare-metal",
    "distro": "bare-metal"
}"#;

/// All `(file name, text)` pairs.
pub fn all() -> Vec<(&'static str, &'static str)> {
    vec![
        ("br-base.json", BR_BASE),
        ("fedora-base.json", FEDORA_BASE),
        ("bare-metal.json", BARE_METAL),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use marshal_config::WorkloadSpec;

    #[test]
    fn bases_parse() {
        for (name, text) in all() {
            let (spec, warnings) = WorkloadSpec::parse_str(text, name).unwrap();
            assert!(warnings.is_empty(), "{name}: {warnings:?}");
            assert!(spec.distro.is_some(), "{name} must set a distro");
            assert!(spec.base.is_none(), "{name} must be a root base");
        }
    }

    #[test]
    fn buildroot_size_parses() {
        let (spec, _) = WorkloadSpec::parse_str(BR_BASE, "br-base.json").unwrap();
        assert_eq!(spec.rootfs_size, Some(256 << 20));
    }
}
