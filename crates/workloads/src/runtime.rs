//! The shared guest assembly runtime.
//!
//! Every benchmark source is composed as `body + RUNTIME`: the body
//! defines `bench_main` (returning a checksum in `a0`); the runtime
//! provides `_start` (cycle measurement + result printing), `print_cstr`,
//! `print_u64`, and `exit`. The benchmark's stable output is its checksum
//! line; the `cycles=`/`instret=` lines are volatile across simulators and
//! stripped by `test`'s output cleaning.

/// The `_start` skeleton. Prepend a `NAME_STR` definition via
/// [`compose_benchmark`].
pub const RUNTIME: &str = r#"
# ---------------------------------------------------------------- runtime
        .text
        .global _start
_start:
        rdcycle s10
        call    bench_main
        mv      s0, a0             # checksum
        la      a0, __name_str
        call    print_cstr
        mv      a0, s0
        call    print_u64
        la      a0, __cyc_str
        call    print_cstr
        rdcycle s11
        sub     a0, s11, s10
        call    print_u64
        la      a0, __inst_str
        call    print_cstr
        rdinstret a0
        call    print_u64
        li      a0, 0
        li      a7, 93             # EXIT
        ecall

# print_cstr: print the NUL-terminated string at a0 (no newline)
print_cstr:
        mv      t0, a0
__pc_len:
        lbu     t1, 0(t0)
        beqz    t1, __pc_write
        addi    t0, t0, 1
        j       __pc_len
__pc_write:
        sub     a2, t0, a0         # length
        mv      a1, a0
        li      a0, 1              # stdout
        li      a7, 64             # WRITE
        ecall
        ret

# print_u64: print a0 in decimal followed by a newline
print_u64:
        addi    sp, sp, -48
        sd      ra, 40(sp)
        addi    t0, sp, 31        # write backwards from here
        li      t2, 10
        sb      t2, 0(t0)         # trailing newline (ASCII 10)
        li      t3, 1             # bytes written
__pu_loop:
        remu    t4, a0, t2
        divu    a0, a0, t2
        addi    t4, t4, 48        # '0'
        addi    t0, t0, -1
        sb      t4, 0(t0)
        addi    t3, t3, 1
        bnez    a0, __pu_loop
        mv      a1, t0
        mv      a2, t3
        li      a0, 1
        li      a7, 64
        ecall
        ld      ra, 40(sp)
        addi    sp, sp, 48
        ret
"#;

/// Composes a complete benchmark source: name labels + body + runtime.
///
/// The body must define `bench_main` (standard calling convention,
/// checksum returned in `a0`).
pub fn compose_benchmark(name: &str, body: &str) -> String {
    format!(
        r#"# benchmark: {name}
        .data
__name_str: .asciiz "{name} checksum: "
__cyc_str:  .asciiz "cycles="
__inst_str: .asciiz "instret="
{body}
{RUNTIME}
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use marshal_isa::abi;
    use marshal_isa::asm::assemble;
    use marshal_sim_functional::Qemu;

    #[test]
    fn runtime_prints_checksum_and_counters() {
        let src = compose_benchmark(
            "smoke",
            r#"
        .text
bench_main:
        li      a0, 424242
        ret
"#,
        );
        let exe = assemble(&src, abi::USER_BASE).expect("assemble runtime");
        let result = Qemu::new().launch_bare(&exe.to_bytes()).unwrap();
        assert!(
            result.serial.contains("smoke checksum: 424242"),
            "serial: {}",
            result.serial
        );
        assert!(result.serial.contains("cycles="));
        assert!(result.serial.contains("instret="));
        assert_eq!(result.exit_code, 0);
    }

    #[test]
    fn print_u64_handles_zero_and_large() {
        let src = compose_benchmark(
            "zero",
            r#"
        .text
bench_main:
        li      a0, 0
        ret
"#,
        );
        let exe = assemble(&src, abi::USER_BASE).unwrap();
        let result = Qemu::new().launch_bare(&exe.to_bytes()).unwrap();
        assert!(result.serial.contains("zero checksum: 0\n"));
    }
}
