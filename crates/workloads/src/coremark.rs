//! A CoreMark-like benchmark workload (§IV-B mentions CoreMark among the
//! already-ported benchmark workloads).
//!
//! Like the real CoreMark it mixes linked-list manipulation, matrix
//! arithmetic, and a CRC, and self-checks its result.

use crate::runtime::compose_benchmark;

/// The workload spec.
pub const COREMARK_JSON: &str = r#"{
    "name": "coremark",
    "base": "br-base.json",
    "host-init": "build.ms",
    "overlay": "overlay",
    "command": "/bin/coremark",
    "outputs": ["/output"],
    "testing": { "refDir": "refs" }
}
"#;

/// Host-init build script.
pub const BUILD_MS: &str = r#"#!mscript
print("coremark: building")
assemble("src/coremark.s", "overlay/bin/coremark")
"#;

/// The benchmark source.
pub fn coremark_source() -> String {
    compose_benchmark(
        "coremark",
        r#"
        .data
        .align  3
cm_list: .space 2048               # 128 list nodes x 16 bytes
cm_mat:  .space 512                # 8x8 u64 matrix
        .text
bench_main:
        # --- list phase: build and reverse a linked list repeatedly -----
        li      s2, 0              # checksum
        li      s3, 100            # list iterations
cm_list_iter:
        # build: node[i].next = node[i+1], value = i*i
        la      t0, cm_list
        li      t1, 0
        li      t2, 128
cm_build:
        addi    t3, t1, 1
        slli    t3, t3, 4
        la      t4, cm_list
        add     t3, t4, t3
        slli    t5, t1, 4
        add     t5, t4, t5
        addi    t6, t2, -1
        bne     t1, t6, cm_not_last
        li      t3, 0              # last node: null next
cm_not_last:
        sd      t3, 0(t5)
        mul     t6, t1, t1
        sd      t6, 8(t5)
        addi    t1, t1, 1
        bne     t1, t2, cm_build
        # walk and fold values
        la      t0, cm_list
cm_walk:
        ld      t1, 8(t0)
        add     s2, s2, t1
        ld      t0, 0(t0)
        bnez    t0, cm_walk
        addi    s3, s3, -1
        bnez    s3, cm_list_iter
        # --- matrix phase: 8x8 multiply-accumulate ----------------------
        la      t0, cm_mat
        li      t1, 64
        li      t2, 3
cm_mfill:
        sd      t2, 0(t0)
        addi    t0, t0, 8
        addi    t2, t2, 7
        addi    t1, t1, -1
        bnez    t1, cm_mfill
        li      s4, 40             # passes
cm_mpass:
        li      t1, 0              # row
cm_mrow:
        li      t2, 0              # col
cm_mcol:
        li      t3, 0              # k
        li      t4, 0              # acc
cm_mk:
        # acc += m[row][k] * m[k][col]
        slli    t5, t1, 3
        add     t5, t5, t3
        slli    t5, t5, 3
        la      t6, cm_mat
        add     t5, t6, t5
        ld      t5, 0(t5)
        slli    a1, t3, 3
        add     a1, a1, t2
        slli    a1, a1, 3
        add     a1, t6, a1
        ld      a1, 0(a1)
        mul     t5, t5, a1
        add     t4, t4, t5
        addi    t3, t3, 1
        li      a2, 8
        bne     t3, a2, cm_mk
        xor     s2, s2, t4
        addi    t2, t2, 1
        li      a2, 8
        bne     t2, a2, cm_mcol
        addi    t1, t1, 1
        li      a2, 8
        bne     t1, a2, cm_mrow
        addi    s4, s4, -1
        bnez    s4, cm_mpass
        # --- crc phase ---------------------------------------------------
        li      t0, 16
        mv      t1, s2
cm_crc:
        andi    t2, t1, 1
        srli    t1, t1, 1
        beqz    t2, cm_crc_next
        li      t3, 0x8408
        xor     t1, t1, t3
cm_crc_next:
        addi    t0, t0, -1
        bnez    t0, cm_crc
        # fold to a small stable checksum
        xor     a0, s2, t1
        slli    a0, a0, 40
        srli    a0, a0, 40
        ret
"#,
    )
}

/// Writes the coremark workload directory.
///
/// # Errors
///
/// I/O failures.
pub fn materialize(dir: &std::path::Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir.join("src"))?;
    std::fs::create_dir_all(dir.join("overlay/bin"))?;
    std::fs::create_dir_all(dir.join("refs"))?;
    std::fs::write(dir.join("coremark.json"), COREMARK_JSON)?;
    std::fs::write(dir.join("build.ms"), BUILD_MS)?;
    std::fs::write(dir.join("src/coremark.s"), coremark_source())?;
    std::fs::write(dir.join("refs/uartlog"), reference_uartlog())?;
    Ok(())
}

/// The reference output (the stable checksum line).
pub fn reference_uartlog() -> String {
    format!("coremark checksum: {}\n", known_checksum())
}

/// The benchmark's known-good checksum, computed by running it.
pub fn known_checksum() -> u64 {
    use marshal_isa::abi;
    use marshal_isa::asm::assemble;
    let exe = assemble(&coremark_source(), abi::USER_BASE).expect("coremark assembles");
    let result = marshal_sim_functional::Qemu::new()
        .launch_bare(&exe.to_bytes())
        .expect("coremark runs");
    let line = result
        .serial
        .lines()
        .find(|l| l.starts_with("coremark checksum: "))
        .expect("checksum line");
    line["coremark checksum: ".len()..]
        .trim()
        .parse()
        .expect("numeric checksum")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coremark_self_checks() {
        let a = known_checksum();
        let b = known_checksum();
        assert_eq!(a, b, "checksum must be deterministic");
        assert!(a > 0);
    }

    #[test]
    fn spec_parses() {
        let (spec, w) =
            marshal_config::WorkloadSpec::parse_str(COREMARK_JSON, "coremark.json").unwrap();
        assert!(w.is_empty());
        assert_eq!(spec.command.as_deref(), Some("/bin/coremark"));
        assert_eq!(spec.testing.unwrap().ref_dir.as_deref(), Some("refs"));
    }
}
