//! An ONNX-runtime-style DNN inference workload.
//!
//! §IV-B: "there are other similar benchmark workloads already available
//! including CoreMark and the ONNX-runtime deep learning framework." This
//! workload mirrors that port: a fixed-point multi-layer-perceptron
//! inference (tiled matrix-vector products + ReLU, the §IV-C class's
//! kernel), run on the full-featured Fedora base with dependencies
//! installed by `guest-init` at build time — the paper's end-to-end
//! benchmark flow.

use crate::runtime::compose_benchmark;

/// The workload spec: Fedora base + guest-init, like the paper's
/// end-to-end macro-benchmarks (§IV-A-3).
pub const DNN_JSON: &str = r#"{
    "name": "onnx-infer",
    "base": "fedora-base.json",
    "host-init": "build.ms",
    "guest-init": "install-deps.ms",
    "overlay": "overlay",
    "command": "/bin/dnn-infer",
    "outputs": ["/output"],
    "testing": { "refDir": "refs" }
}
"#;

/// Host-init: cross-compile the inference binary.
pub const BUILD_MS: &str = r#"#!mscript
print("onnx: building inference benchmark")
assemble("src/dnn-infer.s", "overlay/bin/dnn-infer")
"#;

/// Guest-init: install the runtime's dependencies with the package
/// manager, exactly once at build time.
pub const INSTALL_DEPS_MS: &str = r#"#!mscript
print("onnx: installing runtime dependencies")
install_packages("onnxruntime", "protobuf", "python3-numpy")
"#;

/// The inference program: a 3-layer fixed-point MLP over a 16-wide input.
/// Weights are LCG-generated (deterministic); activations are Q8 fixed
/// point with ReLU between layers; the checksum folds the output vector.
pub fn dnn_source() -> String {
    compose_benchmark(
        "onnx-infer",
        r#"
        .data
        .align  3
weights: .space 6144               # 3 layers x 16x16 i64 weights
acts:    .space 256                # double-buffered 16-wide activations
acts2:   .space 128
        .text
bench_main:
        # --- generate weights deterministically -------------------------
        la      t0, weights
        li      t1, 768            # 3*16*16 weights
        li      t2, 1234567
wgen:
        li      t3, 6364136223846793005
        mul     t2, t2, t3
        li      t3, 1442695040888963407
        add     t2, t2, t3
        srai    t4, t2, 56         # small signed weight in [-128, 127]
        sd      t4, 0(t0)
        addi    t0, t0, 8
        addi    t1, t1, -1
        bnez    t1, wgen
        # --- initial activations: ramp --------------------------------
        la      t0, acts
        li      t1, 0
ainit:
        slli    t2, t1, 3
        add     t2, t0, t2
        addi    t3, t1, 1
        slli    t3, t3, 4          # input pixel value
        sd      t3, 0(t2)
        addi    t1, t1, 1
        li      t4, 16
        blt     t1, t4, ainit
        # --- run many inferences (the benchmark loop) ------------------
        li      s2, 0              # checksum
        li      s9, 200            # inferences
infer:
        la      s3, acts           # in
        la      s4, acts2          # out
        li      s5, 0              # layer
layer:
        # out[j] = relu(sum_k w[layer][j][k] * in[k] >> 8)
        li      t0, 0              # j
lj:
        li      t1, 0              # k
        li      t2, 0              # acc
        # weight row base: weights + (layer*256 + j*16) * 8
        slli    t3, s5, 8
        slli    t4, t0, 4
        add     t3, t3, t4
        slli    t3, t3, 3
        la      t4, weights
        add     t3, t4, t3
lk:
        slli    t5, t1, 3
        add     t6, t3, t5         # &w[j][k]
        ld      t6, 0(t6)
        add     t5, s3, t5         # &in[k]
        ld      t5, 0(t5)
        mul     t5, t5, t6
        add     t2, t2, t5
        addi    t1, t1, 1
        li      t5, 16
        blt     t1, t5, lk
        srai    t2, t2, 8          # fixed-point rescale
        bgez    t2, relu_done      # ReLU
        li      t2, 0
relu_done:
        slli    t5, t0, 3
        add     t5, s4, t5
        sd      t2, 0(t5)
        addi    t0, t0, 1
        li      t5, 16
        blt     t0, t5, lj
        # swap buffers, next layer
        mv      t0, s3
        mv      s3, s4
        mv      s4, t0
        addi    s5, s5, 1
        li      t5, 3
        blt     s5, t5, layer
        # fold the output vector into the checksum
        li      t0, 0
fold:
        slli    t1, t0, 3
        add     t1, s3, t1
        ld      t1, 0(t1)
        add     s2, s2, t1
        xor     s2, s2, t0
        addi    t0, t0, 1
        li      t5, 16
        blt     t0, t5, fold
        addi    s9, s9, -1
        bnez    s9, infer
        slli    a0, s2, 32
        srli    a0, a0, 32
        ret
"#,
    )
}

/// The known-good checksum, computed by running the program functionally.
pub fn known_checksum() -> u64 {
    use marshal_isa::abi;
    use marshal_isa::asm::assemble;
    let exe = assemble(&dnn_source(), abi::USER_BASE).expect("dnn assembles");
    let result = marshal_sim_functional::Qemu::new()
        .launch_bare(&exe.to_bytes())
        .expect("dnn runs");
    let line = result
        .serial
        .lines()
        .find(|l| l.starts_with("onnx-infer checksum: "))
        .expect("checksum line");
    line["onnx-infer checksum: ".len()..]
        .trim()
        .parse()
        .expect("numeric checksum")
}

/// Writes the workload directory.
///
/// # Errors
///
/// I/O failures.
pub fn materialize(dir: &std::path::Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir.join("src"))?;
    std::fs::create_dir_all(dir.join("overlay/bin"))?;
    std::fs::create_dir_all(dir.join("refs"))?;
    std::fs::write(dir.join("onnx-infer.json"), DNN_JSON)?;
    std::fs::write(dir.join("build.ms"), BUILD_MS)?;
    std::fs::write(dir.join("install-deps.ms"), INSTALL_DEPS_MS)?;
    std::fs::write(dir.join("src/dnn-infer.s"), dnn_source())?;
    std::fs::write(
        dir.join("refs/uartlog"),
        format!("onnx-infer checksum: {}\n", known_checksum()),
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_inference() {
        assert_eq!(known_checksum(), known_checksum());
    }

    #[test]
    fn spec_parses_with_fedora_base() {
        let (spec, w) =
            marshal_config::WorkloadSpec::parse_str(DNN_JSON, "onnx-infer.json").unwrap();
        assert!(w.is_empty());
        assert_eq!(spec.base.as_deref(), Some("fedora-base.json"));
        assert_eq!(spec.guest_init.as_deref(), Some("install-deps.ms"));
    }
}
