//! # marshal-qcheck
//!
//! Deterministic, dependency-free randomness and a small property-test
//! harness for the FireMarshal workspace.
//!
//! The build environment is fully offline, so the workspace cannot pull
//! `proptest`/`rand` from crates.io. This crate supplies the two pieces the
//! repo actually needs:
//!
//! - [`Rng`]: a seeded splitmix64 generator with convenience samplers
//!   (ranges, byte vectors, character-class strings). Every sequence is a
//!   pure function of the seed, which is exactly what the fault-injection
//!   harness and the reproducibility story of the paper demand.
//! - [`cases`]: a property-test runner that derives one [`Rng`] per case
//!   from a fixed master seed and reports the failing case index + seed on
//!   panic, so failures replay exactly.
//!
//! ## Example
//!
//! ```rust
//! use marshal_qcheck::{cases, Rng};
//!
//! cases(64, |rng: &mut Rng| {
//!     let n = rng.range_u64(1, 1000);
//!     assert_eq!(n.to_string().parse::<u64>().unwrap(), n);
//! });
//! ```

#![warn(missing_docs)]

/// Master seed for [`cases`]. Fixed so test runs are reproducible; individual
/// cases mix in their index.
pub const MASTER_SEED: u64 = 0x05ca_1ab1_e0dd_ba11;

/// A deterministic splitmix64 pseudo-random generator.
///
/// Not cryptographic — it is a reproducibility tool: the same seed always
/// yields the same stream on every platform.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// The next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "Rng::below(0)");
        // Multiply-shift: fine for test distributions.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// A uniform value in `[lo, hi)`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// A uniform signed value in `[lo, hi)`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add(self.below(span) as i64)
    }

    /// A uniform usize in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// An arbitrary 64-bit value (full range).
    pub fn any_u64(&mut self) -> u64 {
        self.next_u64()
    }

    /// An arbitrary signed 64-bit value (full range).
    pub fn any_i64(&mut self) -> i64 {
        self.next_u64() as i64
    }

    /// A coin flip.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A single arbitrary byte.
    pub fn byte(&mut self) -> u8 {
        (self.next_u64() & 0xff) as u8
    }

    /// `len` arbitrary bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.byte()).collect()
    }

    /// A byte vector with length uniform in `[min, max)`.
    pub fn bytes_in(&mut self, min: usize, max: usize) -> Vec<u8> {
        let len = self.range_usize(min, max);
        self.bytes(len)
    }

    /// Picks a uniformly random element of a nonempty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "Rng::pick on empty slice");
        &xs[self.range_usize(0, xs.len())]
    }

    /// A string whose characters are drawn from `charset`, with length
    /// uniform in `[min, max)`.
    pub fn string_of(&mut self, charset: &str, min: usize, max: usize) -> String {
        let chars: Vec<char> = charset.chars().collect();
        let len = self.range_usize(min, max);
        (0..len).map(|_| *self.pick(&chars)).collect()
    }

    /// A lowercase `[a-z]` identifier-ish string with length in `[min, max)`.
    pub fn lowercase(&mut self, min: usize, max: usize) -> String {
        self.string_of("abcdefghijklmnopqrstuvwxyz", min, max)
    }

    /// A printable-ASCII string (space through `~`) with length in
    /// `[min, max)` — the stand-in for proptest's `\PC` regex class.
    pub fn printable(&mut self, min: usize, max: usize) -> String {
        let len = self.range_usize(min, max);
        (0..len)
            .map(|_| char::from(self.range_u64(0x20, 0x7f) as u8))
            .collect()
    }
}

/// Runs `n` property-test cases, each with its own deterministically derived
/// [`Rng`]. On panic, re-panics with the case index and seed so the failure
/// replays with `Rng::new(seed)`.
pub fn cases<F: FnMut(&mut Rng)>(n: usize, mut f: F) {
    for i in 0..n {
        // Derive a well-mixed per-case seed.
        let seed = Rng::new(MASTER_SEED ^ (i as u64).wrapping_mul(0x9e37_79b9)).next_u64();
        let mut rng = Rng::new(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng)));
        if let Err(payload) = result {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!("property failed at case {i}/{n} (replay seed {seed:#x}): {msg}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(43);
        assert_ne!(Rng::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Rng::new(7);
        for _ in 0..1000 {
            let v = rng.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let s = rng.range_i64(-5, 5);
            assert!((-5..5).contains(&s));
            let len = rng.bytes_in(0, 8).len();
            assert!(len < 8);
        }
    }

    #[test]
    fn strings_use_charset() {
        let mut rng = Rng::new(1);
        for _ in 0..100 {
            let s = rng.lowercase(1, 9);
            assert!(!s.is_empty() && s.len() < 9);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let p = rng.printable(0, 64);
            assert!(p.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn cases_reports_failing_seed() {
        let result = std::panic::catch_unwind(|| {
            cases(10, |rng| {
                // Always fails; message must carry the replay seed.
                assert!(rng.range_u64(0, 10) > 100, "impossible");
            });
        });
        let err = result.unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("replay seed"), "{msg}");
        assert!(msg.contains("case 0/10"), "{msg}");
    }

    #[test]
    fn pick_and_bool_cover_values() {
        let mut rng = Rng::new(3);
        let mut saw = [false; 3];
        let xs = [0usize, 1, 2];
        for _ in 0..200 {
            saw[*rng.pick(&xs)] = true;
        }
        assert_eq!(saw, [true; 3]);
        let mut t = false;
        let mut f = false;
        for _ in 0..64 {
            if rng.bool() {
                t = true;
            } else {
                f = true;
            }
        }
        assert!(t && f);
    }
}
