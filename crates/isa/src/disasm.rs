//! Instruction disassembly, for diagnostics and simulator trace logs.

use crate::inst::{CsrOp, Inst, MemWidth};

fn csr_name(num: u16) -> String {
    match num {
        crate::inst::csr::CYCLE => "cycle".to_owned(),
        crate::inst::csr::TIME => "time".to_owned(),
        crate::inst::csr::INSTRET => "instret".to_owned(),
        crate::inst::csr::MHARTID => "mhartid".to_owned(),
        crate::inst::csr::MSCRATCH => "mscratch".to_owned(),
        other => format!("{other:#x}"),
    }
}

fn load_mnemonic(width: MemWidth) -> &'static str {
    match width {
        MemWidth::B => "lb",
        MemWidth::H => "lh",
        MemWidth::W => "lw",
        MemWidth::D => "ld",
        MemWidth::Bu => "lbu",
        MemWidth::Hu => "lhu",
        MemWidth::Wu => "lwu",
    }
}

fn store_mnemonic(width: MemWidth) -> &'static str {
    match width {
        MemWidth::B => "sb",
        MemWidth::H => "sh",
        MemWidth::W => "sw",
        _ => "sd",
    }
}

/// Renders `inst` (located at `pc`) as assembler text.
///
/// Branch and jump targets are printed as absolute addresses.
///
/// ```rust
/// use marshal_isa::{decode::decode, disasm::disassemble};
/// let inst = decode(0x0010_0513).unwrap();
/// assert_eq!(disassemble(&inst, 0), "addi a0, zero, 1");
/// ```
pub fn disassemble(inst: &Inst, pc: u64) -> String {
    match *inst {
        Inst::Lui { rd, imm } => format!("lui {rd}, {:#x}", (imm >> 12) & 0xfffff),
        Inst::Auipc { rd, imm } => format!("auipc {rd}, {:#x}", (imm >> 12) & 0xfffff),
        Inst::Jal { rd, offset } => {
            format!("jal {rd}, {:#x}", pc.wrapping_add(offset as u64))
        }
        Inst::Jalr { rd, rs1, offset } => format!("jalr {rd}, {offset}({rs1})"),
        Inst::Branch {
            cond,
            rs1,
            rs2,
            offset,
        } => format!(
            "{} {rs1}, {rs2}, {:#x}",
            cond.mnemonic(),
            pc.wrapping_add(offset as u64)
        ),
        Inst::Load {
            width,
            rd,
            rs1,
            offset,
        } => format!("{} {rd}, {offset}({rs1})", load_mnemonic(width)),
        Inst::Store {
            width,
            rs2,
            rs1,
            offset,
        } => format!("{} {rs2}, {offset}({rs1})", store_mnemonic(width)),
        Inst::AluImm { op, rd, rs1, imm } => {
            format!("{} {rd}, {rs1}, {imm}", op.mnemonic())
        }
        Inst::Alu { op, rd, rs1, rs2 } => {
            format!("{} {rd}, {rs1}, {rs2}", op.mnemonic())
        }
        Inst::Fence => "fence".to_owned(),
        Inst::Ecall => "ecall".to_owned(),
        Inst::Ebreak => "ebreak".to_owned(),
        Inst::Csr { op, rd, rs1, csr } => {
            let m = match op {
                CsrOp::Rw => "csrrw",
                CsrOp::Rs => "csrrs",
                CsrOp::Rc => "csrrc",
            };
            format!("{m} {rd}, {}, {rs1}", csr_name(csr))
        }
        Inst::CsrImm { op, rd, zimm, csr } => {
            let m = match op {
                CsrOp::Rw => "csrrwi",
                CsrOp::Rs => "csrrsi",
                CsrOp::Rc => "csrrci",
            };
            format!("{m} {rd}, {}, {zimm}", csr_name(csr))
        }
    }
}

/// Disassembles raw code bytes starting at `base`, one line per word.
pub fn disassemble_bytes(code: &[u8], base: u64) -> Vec<String> {
    code.chunks_exact(4)
        .enumerate()
        .map(|(i, w)| {
            let pc = base + 4 * i as u64;
            let word = u32::from_le_bytes([w[0], w[1], w[2], w[3]]);
            match crate::decode::decode(word) {
                Ok(inst) => format!("{pc:#10x}: {}", disassemble(&inst, pc)),
                Err(_) => format!("{pc:#10x}: .word {word:#010x}"),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn disassemble_roundtrip_text() {
        // Assemble, disassemble, re-assemble: the two binaries must match.
        let src = r#"
_start:
        addi    sp, sp, -16
        sd      ra, 8(sp)
        li      a0, 3
        mul     a0, a0, a0
        beqz    a0, _start
        ecall
"#;
        let exe = assemble(src, 0x1_0000).unwrap();
        let code = &exe.segments()[0].data;
        let lines = disassemble_bytes(code, 0x1_0000);
        assert_eq!(lines.len(), code.len() / 4);
        // Re-assemble each disassembled instruction in place and compare.
        for (i, line) in lines.iter().enumerate() {
            let text = line.split(": ").nth(1).unwrap();
            let pc = 0x1_0000 + 4 * i as u64;
            // Branch targets print as absolute hex, which the assembler
            // accepts as immediates relative to nothing — so only verify
            // non-control-flow lines byte-for-byte.
            if text.starts_with('b') || text.starts_with('j') {
                continue;
            }
            let re = assemble(&format!("{text}\n"), pc).unwrap();
            assert_eq!(
                re.segments()[0].data,
                code[4 * i..4 * i + 4].to_vec(),
                "line {i}: {text}"
            );
        }
    }

    #[test]
    fn unknown_words_render_as_data() {
        let lines = disassemble_bytes(&[0xff, 0xff, 0xff, 0xff], 0);
        assert!(lines[0].contains(".word"));
    }
}
