//! `MEXE` — the deterministic executable object format.
//!
//! A tiny ELF-like container: entry point, loadable segments, and a symbol
//! table. Serialisation is byte-stable: the same program always produces the
//! same bytes, which is what makes FireMarshal artifacts content-addressable
//! and reproducible.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   4  b"MEXE"
//! version u32
//! entry   u64
//! nseg    u32
//! nsym    u32
//! per segment: vaddr u64, len u64, data [len]
//! per symbol:  name_len u32, name [..], value u64   (sorted by name)
//! ```

use std::collections::BTreeMap;

use crate::Trap;

/// Format magic bytes.
pub const MAGIC: &[u8; 4] = b"MEXE";
/// Current format version.
pub const VERSION: u32 = 1;

/// Error parsing a `MEXE` image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MexeError {
    /// File shorter than its headers claim.
    Truncated,
    /// Magic bytes do not match.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Symbol name is not valid UTF-8.
    BadSymbolName,
}

impl std::fmt::Display for MexeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MexeError::Truncated => write!(f, "truncated mexe image"),
            MexeError::BadMagic => write!(f, "bad mexe magic"),
            MexeError::BadVersion(v) => write!(f, "unsupported mexe version {v}"),
            MexeError::BadSymbolName => write!(f, "symbol name is not valid utf-8"),
        }
    }
}

impl std::error::Error for MexeError {}

/// A loadable segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Virtual load address.
    pub vaddr: u64,
    /// Raw bytes to load.
    pub data: Vec<u8>,
}

/// An executable image: entry point, segments, and symbols.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MexeFile {
    entry: u64,
    segments: Vec<Segment>,
    symbols: BTreeMap<String, u64>,
}

impl MexeFile {
    /// Creates an image with the given entry point and no segments.
    pub fn new(entry: u64) -> MexeFile {
        MexeFile {
            entry,
            segments: Vec::new(),
            symbols: BTreeMap::new(),
        }
    }

    /// The program entry point.
    pub fn entry(&self) -> u64 {
        self.entry
    }

    /// The loadable segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// The symbol table (sorted by name).
    pub fn symbols(&self) -> &BTreeMap<String, u64> {
        &self.symbols
    }

    /// Looks up a symbol value by name.
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }

    /// Appends a loadable segment.
    pub fn push_segment(&mut self, vaddr: u64, data: Vec<u8>) {
        self.segments.push(Segment { vaddr, data });
    }

    /// Defines (or redefines) a symbol.
    pub fn define_symbol(&mut self, name: impl Into<String>, value: u64) {
        self.symbols.insert(name.into(), value);
    }

    /// Total bytes of loadable data across all segments.
    pub fn load_size(&self) -> usize {
        self.segments.iter().map(|s| s.data.len()).sum()
    }

    /// Copies every segment into `mem`.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] if any segment falls outside the memory range.
    pub fn load_into<M: crate::mem::MemWrite>(&self, mem: &mut M) -> Result<(), Trap> {
        for seg in &self.segments {
            mem.write_bytes(seg.vaddr, &seg.data)?;
        }
        Ok(())
    }

    /// Serialises to the canonical byte representation.
    ///
    /// The output is deterministic: identical images yield identical bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.load_size());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.entry.to_le_bytes());
        out.extend_from_slice(&(self.segments.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.symbols.len() as u32).to_le_bytes());
        for seg in &self.segments {
            out.extend_from_slice(&seg.vaddr.to_le_bytes());
            out.extend_from_slice(&(seg.data.len() as u64).to_le_bytes());
            out.extend_from_slice(&seg.data);
        }
        for (name, value) in &self.symbols {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&value.to_le_bytes());
        }
        out
    }

    /// Parses the canonical byte representation.
    ///
    /// # Errors
    ///
    /// Returns [`MexeError`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<MexeFile, MexeError> {
        let mut cur = Cursor { bytes, pos: 0 };
        if cur.take(4)? != MAGIC {
            return Err(MexeError::BadMagic);
        }
        let version = cur.u32()?;
        if version != VERSION {
            return Err(MexeError::BadVersion(version));
        }
        let entry = cur.u64()?;
        let nseg = cur.u32()? as usize;
        let nsym = cur.u32()? as usize;
        let mut file = MexeFile::new(entry);
        for _ in 0..nseg {
            let vaddr = cur.u64()?;
            let len = cur.u64()? as usize;
            let data = cur.take(len)?.to_vec();
            file.push_segment(vaddr, data);
        }
        for _ in 0..nsym {
            let name_len = cur.u32()? as usize;
            let name = std::str::from_utf8(cur.take(name_len)?)
                .map_err(|_| MexeError::BadSymbolName)?
                .to_owned();
            let value = cur.u64()?;
            file.symbols.insert(name, value);
        }
        Ok(file)
    }

    /// Whether `bytes` start with the `MEXE` magic.
    pub fn sniff(bytes: &[u8]) -> bool {
        bytes.len() >= 4 && &bytes[..4] == MAGIC
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], MexeError> {
        if self.pos + n > self.bytes.len() {
            return Err(MexeError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, MexeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, MexeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::FlatMemory;

    fn sample() -> MexeFile {
        let mut f = MexeFile::new(0x1_0000);
        f.push_segment(0x1_0000, vec![1, 2, 3, 4]);
        f.push_segment(0x2_0000, vec![9; 100]);
        f.define_symbol("_start", 0x1_0000);
        f.define_symbol("data", 0x2_0000);
        f
    }

    #[test]
    fn roundtrip() {
        let f = sample();
        let bytes = f.to_bytes();
        let g = MexeFile::from_bytes(&bytes).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn deterministic_bytes() {
        assert_eq!(sample().to_bytes(), sample().to_bytes());
    }

    #[test]
    fn symbol_order_does_not_matter() {
        let mut a = MexeFile::new(0);
        a.define_symbol("b", 2);
        a.define_symbol("a", 1);
        let mut b = MexeFile::new(0);
        b.define_symbol("a", 1);
        b.define_symbol("b", 2);
        assert_eq!(a.to_bytes(), b.to_bytes());
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(MexeFile::from_bytes(b"nope"), Err(MexeError::BadMagic));
        assert_eq!(MexeFile::from_bytes(b"MEX"), Err(MexeError::Truncated));
        let mut bytes = sample().to_bytes();
        bytes.truncate(bytes.len() - 1);
        assert_eq!(MexeFile::from_bytes(&bytes), Err(MexeError::Truncated));
        let mut bad_ver = sample().to_bytes();
        bad_ver[4] = 99;
        assert_eq!(
            MexeFile::from_bytes(&bad_ver),
            Err(MexeError::BadVersion(99))
        );
    }

    #[test]
    fn load_into_memory() {
        let f = sample();
        let mut mem = FlatMemory::new(1 << 20);
        f.load_into(&mut mem).unwrap();
        assert_eq!(mem.read_bytes(0x1_0000, 4).unwrap(), &[1, 2, 3, 4]);
        assert_eq!(mem.read_bytes(0x2_0000, 3).unwrap(), &[9, 9, 9]);
    }

    #[test]
    fn sniff_magic() {
        assert!(MexeFile::sniff(&sample().to_bytes()));
        assert!(!MexeFile::sniff(b"#!mscript"));
    }
}
