//! Instruction and register definitions for the RV64IM subset.
//!
//! The instruction enum mirrors the base RV64I integer ISA plus the M
//! (multiply/divide) extension and the Zicsr CSR instructions — enough to
//! express real benchmark kernels with authentic encodings.

use std::fmt;

/// An architectural integer register (`x0`–`x31`).
///
/// Constructed via [`Reg::new`] (validated) or the ABI-name constants
/// (`Reg::A0`, `Reg::SP`, ...).
///
/// ```rust
/// use marshal_isa::inst::Reg;
/// assert_eq!(Reg::new(10).unwrap(), Reg::A0);
/// assert_eq!(Reg::A0.to_string(), "a0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// The hard-wired zero register `x0`.
    pub const ZERO: Reg = Reg(0);
    /// Return address `x1`.
    pub const RA: Reg = Reg(1);
    /// Stack pointer `x2`.
    pub const SP: Reg = Reg(2);
    /// Global pointer `x3`.
    pub const GP: Reg = Reg(3);
    /// Thread pointer `x4`.
    pub const TP: Reg = Reg(4);
    /// Temporary `x5`.
    pub const T0: Reg = Reg(5);
    /// Temporary `x6`.
    pub const T1: Reg = Reg(6);
    /// Temporary `x7`.
    pub const T2: Reg = Reg(7);
    /// Saved register / frame pointer `x8`.
    pub const S0: Reg = Reg(8);
    /// Saved register `x9`.
    pub const S1: Reg = Reg(9);
    /// Argument/return `x10`.
    pub const A0: Reg = Reg(10);
    /// Argument/return `x11`.
    pub const A1: Reg = Reg(11);
    /// Argument `x12`.
    pub const A2: Reg = Reg(12);
    /// Argument `x13`.
    pub const A3: Reg = Reg(13);
    /// Argument `x14`.
    pub const A4: Reg = Reg(14);
    /// Argument `x15`.
    pub const A5: Reg = Reg(15);
    /// Argument `x16`.
    pub const A6: Reg = Reg(16);
    /// Argument `x17` (syscall number by convention).
    pub const A7: Reg = Reg(17);
    /// Saved register `x18`.
    pub const S2: Reg = Reg(18);
    /// Saved register `x19`.
    pub const S3: Reg = Reg(19);
    /// Saved register `x20`.
    pub const S4: Reg = Reg(20);
    /// Saved register `x21`.
    pub const S5: Reg = Reg(21);
    /// Saved register `x22`.
    pub const S6: Reg = Reg(22);
    /// Saved register `x23`.
    pub const S7: Reg = Reg(23);
    /// Saved register `x24`.
    pub const S8: Reg = Reg(24);
    /// Saved register `x25`.
    pub const S9: Reg = Reg(25);
    /// Saved register `x26`.
    pub const S10: Reg = Reg(26);
    /// Saved register `x27`.
    pub const S11: Reg = Reg(27);
    /// Temporary `x28`.
    pub const T3: Reg = Reg(28);
    /// Temporary `x29`.
    pub const T4: Reg = Reg(29);
    /// Temporary `x30`.
    pub const T5: Reg = Reg(30);
    /// Temporary `x31`.
    pub const T6: Reg = Reg(31);

    /// Creates a register from its index, returning `None` when out of range.
    pub fn new(index: u8) -> Option<Reg> {
        if index < 32 {
            Some(Reg(index))
        } else {
            None
        }
    }

    /// Creates a register from the low five bits of `index`.
    ///
    /// Used by the decoder, where the field width already guarantees range.
    pub fn from_field(index: u32) -> Reg {
        Reg((index & 0x1f) as u8)
    }

    /// The register index (0–31).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Parses an ABI name (`a0`), numeric name (`x10`), or alias (`fp`).
    pub fn parse(name: &str) -> Option<Reg> {
        let abi = [
            "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3",
            "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
            "t3", "t4", "t5", "t6",
        ];
        if let Some(pos) = abi.iter().position(|&n| n == name) {
            return Reg::new(pos as u8);
        }
        if name == "fp" {
            return Some(Reg::S0);
        }
        if let Some(num) = name.strip_prefix('x') {
            if let Ok(n) = num.parse::<u8>() {
                return Reg::new(n);
            }
        }
        None
    }

    /// The canonical ABI name of this register.
    pub fn abi_name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3",
            "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
            "t3", "t4", "t5", "t6",
        ];
        NAMES[self.0 as usize]
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

/// Comparison condition for conditional branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// `beq`: equal.
    Eq,
    /// `bne`: not equal.
    Ne,
    /// `blt`: signed less-than.
    Lt,
    /// `bge`: signed greater-or-equal.
    Ge,
    /// `bltu`: unsigned less-than.
    Ltu,
    /// `bgeu`: unsigned greater-or-equal.
    Geu,
}

impl BranchCond {
    /// The `funct3` field encoding for this condition.
    pub fn funct3(self) -> u32 {
        match self {
            BranchCond::Eq => 0b000,
            BranchCond::Ne => 0b001,
            BranchCond::Lt => 0b100,
            BranchCond::Ge => 0b101,
            BranchCond::Ltu => 0b110,
            BranchCond::Geu => 0b111,
        }
    }

    /// The mnemonic, e.g. `beq`.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Ge => "bge",
            BranchCond::Ltu => "bltu",
            BranchCond::Geu => "bgeu",
        }
    }

    /// Evaluates the condition on two operand values.
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => (a as i64) < (b as i64),
            BranchCond::Ge => (a as i64) >= (b as i64),
            BranchCond::Ltu => a < b,
            BranchCond::Geu => a >= b,
        }
    }
}

/// Width and signedness of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// `lb`/`sb`: signed byte.
    B,
    /// `lh`/`sh`: signed halfword.
    H,
    /// `lw`/`sw`: signed word.
    W,
    /// `ld`/`sd`: doubleword.
    D,
    /// `lbu`: unsigned byte (loads only).
    Bu,
    /// `lhu`: unsigned halfword (loads only).
    Hu,
    /// `lwu`: unsigned word (loads only).
    Wu,
}

impl MemWidth {
    /// Number of bytes accessed.
    pub fn bytes(self) -> usize {
        match self {
            MemWidth::B | MemWidth::Bu => 1,
            MemWidth::H | MemWidth::Hu => 2,
            MemWidth::W | MemWidth::Wu => 4,
            MemWidth::D => 8,
        }
    }

    /// The `funct3` field encoding (load flavour).
    pub fn load_funct3(self) -> u32 {
        match self {
            MemWidth::B => 0b000,
            MemWidth::H => 0b001,
            MemWidth::W => 0b010,
            MemWidth::D => 0b011,
            MemWidth::Bu => 0b100,
            MemWidth::Hu => 0b101,
            MemWidth::Wu => 0b110,
        }
    }
}

/// Register-register ALU operation (the `OP`/`OP-32` opcodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
    // RV64 word forms
    Addw,
    Subw,
    Sllw,
    Srlw,
    Sraw,
    // M extension
    Mul,
    Mulh,
    Mulhsu,
    Mulhu,
    Div,
    Divu,
    Rem,
    Remu,
    Mulw,
    Divw,
    Divuw,
    Remw,
    Remuw,
}

impl AluOp {
    /// Whether the operation is from the M extension (multiply/divide).
    pub fn is_muldiv(self) -> bool {
        matches!(
            self,
            AluOp::Mul
                | AluOp::Mulh
                | AluOp::Mulhsu
                | AluOp::Mulhu
                | AluOp::Div
                | AluOp::Divu
                | AluOp::Rem
                | AluOp::Remu
                | AluOp::Mulw
                | AluOp::Divw
                | AluOp::Divuw
                | AluOp::Remw
                | AluOp::Remuw
        )
    }

    /// Whether the operation is a divide or remainder (long latency).
    pub fn is_div(self) -> bool {
        matches!(
            self,
            AluOp::Div
                | AluOp::Divu
                | AluOp::Rem
                | AluOp::Remu
                | AluOp::Divw
                | AluOp::Divuw
                | AluOp::Remw
                | AluOp::Remuw
        )
    }

    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Sll => "sll",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Xor => "xor",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Or => "or",
            AluOp::And => "and",
            AluOp::Addw => "addw",
            AluOp::Subw => "subw",
            AluOp::Sllw => "sllw",
            AluOp::Srlw => "srlw",
            AluOp::Sraw => "sraw",
            AluOp::Mul => "mul",
            AluOp::Mulh => "mulh",
            AluOp::Mulhsu => "mulhsu",
            AluOp::Mulhu => "mulhu",
            AluOp::Div => "div",
            AluOp::Divu => "divu",
            AluOp::Rem => "rem",
            AluOp::Remu => "remu",
            AluOp::Mulw => "mulw",
            AluOp::Divw => "divw",
            AluOp::Divuw => "divuw",
            AluOp::Remw => "remw",
            AluOp::Remuw => "remuw",
        }
    }
}

/// Immediate ALU operation (the `OP-IMM`/`OP-IMM-32` opcodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AluImmOp {
    Addi,
    Slti,
    Sltiu,
    Xori,
    Ori,
    Andi,
    Slli,
    Srli,
    Srai,
    Addiw,
    Slliw,
    Srliw,
    Sraiw,
}

impl AluImmOp {
    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluImmOp::Addi => "addi",
            AluImmOp::Slti => "slti",
            AluImmOp::Sltiu => "sltiu",
            AluImmOp::Xori => "xori",
            AluImmOp::Ori => "ori",
            AluImmOp::Andi => "andi",
            AluImmOp::Slli => "slli",
            AluImmOp::Srli => "srli",
            AluImmOp::Srai => "srai",
            AluImmOp::Addiw => "addiw",
            AluImmOp::Slliw => "slliw",
            AluImmOp::Srliw => "srliw",
            AluImmOp::Sraiw => "sraiw",
        }
    }

    /// Whether the immediate is a shift amount (6-bit) rather than a 12-bit value.
    pub fn is_shift(self) -> bool {
        matches!(
            self,
            AluImmOp::Slli
                | AluImmOp::Srli
                | AluImmOp::Srai
                | AluImmOp::Slliw
                | AluImmOp::Srliw
                | AluImmOp::Sraiw
        )
    }
}

/// CSR access operation (Zicsr).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum CsrOp {
    Rw,
    Rs,
    Rc,
}

impl CsrOp {
    /// The `funct3` encoding (register-source form).
    pub fn funct3(self) -> u32 {
        match self {
            CsrOp::Rw => 0b001,
            CsrOp::Rs => 0b010,
            CsrOp::Rc => 0b011,
        }
    }
}

/// A decoded RV64IM instruction.
///
/// Immediates are stored as sign-extended `i64` semantic values (byte offsets
/// for branches/jumps, not raw encoded fields).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    /// `lui rd, imm20` — load upper immediate (`imm` is the full shifted value).
    Lui {
        /// Destination register.
        rd: Reg,
        /// The full (already shifted) immediate value.
        imm: i64,
    },
    /// `auipc rd, imm20` — add upper immediate to PC.
    Auipc {
        /// Destination register.
        rd: Reg,
        /// The full (already shifted) immediate value.
        imm: i64,
    },
    /// `jal rd, offset` — jump and link (PC-relative byte offset).
    Jal {
        /// Link register (receives PC+4).
        rd: Reg,
        /// PC-relative byte offset of the target.
        offset: i64,
    },
    /// `jalr rd, rs1, offset` — indirect jump and link.
    Jalr {
        /// Link register (receives PC+4).
        rd: Reg,
        /// Base register holding the target address.
        rs1: Reg,
        /// Byte offset added to the base.
        offset: i64,
    },
    /// Conditional branch (PC-relative byte offset).
    Branch {
        /// Comparison condition.
        cond: BranchCond,
        /// First source operand.
        rs1: Reg,
        /// Second source operand.
        rs2: Reg,
        /// PC-relative byte offset of the target.
        offset: i64,
    },
    /// Load from memory.
    Load {
        /// Access width and sign extension.
        width: MemWidth,
        /// Destination register.
        rd: Reg,
        /// Base address register.
        rs1: Reg,
        /// Byte offset from the base.
        offset: i64,
    },
    /// Store to memory. `width` must be one of `B`/`H`/`W`/`D`.
    Store {
        /// Access width.
        width: MemWidth,
        /// Source register holding the value to store.
        rs2: Reg,
        /// Base address register.
        rs1: Reg,
        /// Byte offset from the base.
        offset: i64,
    },
    /// Register-immediate ALU operation.
    AluImm {
        /// The operation.
        op: AluImmOp,
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// Sign-extended immediate (shift amount for shift ops).
        imm: i64,
    },
    /// Register-register ALU operation.
    Alu {
        /// The operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Second source register.
        rs2: Reg,
    },
    /// `fence` — memory ordering (no-op in this model).
    Fence,
    /// `ecall` — environment call.
    Ecall,
    /// `ebreak` — breakpoint.
    Ebreak,
    /// CSR register operation (`csrrw`/`csrrs`/`csrrc`).
    Csr {
        /// Read-write/set/clear flavour.
        op: CsrOp,
        /// Destination register (receives the old CSR value).
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// CSR number.
        csr: u16,
    },
    /// CSR immediate operation (`csrrwi`/`csrrsi`/`csrrci`), `zimm` in 0..32.
    CsrImm {
        /// Read-write/set/clear flavour.
        op: CsrOp,
        /// Destination register (receives the old CSR value).
        rd: Reg,
        /// 5-bit zero-extended immediate source.
        zimm: u8,
        /// CSR number.
        csr: u16,
    },
}

impl Inst {
    /// True when this instruction may redirect control flow.
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Inst::Jal { .. } | Inst::Jalr { .. } | Inst::Branch { .. }
        )
    }

    /// True for loads and stores.
    pub fn is_mem(&self) -> bool {
        matches!(self, Inst::Load { .. } | Inst::Store { .. })
    }
}

/// Well-known CSR numbers used by this model.
pub mod csr {
    /// Cycle counter (read-only shadow).
    pub const CYCLE: u16 = 0xC00;
    /// Wall-clock time counter (cycles in this model).
    pub const TIME: u16 = 0xC01;
    /// Retired-instruction counter.
    pub const INSTRET: u16 = 0xC02;
    /// Hart (core) ID.
    pub const MHARTID: u16 = 0xF14;
    /// Machine scratch register.
    pub const MSCRATCH: u16 = 0x340;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_parse_abi_and_numeric() {
        assert_eq!(Reg::parse("a0"), Some(Reg::A0));
        assert_eq!(Reg::parse("x10"), Some(Reg::A0));
        assert_eq!(Reg::parse("zero"), Some(Reg::ZERO));
        assert_eq!(Reg::parse("fp"), Some(Reg::S0));
        assert_eq!(Reg::parse("x32"), None);
        assert_eq!(Reg::parse("q7"), None);
    }

    #[test]
    fn reg_roundtrip_names() {
        for i in 0..32u8 {
            let r = Reg::new(i).unwrap();
            assert_eq!(Reg::parse(r.abi_name()), Some(r));
            assert_eq!(Reg::parse(&format!("x{i}")), Some(r));
        }
    }

    #[test]
    fn reg_new_bounds() {
        assert!(Reg::new(31).is_some());
        assert!(Reg::new(32).is_none());
    }

    #[test]
    fn branch_cond_eval() {
        let neg1 = (-1i64) as u64;
        assert!(BranchCond::Eq.eval(5, 5));
        assert!(!BranchCond::Eq.eval(5, 6));
        assert!(BranchCond::Ne.eval(5, 6));
        assert!(BranchCond::Lt.eval(neg1, 0)); // signed: -1 < 0
        assert!(!BranchCond::Ltu.eval(neg1, 0)); // unsigned: max > 0
        assert!(BranchCond::Ge.eval(0, neg1));
        assert!(BranchCond::Geu.eval(neg1, 0));
    }

    #[test]
    fn mem_width_bytes() {
        assert_eq!(MemWidth::B.bytes(), 1);
        assert_eq!(MemWidth::Hu.bytes(), 2);
        assert_eq!(MemWidth::Wu.bytes(), 4);
        assert_eq!(MemWidth::D.bytes(), 8);
    }

    #[test]
    fn alu_op_classification() {
        assert!(AluOp::Mul.is_muldiv());
        assert!(AluOp::Divw.is_div());
        assert!(!AluOp::Add.is_muldiv());
        assert!(!AluOp::Mul.is_div());
    }

    #[test]
    fn inst_classification() {
        let b = Inst::Branch {
            cond: BranchCond::Eq,
            rs1: Reg::A0,
            rs2: Reg::ZERO,
            offset: 8,
        };
        assert!(b.is_control_flow());
        assert!(!b.is_mem());
        let l = Inst::Load {
            width: MemWidth::D,
            rd: Reg::A0,
            rs1: Reg::SP,
            offset: 0,
        };
        assert!(l.is_mem());
    }
}
