//! Binary instruction encoding.
//!
//! Produces authentic 32-bit RISC-V machine words for every [`Inst`]. The
//! encodings follow the RISC-V unprivileged specification formats
//! (R/I/S/B/U/J), so the output of the assembler is real RV64IM machine code.

use crate::inst::{AluImmOp, AluOp, Inst, MemWidth, Reg};

/// Error produced when an instruction's operands cannot be represented in
/// the fixed-width encoding (e.g. an out-of-range immediate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodeError {
    message: String,
}

impl EncodeError {
    fn new(message: impl Into<String>) -> EncodeError {
        EncodeError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "encode error: {}", self.message)
    }
}

impl std::error::Error for EncodeError {}

const OPC_LUI: u32 = 0b0110111;
const OPC_AUIPC: u32 = 0b0010111;
const OPC_JAL: u32 = 0b1101111;
const OPC_JALR: u32 = 0b1100111;
const OPC_BRANCH: u32 = 0b1100011;
const OPC_LOAD: u32 = 0b0000011;
const OPC_STORE: u32 = 0b0100011;
const OPC_OP_IMM: u32 = 0b0010011;
const OPC_OP_IMM_32: u32 = 0b0011011;
const OPC_OP: u32 = 0b0110011;
const OPC_OP_32: u32 = 0b0111011;
const OPC_MISC_MEM: u32 = 0b0001111;
const OPC_SYSTEM: u32 = 0b1110011;

fn rd_f(r: Reg) -> u32 {
    (r.index() as u32) << 7
}

fn rs1_f(r: Reg) -> u32 {
    (r.index() as u32) << 15
}

fn rs2_f(r: Reg) -> u32 {
    (r.index() as u32) << 20
}

fn funct3(v: u32) -> u32 {
    v << 12
}

fn check_imm(imm: i64, bits: u32, what: &str) -> Result<u32, EncodeError> {
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    if imm < min || imm > max {
        return Err(EncodeError::new(format!(
            "{what} immediate {imm} out of range [{min}, {max}]"
        )));
    }
    Ok((imm as u32) & (((1u64 << bits) - 1) as u32))
}

fn i_type(opcode: u32, f3: u32, rd: Reg, rs1: Reg, imm: i64) -> Result<u32, EncodeError> {
    let imm12 = check_imm(imm, 12, "I-type")?;
    Ok(opcode | rd_f(rd) | funct3(f3) | rs1_f(rs1) | (imm12 << 20))
}

fn s_type(opcode: u32, f3: u32, rs1: Reg, rs2: Reg, imm: i64) -> Result<u32, EncodeError> {
    let imm12 = check_imm(imm, 12, "S-type")?;
    let lo = imm12 & 0x1f;
    let hi = (imm12 >> 5) & 0x7f;
    Ok(opcode | (lo << 7) | funct3(f3) | rs1_f(rs1) | rs2_f(rs2) | (hi << 25))
}

fn b_type(opcode: u32, f3: u32, rs1: Reg, rs2: Reg, offset: i64) -> Result<u32, EncodeError> {
    if offset % 2 != 0 {
        return Err(EncodeError::new(format!(
            "branch offset {offset} not 2-byte aligned"
        )));
    }
    let imm13 = check_imm(offset, 13, "B-type")?;
    let b11 = (imm13 >> 11) & 1;
    let b4_1 = (imm13 >> 1) & 0xf;
    let b10_5 = (imm13 >> 5) & 0x3f;
    let b12 = (imm13 >> 12) & 1;
    Ok(opcode
        | (b11 << 7)
        | (b4_1 << 8)
        | funct3(f3)
        | rs1_f(rs1)
        | rs2_f(rs2)
        | (b10_5 << 25)
        | (b12 << 31))
}

fn u_type(opcode: u32, rd: Reg, imm: i64) -> Result<u32, EncodeError> {
    // `imm` is the full semantic value; must be a multiple of 4096 that fits
    // the signed 32-bit range once shifted.
    if imm & 0xfff != 0 {
        return Err(EncodeError::new(format!(
            "U-type immediate {imm:#x} has nonzero low 12 bits"
        )));
    }
    let upper = imm >> 12;
    if !(-(1 << 19)..(1 << 19)).contains(&upper) {
        return Err(EncodeError::new(format!(
            "U-type immediate {imm:#x} out of range"
        )));
    }
    Ok(opcode | rd_f(rd) | (((upper as u32) & 0xfffff) << 12))
}

fn j_type(opcode: u32, rd: Reg, offset: i64) -> Result<u32, EncodeError> {
    if offset % 2 != 0 {
        return Err(EncodeError::new(format!(
            "jump offset {offset} not 2-byte aligned"
        )));
    }
    let imm21 = check_imm(offset, 21, "J-type")?;
    let b19_12 = (imm21 >> 12) & 0xff;
    let b11 = (imm21 >> 11) & 1;
    let b10_1 = (imm21 >> 1) & 0x3ff;
    let b20 = (imm21 >> 20) & 1;
    Ok(opcode | rd_f(rd) | (b19_12 << 12) | (b11 << 20) | (b10_1 << 21) | (b20 << 31))
}

fn alu_funct(op: AluOp) -> (u32, u32, u32) {
    // (opcode, funct3, funct7)
    match op {
        AluOp::Add => (OPC_OP, 0b000, 0b0000000),
        AluOp::Sub => (OPC_OP, 0b000, 0b0100000),
        AluOp::Sll => (OPC_OP, 0b001, 0b0000000),
        AluOp::Slt => (OPC_OP, 0b010, 0b0000000),
        AluOp::Sltu => (OPC_OP, 0b011, 0b0000000),
        AluOp::Xor => (OPC_OP, 0b100, 0b0000000),
        AluOp::Srl => (OPC_OP, 0b101, 0b0000000),
        AluOp::Sra => (OPC_OP, 0b101, 0b0100000),
        AluOp::Or => (OPC_OP, 0b110, 0b0000000),
        AluOp::And => (OPC_OP, 0b111, 0b0000000),
        AluOp::Addw => (OPC_OP_32, 0b000, 0b0000000),
        AluOp::Subw => (OPC_OP_32, 0b000, 0b0100000),
        AluOp::Sllw => (OPC_OP_32, 0b001, 0b0000000),
        AluOp::Srlw => (OPC_OP_32, 0b101, 0b0000000),
        AluOp::Sraw => (OPC_OP_32, 0b101, 0b0100000),
        AluOp::Mul => (OPC_OP, 0b000, 0b0000001),
        AluOp::Mulh => (OPC_OP, 0b001, 0b0000001),
        AluOp::Mulhsu => (OPC_OP, 0b010, 0b0000001),
        AluOp::Mulhu => (OPC_OP, 0b011, 0b0000001),
        AluOp::Div => (OPC_OP, 0b100, 0b0000001),
        AluOp::Divu => (OPC_OP, 0b101, 0b0000001),
        AluOp::Rem => (OPC_OP, 0b110, 0b0000001),
        AluOp::Remu => (OPC_OP, 0b111, 0b0000001),
        AluOp::Mulw => (OPC_OP_32, 0b000, 0b0000001),
        AluOp::Divw => (OPC_OP_32, 0b100, 0b0000001),
        AluOp::Divuw => (OPC_OP_32, 0b101, 0b0000001),
        AluOp::Remw => (OPC_OP_32, 0b110, 0b0000001),
        AluOp::Remuw => (OPC_OP_32, 0b111, 0b0000001),
    }
}

/// Encodes a single instruction to its 32-bit machine word.
///
/// # Errors
///
/// Returns [`EncodeError`] when an immediate or offset does not fit its
/// encoding field, or when a store uses an unsigned width.
///
/// ```rust
/// use marshal_isa::inst::{Inst, Reg};
/// use marshal_isa::encode::encode;
/// // addi a0, zero, 1  ==  0x00100513
/// let word = encode(&Inst::AluImm {
///     op: marshal_isa::inst::AluImmOp::Addi,
///     rd: Reg::A0,
///     rs1: Reg::ZERO,
///     imm: 1,
/// }).unwrap();
/// assert_eq!(word, 0x0010_0513);
/// ```
pub fn encode(inst: &Inst) -> Result<u32, EncodeError> {
    match *inst {
        Inst::Lui { rd, imm } => u_type(OPC_LUI, rd, imm),
        Inst::Auipc { rd, imm } => u_type(OPC_AUIPC, rd, imm),
        Inst::Jal { rd, offset } => j_type(OPC_JAL, rd, offset),
        Inst::Jalr { rd, rs1, offset } => i_type(OPC_JALR, 0b000, rd, rs1, offset),
        Inst::Branch {
            cond,
            rs1,
            rs2,
            offset,
        } => b_type(OPC_BRANCH, cond.funct3(), rs1, rs2, offset),
        Inst::Load {
            width,
            rd,
            rs1,
            offset,
        } => i_type(OPC_LOAD, width.load_funct3(), rd, rs1, offset),
        Inst::Store {
            width,
            rs2,
            rs1,
            offset,
        } => {
            let f3 = match width {
                MemWidth::B => 0b000,
                MemWidth::H => 0b001,
                MemWidth::W => 0b010,
                MemWidth::D => 0b011,
                _ => {
                    return Err(EncodeError::new(format!(
                        "store width {width:?} is not encodable"
                    )))
                }
            };
            s_type(OPC_STORE, f3, rs1, rs2, offset)
        }
        Inst::AluImm { op, rd, rs1, imm } => {
            let (opcode, f3) = match op {
                AluImmOp::Addi => (OPC_OP_IMM, 0b000),
                AluImmOp::Slti => (OPC_OP_IMM, 0b010),
                AluImmOp::Sltiu => (OPC_OP_IMM, 0b011),
                AluImmOp::Xori => (OPC_OP_IMM, 0b100),
                AluImmOp::Ori => (OPC_OP_IMM, 0b110),
                AluImmOp::Andi => (OPC_OP_IMM, 0b111),
                AluImmOp::Slli => (OPC_OP_IMM, 0b001),
                AluImmOp::Srli | AluImmOp::Srai => (OPC_OP_IMM, 0b101),
                AluImmOp::Addiw => (OPC_OP_IMM_32, 0b000),
                AluImmOp::Slliw => (OPC_OP_IMM_32, 0b001),
                AluImmOp::Srliw | AluImmOp::Sraiw => (OPC_OP_IMM_32, 0b101),
            };
            if op.is_shift() {
                let max_shamt = if matches!(op, AluImmOp::Slliw | AluImmOp::Srliw | AluImmOp::Sraiw)
                {
                    31
                } else {
                    63
                };
                if imm < 0 || imm > max_shamt {
                    return Err(EncodeError::new(format!(
                        "shift amount {imm} out of range 0..={max_shamt}"
                    )));
                }
                let arith = matches!(op, AluImmOp::Srai | AluImmOp::Sraiw);
                let high = if arith { 0b0100000u32 << 25 } else { 0 };
                Ok(opcode | rd_f(rd) | funct3(f3) | rs1_f(rs1) | ((imm as u32) << 20) | high)
            } else {
                i_type(opcode, f3, rd, rs1, imm)
            }
        }
        Inst::Alu { op, rd, rs1, rs2 } => {
            let (opcode, f3, f7) = alu_funct(op);
            Ok(opcode | rd_f(rd) | funct3(f3) | rs1_f(rs1) | rs2_f(rs2) | (f7 << 25))
        }
        Inst::Fence => Ok(OPC_MISC_MEM | funct3(0b000) | (0b0000_1111_1111u32 << 20)),
        Inst::Ecall => Ok(OPC_SYSTEM),
        Inst::Ebreak => Ok(OPC_SYSTEM | (1 << 20)),
        Inst::Csr { op, rd, rs1, csr } => {
            Ok(OPC_SYSTEM | rd_f(rd) | funct3(op.funct3()) | rs1_f(rs1) | ((csr as u32) << 20))
        }
        Inst::CsrImm { op, rd, zimm, csr } => {
            if zimm >= 32 {
                return Err(EncodeError::new(format!("csr zimm {zimm} out of range")));
            }
            Ok(OPC_SYSTEM
                | rd_f(rd)
                | funct3(op.funct3() | 0b100)
                | (((zimm as u32) & 0x1f) << 15)
                | ((csr as u32) << 20))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BranchCond, CsrOp};

    #[test]
    fn known_encodings() {
        // Cross-checked against a reference RISC-V assembler.
        // addi a0, zero, 1
        assert_eq!(
            encode(&Inst::AluImm {
                op: AluImmOp::Addi,
                rd: Reg::A0,
                rs1: Reg::ZERO,
                imm: 1
            })
            .unwrap(),
            0x0010_0513
        );
        // add a0, a1, a2
        assert_eq!(
            encode(&Inst::Alu {
                op: AluOp::Add,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2
            })
            .unwrap(),
            0x00c5_8533
        );
        // lui a0, 0x12345
        assert_eq!(
            encode(&Inst::Lui {
                rd: Reg::A0,
                imm: 0x12345 << 12
            })
            .unwrap(),
            0x1234_5537
        );
        // ecall
        assert_eq!(encode(&Inst::Ecall).unwrap(), 0x0000_0073);
        // ebreak
        assert_eq!(encode(&Inst::Ebreak).unwrap(), 0x0010_0073);
        // jal ra, +8
        assert_eq!(
            encode(&Inst::Jal {
                rd: Reg::RA,
                offset: 8
            })
            .unwrap(),
            0x0080_00ef
        );
        // beq a0, a1, +16
        assert_eq!(
            encode(&Inst::Branch {
                cond: BranchCond::Eq,
                rs1: Reg::A0,
                rs2: Reg::A1,
                offset: 16
            })
            .unwrap(),
            0x00b5_0863
        );
        // ld a0, 16(sp)
        assert_eq!(
            encode(&Inst::Load {
                width: MemWidth::D,
                rd: Reg::A0,
                rs1: Reg::SP,
                offset: 16
            })
            .unwrap(),
            0x0101_3503
        );
        // sd a0, 8(sp)
        assert_eq!(
            encode(&Inst::Store {
                width: MemWidth::D,
                rs2: Reg::A0,
                rs1: Reg::SP,
                offset: 8
            })
            .unwrap(),
            0x00a1_3423
        );
        // mul a0, a1, a2
        assert_eq!(
            encode(&Inst::Alu {
                op: AluOp::Mul,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2
            })
            .unwrap(),
            0x02c5_8533
        );
        // srai a0, a0, 3
        assert_eq!(
            encode(&Inst::AluImm {
                op: AluImmOp::Srai,
                rd: Reg::A0,
                rs1: Reg::A0,
                imm: 3
            })
            .unwrap(),
            0x4035_5513
        );
        // csrrs a0, cycle, zero (rdcycle a0)
        assert_eq!(
            encode(&Inst::Csr {
                op: CsrOp::Rs,
                rd: Reg::A0,
                rs1: Reg::ZERO,
                csr: 0xC00
            })
            .unwrap(),
            0xc000_2573
        );
    }

    #[test]
    fn negative_immediates() {
        // addi a0, a0, -1
        assert_eq!(
            encode(&Inst::AluImm {
                op: AluImmOp::Addi,
                rd: Reg::A0,
                rs1: Reg::A0,
                imm: -1
            })
            .unwrap(),
            0xfff5_0513
        );
        // beq zero, zero, -4 (backward branch)
        let w = encode(&Inst::Branch {
            cond: BranchCond::Eq,
            rs1: Reg::ZERO,
            rs2: Reg::ZERO,
            offset: -4,
        })
        .unwrap();
        assert_eq!(w, 0xfe00_0ee3);
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(encode(&Inst::AluImm {
            op: AluImmOp::Addi,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: 4096
        })
        .is_err());
        assert!(encode(&Inst::Jal {
            rd: Reg::RA,
            offset: 1 << 21
        })
        .is_err());
        assert!(encode(&Inst::Jal {
            rd: Reg::RA,
            offset: 3
        })
        .is_err());
        assert!(encode(&Inst::AluImm {
            op: AluImmOp::Slli,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: 64
        })
        .is_err());
        assert!(encode(&Inst::Store {
            width: MemWidth::Bu,
            rs2: Reg::A0,
            rs1: Reg::SP,
            offset: 0
        })
        .is_err());
    }
}
