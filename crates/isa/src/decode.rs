//! Binary instruction decoding.
//!
//! The inverse of [`crate::encode`]: turns 32-bit machine words back into
//! [`Inst`] values. Decoding is total over the encodable instruction set and
//! returns [`DecodeError`] for anything else, which the interpreter surfaces
//! as an illegal-instruction trap.

use crate::inst::{AluImmOp, AluOp, BranchCond, CsrOp, Inst, MemWidth, Reg};

/// Error for machine words that are not valid RV64IM encodings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The offending machine word.
    pub word: u32,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "illegal instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

fn sign_extend(value: u32, bits: u32) -> i64 {
    let shift = 64 - bits;
    (((value as u64) << shift) as i64) >> shift
}

fn rd(word: u32) -> Reg {
    Reg::from_field(word >> 7)
}

fn rs1(word: u32) -> Reg {
    Reg::from_field(word >> 15)
}

fn rs2(word: u32) -> Reg {
    Reg::from_field(word >> 20)
}

fn funct3(word: u32) -> u32 {
    (word >> 12) & 0x7
}

fn funct7(word: u32) -> u32 {
    word >> 25
}

fn imm_i(word: u32) -> i64 {
    sign_extend(word >> 20, 12)
}

fn imm_s(word: u32) -> i64 {
    let lo = (word >> 7) & 0x1f;
    let hi = word >> 25;
    sign_extend((hi << 5) | lo, 12)
}

fn imm_b(word: u32) -> i64 {
    let b11 = (word >> 7) & 1;
    let b4_1 = (word >> 8) & 0xf;
    let b10_5 = (word >> 25) & 0x3f;
    let b12 = (word >> 31) & 1;
    sign_extend((b12 << 12) | (b11 << 11) | (b10_5 << 5) | (b4_1 << 1), 13)
}

fn imm_u(word: u32) -> i64 {
    sign_extend(word & 0xffff_f000, 32)
}

fn imm_j(word: u32) -> i64 {
    let b19_12 = (word >> 12) & 0xff;
    let b11 = (word >> 20) & 1;
    let b10_1 = (word >> 21) & 0x3ff;
    let b20 = (word >> 31) & 1;
    sign_extend(
        (b20 << 20) | (b19_12 << 12) | (b11 << 11) | (b10_1 << 1),
        21,
    )
}

fn decode_branch(word: u32) -> Result<Inst, DecodeError> {
    let cond = match funct3(word) {
        0b000 => BranchCond::Eq,
        0b001 => BranchCond::Ne,
        0b100 => BranchCond::Lt,
        0b101 => BranchCond::Ge,
        0b110 => BranchCond::Ltu,
        0b111 => BranchCond::Geu,
        _ => return Err(DecodeError { word }),
    };
    Ok(Inst::Branch {
        cond,
        rs1: rs1(word),
        rs2: rs2(word),
        offset: imm_b(word),
    })
}

fn decode_load(word: u32) -> Result<Inst, DecodeError> {
    let width = match funct3(word) {
        0b000 => MemWidth::B,
        0b001 => MemWidth::H,
        0b010 => MemWidth::W,
        0b011 => MemWidth::D,
        0b100 => MemWidth::Bu,
        0b101 => MemWidth::Hu,
        0b110 => MemWidth::Wu,
        _ => return Err(DecodeError { word }),
    };
    Ok(Inst::Load {
        width,
        rd: rd(word),
        rs1: rs1(word),
        offset: imm_i(word),
    })
}

fn decode_store(word: u32) -> Result<Inst, DecodeError> {
    let width = match funct3(word) {
        0b000 => MemWidth::B,
        0b001 => MemWidth::H,
        0b010 => MemWidth::W,
        0b011 => MemWidth::D,
        _ => return Err(DecodeError { word }),
    };
    Ok(Inst::Store {
        width,
        rs2: rs2(word),
        rs1: rs1(word),
        offset: imm_s(word),
    })
}

fn decode_op_imm(word: u32) -> Result<Inst, DecodeError> {
    let (op, imm) = match funct3(word) {
        0b000 => (AluImmOp::Addi, imm_i(word)),
        0b010 => (AluImmOp::Slti, imm_i(word)),
        0b011 => (AluImmOp::Sltiu, imm_i(word)),
        0b100 => (AluImmOp::Xori, imm_i(word)),
        0b110 => (AluImmOp::Ori, imm_i(word)),
        0b111 => (AluImmOp::Andi, imm_i(word)),
        0b001 => {
            if funct7(word) & !1 != 0 {
                return Err(DecodeError { word });
            }
            (AluImmOp::Slli, ((word >> 20) & 0x3f) as i64)
        }
        0b101 => {
            let shamt = ((word >> 20) & 0x3f) as i64;
            match funct7(word) & !1 {
                0b0000000 => (AluImmOp::Srli, shamt),
                0b0100000 => (AluImmOp::Srai, shamt),
                _ => return Err(DecodeError { word }),
            }
        }
        _ => unreachable!(),
    };
    Ok(Inst::AluImm {
        op,
        rd: rd(word),
        rs1: rs1(word),
        imm,
    })
}

fn decode_op_imm32(word: u32) -> Result<Inst, DecodeError> {
    let (op, imm) = match funct3(word) {
        0b000 => (AluImmOp::Addiw, imm_i(word)),
        0b001 => {
            if funct7(word) != 0 {
                return Err(DecodeError { word });
            }
            (AluImmOp::Slliw, ((word >> 20) & 0x1f) as i64)
        }
        0b101 => {
            let shamt = ((word >> 20) & 0x1f) as i64;
            match funct7(word) {
                0b0000000 => (AluImmOp::Srliw, shamt),
                0b0100000 => (AluImmOp::Sraiw, shamt),
                _ => return Err(DecodeError { word }),
            }
        }
        _ => return Err(DecodeError { word }),
    };
    Ok(Inst::AluImm {
        op,
        rd: rd(word),
        rs1: rs1(word),
        imm,
    })
}

fn decode_op(word: u32, is_32: bool) -> Result<Inst, DecodeError> {
    let f3 = funct3(word);
    let f7 = funct7(word);
    let op = match (is_32, f7, f3) {
        (false, 0b0000000, 0b000) => AluOp::Add,
        (false, 0b0100000, 0b000) => AluOp::Sub,
        (false, 0b0000000, 0b001) => AluOp::Sll,
        (false, 0b0000000, 0b010) => AluOp::Slt,
        (false, 0b0000000, 0b011) => AluOp::Sltu,
        (false, 0b0000000, 0b100) => AluOp::Xor,
        (false, 0b0000000, 0b101) => AluOp::Srl,
        (false, 0b0100000, 0b101) => AluOp::Sra,
        (false, 0b0000000, 0b110) => AluOp::Or,
        (false, 0b0000000, 0b111) => AluOp::And,
        (false, 0b0000001, 0b000) => AluOp::Mul,
        (false, 0b0000001, 0b001) => AluOp::Mulh,
        (false, 0b0000001, 0b010) => AluOp::Mulhsu,
        (false, 0b0000001, 0b011) => AluOp::Mulhu,
        (false, 0b0000001, 0b100) => AluOp::Div,
        (false, 0b0000001, 0b101) => AluOp::Divu,
        (false, 0b0000001, 0b110) => AluOp::Rem,
        (false, 0b0000001, 0b111) => AluOp::Remu,
        (true, 0b0000000, 0b000) => AluOp::Addw,
        (true, 0b0100000, 0b000) => AluOp::Subw,
        (true, 0b0000000, 0b001) => AluOp::Sllw,
        (true, 0b0000000, 0b101) => AluOp::Srlw,
        (true, 0b0100000, 0b101) => AluOp::Sraw,
        (true, 0b0000001, 0b000) => AluOp::Mulw,
        (true, 0b0000001, 0b100) => AluOp::Divw,
        (true, 0b0000001, 0b101) => AluOp::Divuw,
        (true, 0b0000001, 0b110) => AluOp::Remw,
        (true, 0b0000001, 0b111) => AluOp::Remuw,
        _ => return Err(DecodeError { word }),
    };
    Ok(Inst::Alu {
        op,
        rd: rd(word),
        rs1: rs1(word),
        rs2: rs2(word),
    })
}

fn decode_system(word: u32) -> Result<Inst, DecodeError> {
    let f3 = funct3(word);
    if f3 == 0 {
        return match word >> 20 {
            0 if rd(word) == Reg::ZERO && rs1(word) == Reg::ZERO => Ok(Inst::Ecall),
            1 if rd(word) == Reg::ZERO && rs1(word) == Reg::ZERO => Ok(Inst::Ebreak),
            _ => Err(DecodeError { word }),
        };
    }
    let csr = (word >> 20) as u16;
    let op = match f3 & 0b011 {
        0b001 => CsrOp::Rw,
        0b010 => CsrOp::Rs,
        0b011 => CsrOp::Rc,
        _ => return Err(DecodeError { word }),
    };
    if f3 & 0b100 != 0 {
        Ok(Inst::CsrImm {
            op,
            rd: rd(word),
            zimm: ((word >> 15) & 0x1f) as u8,
            csr,
        })
    } else {
        Ok(Inst::Csr {
            op,
            rd: rd(word),
            rs1: rs1(word),
            csr,
        })
    }
}

/// Decodes a 32-bit machine word into an [`Inst`].
///
/// # Errors
///
/// Returns [`DecodeError`] for any word that is not a valid RV64IM
/// (I + M + Zicsr + fence) encoding.
///
/// ```rust
/// use marshal_isa::decode::decode;
/// use marshal_isa::inst::{Inst, Reg, AluImmOp};
/// let inst = decode(0x0010_0513).unwrap(); // addi a0, zero, 1
/// assert_eq!(inst, Inst::AluImm { op: AluImmOp::Addi, rd: Reg::A0, rs1: Reg::ZERO, imm: 1 });
/// ```
pub fn decode(word: u32) -> Result<Inst, DecodeError> {
    match word & 0x7f {
        0b0110111 => Ok(Inst::Lui {
            rd: rd(word),
            imm: imm_u(word),
        }),
        0b0010111 => Ok(Inst::Auipc {
            rd: rd(word),
            imm: imm_u(word),
        }),
        0b1101111 => Ok(Inst::Jal {
            rd: rd(word),
            offset: imm_j(word),
        }),
        0b1100111 => {
            if funct3(word) != 0 {
                return Err(DecodeError { word });
            }
            Ok(Inst::Jalr {
                rd: rd(word),
                rs1: rs1(word),
                offset: imm_i(word),
            })
        }
        0b1100011 => decode_branch(word),
        0b0000011 => decode_load(word),
        0b0100011 => decode_store(word),
        0b0010011 => decode_op_imm(word),
        0b0011011 => decode_op_imm32(word),
        0b0110011 => decode_op(word, false),
        0b0111011 => decode_op(word, true),
        0b0001111 => Ok(Inst::Fence),
        0b1110011 => decode_system(word),
        _ => Err(DecodeError { word }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;

    fn roundtrip(inst: Inst) {
        let word = encode(&inst).unwrap_or_else(|e| panic!("encode {inst:?}: {e}"));
        let back = decode(word).unwrap_or_else(|e| panic!("decode {inst:?} ({word:#x}): {e}"));
        assert_eq!(inst, back, "roundtrip mismatch for word {word:#010x}");
    }

    #[test]
    fn roundtrip_representative_instructions() {
        use crate::inst::*;
        let r = |i: u8| Reg::new(i).unwrap();
        roundtrip(Inst::Lui {
            rd: r(5),
            imm: -0x7f000 << 12,
        });
        roundtrip(Inst::Auipc {
            rd: r(7),
            imm: 0x1000,
        });
        roundtrip(Inst::Jal {
            rd: Reg::RA,
            offset: -2048,
        });
        roundtrip(Inst::Jalr {
            rd: Reg::ZERO,
            rs1: Reg::RA,
            offset: 0,
        });
        for cond in [
            BranchCond::Eq,
            BranchCond::Ne,
            BranchCond::Lt,
            BranchCond::Ge,
            BranchCond::Ltu,
            BranchCond::Geu,
        ] {
            roundtrip(Inst::Branch {
                cond,
                rs1: r(3),
                rs2: r(4),
                offset: -64,
            });
        }
        for width in [
            MemWidth::B,
            MemWidth::H,
            MemWidth::W,
            MemWidth::D,
            MemWidth::Bu,
            MemWidth::Hu,
            MemWidth::Wu,
        ] {
            roundtrip(Inst::Load {
                width,
                rd: r(9),
                rs1: Reg::SP,
                offset: -8,
            });
        }
        for width in [MemWidth::B, MemWidth::H, MemWidth::W, MemWidth::D] {
            roundtrip(Inst::Store {
                width,
                rs2: r(9),
                rs1: Reg::SP,
                offset: 2047,
            });
        }
        for op in [
            AluImmOp::Addi,
            AluImmOp::Slti,
            AluImmOp::Sltiu,
            AluImmOp::Xori,
            AluImmOp::Ori,
            AluImmOp::Andi,
            AluImmOp::Addiw,
        ] {
            roundtrip(Inst::AluImm {
                op,
                rd: r(11),
                rs1: r(12),
                imm: -1,
            });
        }
        for (op, sh) in [
            (AluImmOp::Slli, 63),
            (AluImmOp::Srli, 1),
            (AluImmOp::Srai, 63),
            (AluImmOp::Slliw, 31),
            (AluImmOp::Srliw, 0),
            (AluImmOp::Sraiw, 31),
        ] {
            roundtrip(Inst::AluImm {
                op,
                rd: r(11),
                rs1: r(12),
                imm: sh,
            });
        }
        for op in [
            AluOp::Add,
            AluOp::Sub,
            AluOp::Sll,
            AluOp::Slt,
            AluOp::Sltu,
            AluOp::Xor,
            AluOp::Srl,
            AluOp::Sra,
            AluOp::Or,
            AluOp::And,
            AluOp::Addw,
            AluOp::Subw,
            AluOp::Sllw,
            AluOp::Srlw,
            AluOp::Sraw,
            AluOp::Mul,
            AluOp::Mulh,
            AluOp::Mulhsu,
            AluOp::Mulhu,
            AluOp::Div,
            AluOp::Divu,
            AluOp::Rem,
            AluOp::Remu,
            AluOp::Mulw,
            AluOp::Divw,
            AluOp::Divuw,
            AluOp::Remw,
            AluOp::Remuw,
        ] {
            roundtrip(Inst::Alu {
                op,
                rd: r(1),
                rs1: r(2),
                rs2: r(3),
            });
        }
        roundtrip(Inst::Ecall);
        roundtrip(Inst::Ebreak);
        for op in [CsrOp::Rw, CsrOp::Rs, CsrOp::Rc] {
            roundtrip(Inst::Csr {
                op,
                rd: r(10),
                rs1: r(11),
                csr: csr::CYCLE,
            });
            roundtrip(Inst::CsrImm {
                op,
                rd: r(10),
                zimm: 31,
                csr: csr::MSCRATCH,
            });
        }
    }

    #[test]
    fn fence_roundtrips_as_fence() {
        let word = encode(&Inst::Fence).unwrap();
        assert_eq!(decode(word).unwrap(), Inst::Fence);
    }

    #[test]
    fn illegal_words_rejected() {
        assert!(decode(0x0000_0000).is_err()); // all zeros
        assert!(decode(0xffff_ffff).is_err()); // all ones
        assert!(decode(0x0000_0057).is_err()); // FP opcode, unsupported
    }

    #[test]
    fn imm_extraction_signs() {
        // lw a0, -4(sp): imm should be -4
        let w = encode(&Inst::Load {
            width: MemWidth::W,
            rd: Reg::A0,
            rs1: Reg::SP,
            offset: -4,
        })
        .unwrap();
        match decode(w).unwrap() {
            Inst::Load { offset, .. } => assert_eq!(offset, -4),
            other => panic!("unexpected {other:?}"),
        }
    }
}
