//! The functional interpreter core.
//!
//! [`Cpu::step`] executes exactly one instruction against a [`Bus`] and
//! reports what happened as a [`StepOutcome`]. The cycle-exact simulator in
//! `marshal-sim-rtl` consumes the same [`Retired`] records as a
//! perfectly-accurate execution trace, which guarantees both simulators run
//! the identical instruction stream — the property FireMarshal's
//! `launch`/`install` portability depends on.

use crate::decode::decode;
use crate::inst::{csr, AluImmOp, AluOp, CsrOp, Inst, Reg};
use crate::mem::Bus;

/// An architectural trap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trap {
    /// Instruction fetch from an unmapped address.
    FetchFault {
        /// Faulting address.
        addr: u64,
    },
    /// Load from an unmapped address.
    LoadFault {
        /// Faulting address.
        addr: u64,
    },
    /// Store to an unmapped or read-only address.
    StoreFault {
        /// Faulting address.
        addr: u64,
    },
    /// Misaligned load/store.
    Misaligned {
        /// Faulting address.
        addr: u64,
    },
    /// Word is not a valid instruction encoding.
    IllegalInstruction {
        /// The undecodable machine word.
        word: u32,
        /// Address of the word.
        pc: u64,
    },
}

impl std::fmt::Display for Trap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Trap::FetchFault { addr } => write!(f, "instruction fetch fault at {addr:#x}"),
            Trap::LoadFault { addr } => write!(f, "load fault at {addr:#x}"),
            Trap::StoreFault { addr } => write!(f, "store fault at {addr:#x}"),
            Trap::Misaligned { addr } => write!(f, "misaligned access at {addr:#x}"),
            Trap::IllegalInstruction { word, pc } => {
                write!(f, "illegal instruction {word:#010x} at {pc:#x}")
            }
        }
    }
}

impl std::error::Error for Trap {}

/// Classification of a retired instruction, consumed by the timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetireKind {
    /// Simple integer ALU operation (1-cycle class).
    Alu,
    /// Multiply (medium-latency class).
    Mul,
    /// Divide/remainder (long-latency class).
    Div,
    /// Memory load; `addr` is the effective address.
    Load {
        /// Effective address of the access.
        addr: u64,
    },
    /// Memory store; `addr` is the effective address.
    Store {
        /// Effective address of the access.
        addr: u64,
    },
    /// Conditional branch.
    Branch {
        /// Whether the branch was taken.
        taken: bool,
        /// Branch target (valid when taken).
        target: u64,
    },
    /// Direct jump (`jal`).
    Jump {
        /// Jump target.
        target: u64,
    },
    /// Indirect jump (`jalr`); target is data-dependent.
    JumpReg {
        /// Jump target.
        target: u64,
    },
    /// CSR access.
    Csr,
    /// Fence or other system instruction.
    System,
}

/// A fully-retired instruction, with everything a timing model needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retired {
    /// PC of the instruction.
    pub pc: u64,
    /// PC of the next instruction (accounts for taken control flow).
    pub next_pc: u64,
    /// The decoded instruction.
    pub inst: Inst,
    /// Timing classification.
    pub kind: RetireKind,
}

/// The result of executing one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// Instruction retired normally.
    Retired(Retired),
    /// An `ecall` was executed; the embedder handles it. PC has already been
    /// advanced past the `ecall`.
    Ecall,
    /// An `ebreak` was executed. PC has already been advanced.
    Ebreak,
}

/// Architectural CPU state: registers, PC, and counters.
///
/// `x0` is hard-wired to zero; writes to it are ignored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cpu {
    regs: [u64; 32],
    /// Current program counter.
    pub pc: u64,
    /// Retired instruction count.
    pub instret: u64,
    /// Cycle counter. The functional simulators tick this 1:1 with
    /// instructions; the cycle-exact simulator writes modelled cycles here so
    /// `rdcycle` observes real simulated time.
    pub cycle: u64,
    /// Hart ID reported by `mhartid`.
    pub hart_id: u64,
    scratch: u64,
}

impl Default for Cpu {
    fn default() -> Cpu {
        Cpu::new(0)
    }
}

impl Cpu {
    /// Creates a CPU with all registers zero and PC at `entry`.
    pub fn new(entry: u64) -> Cpu {
        Cpu {
            regs: [0; 32],
            pc: entry,
            instret: 0,
            cycle: 0,
            hart_id: 0,
            scratch: 0,
        }
    }

    /// Reads a register (`x0` always reads zero).
    pub fn read_reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes a register (writes to `x0` are discarded).
    pub fn write_reg(&mut self, r: Reg, v: u64) {
        if r != Reg::ZERO {
            self.regs[r.index()] = v;
        }
    }

    fn read_csr(&self, num: u16) -> u64 {
        match num {
            csr::CYCLE | csr::TIME => self.cycle,
            csr::INSTRET => self.instret,
            csr::MHARTID => self.hart_id,
            csr::MSCRATCH => self.scratch,
            _ => 0,
        }
    }

    fn write_csr(&mut self, num: u16, v: u64) {
        if num == csr::MSCRATCH {
            self.scratch = v;
        }
        // Counter CSRs are read-only shadows; other writes are ignored.
    }

    /// Executes one instruction.
    ///
    /// On [`StepOutcome::Ecall`]/[`StepOutcome::Ebreak`] the PC has already
    /// advanced past the trapping instruction, so the embedder can service
    /// the call and resume with another `step`.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] on fetch/load/store faults, misalignment, or an
    /// illegal instruction. The CPU state is left at the faulting
    /// instruction (PC unchanged).
    pub fn step<B: Bus>(&mut self, bus: &mut B) -> Result<StepOutcome, Trap> {
        let pc = self.pc;
        let word = bus.fetch(pc)?;
        let inst = decode(word).map_err(|e| Trap::IllegalInstruction { word: e.word, pc })?;
        self.exec_decoded(bus, inst)
    }

    /// Executes an already-decoded instruction as if it had just been fetched
    /// from the current PC.
    ///
    /// This is the entire post-decode half of [`Cpu::step`]; the predecoded
    /// instruction cache ([`crate::predecode::DecodeCache`]) dispatches
    /// through it so cached and uncached execution retire bit-identical
    /// [`Retired`] records. The caller must guarantee `inst` is the decoding
    /// of the word currently stored at `self.pc`.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] exactly as [`Cpu::step`] would for the same
    /// instruction (PC left unchanged on trap).
    pub fn exec_decoded<B: Bus>(&mut self, bus: &mut B, inst: Inst) -> Result<StepOutcome, Trap> {
        let pc = self.pc;
        let mut next_pc = pc.wrapping_add(4);
        let kind = match inst {
            Inst::Lui { rd, imm } => {
                self.write_reg(rd, imm as u64);
                RetireKind::Alu
            }
            Inst::Auipc { rd, imm } => {
                self.write_reg(rd, pc.wrapping_add(imm as u64));
                RetireKind::Alu
            }
            Inst::Jal { rd, offset } => {
                self.write_reg(rd, next_pc);
                next_pc = pc.wrapping_add(offset as u64);
                RetireKind::Jump { target: next_pc }
            }
            Inst::Jalr { rd, rs1, offset } => {
                let target = self.read_reg(rs1).wrapping_add(offset as u64) & !1;
                self.write_reg(rd, next_pc);
                next_pc = target;
                RetireKind::JumpReg { target }
            }
            Inst::Branch {
                cond,
                rs1,
                rs2,
                offset,
            } => {
                let taken = cond.eval(self.read_reg(rs1), self.read_reg(rs2));
                let target = pc.wrapping_add(offset as u64);
                if taken {
                    next_pc = target;
                }
                RetireKind::Branch { taken, target }
            }
            Inst::Load {
                width,
                rd,
                rs1,
                offset,
            } => {
                let addr = self.read_reg(rs1).wrapping_add(offset as u64);
                let size = width.bytes();
                if !addr.is_multiple_of(size as u64) {
                    return Err(Trap::Misaligned { addr });
                }
                let raw = bus.load(addr, size)?;
                let value = match width {
                    crate::inst::MemWidth::B => raw as u8 as i8 as i64 as u64,
                    crate::inst::MemWidth::H => raw as u16 as i16 as i64 as u64,
                    crate::inst::MemWidth::W => raw as u32 as i32 as i64 as u64,
                    crate::inst::MemWidth::D => raw,
                    crate::inst::MemWidth::Bu
                    | crate::inst::MemWidth::Hu
                    | crate::inst::MemWidth::Wu => raw,
                };
                self.write_reg(rd, value);
                RetireKind::Load { addr }
            }
            Inst::Store {
                width,
                rs2,
                rs1,
                offset,
            } => {
                let addr = self.read_reg(rs1).wrapping_add(offset as u64);
                let size = width.bytes();
                if !addr.is_multiple_of(size as u64) {
                    return Err(Trap::Misaligned { addr });
                }
                bus.store(addr, size, self.read_reg(rs2))?;
                RetireKind::Store { addr }
            }
            Inst::AluImm { op, rd, rs1, imm } => {
                let a = self.read_reg(rs1);
                let v = alu_imm(op, a, imm);
                self.write_reg(rd, v);
                RetireKind::Alu
            }
            Inst::Alu { op, rd, rs1, rs2 } => {
                let a = self.read_reg(rs1);
                let b = self.read_reg(rs2);
                self.write_reg(rd, alu(op, a, b));
                if op.is_div() {
                    RetireKind::Div
                } else if op.is_muldiv() {
                    RetireKind::Mul
                } else {
                    RetireKind::Alu
                }
            }
            Inst::Fence => RetireKind::System,
            Inst::Ecall => {
                self.pc = next_pc;
                self.instret += 1;
                self.cycle += 1;
                return Ok(StepOutcome::Ecall);
            }
            Inst::Ebreak => {
                self.pc = next_pc;
                self.instret += 1;
                self.cycle += 1;
                return Ok(StepOutcome::Ebreak);
            }
            Inst::Csr {
                op,
                rd,
                rs1,
                csr: num,
            } => {
                let old = self.read_csr(num);
                let src = self.read_reg(rs1);
                self.apply_csr(op, num, old, src, rs1 != Reg::ZERO);
                self.write_reg(rd, old);
                RetireKind::Csr
            }
            Inst::CsrImm {
                op,
                rd,
                zimm,
                csr: num,
            } => {
                let old = self.read_csr(num);
                self.apply_csr(op, num, old, zimm as u64, zimm != 0);
                self.write_reg(rd, old);
                RetireKind::Csr
            }
        };
        self.pc = next_pc;
        self.instret += 1;
        self.cycle += 1;
        Ok(StepOutcome::Retired(Retired {
            pc,
            next_pc,
            inst,
            kind,
        }))
    }

    fn apply_csr(&mut self, op: CsrOp, num: u16, old: u64, src: u64, src_nonzero: bool) {
        match op {
            CsrOp::Rw => self.write_csr(num, src),
            CsrOp::Rs => {
                if src_nonzero {
                    self.write_csr(num, old | src);
                }
            }
            CsrOp::Rc => {
                if src_nonzero {
                    self.write_csr(num, old & !src);
                }
            }
        }
    }

    /// Runs until an `ecall`, `ebreak`, trap, or `max_steps` instructions.
    ///
    /// Returns the outcome that stopped execution, or `None` if the step
    /// budget was exhausted while still retiring normally.
    ///
    /// # Errors
    ///
    /// Propagates any [`Trap`] from [`Cpu::step`].
    pub fn run<B: Bus>(
        &mut self,
        bus: &mut B,
        max_steps: u64,
    ) -> Result<Option<StepOutcome>, Trap> {
        for _ in 0..max_steps {
            match self.step(bus)? {
                StepOutcome::Retired(_) => {}
                other => return Ok(Some(other)),
            }
        }
        Ok(None)
    }
}

fn alu_imm(op: AluImmOp, a: u64, imm: i64) -> u64 {
    match op {
        AluImmOp::Addi => a.wrapping_add(imm as u64),
        AluImmOp::Slti => ((a as i64) < imm) as u64,
        AluImmOp::Sltiu => (a < imm as u64) as u64,
        AluImmOp::Xori => a ^ imm as u64,
        AluImmOp::Ori => a | imm as u64,
        AluImmOp::Andi => a & imm as u64,
        AluImmOp::Slli => a << (imm & 0x3f),
        AluImmOp::Srli => a >> (imm & 0x3f),
        AluImmOp::Srai => ((a as i64) >> (imm & 0x3f)) as u64,
        AluImmOp::Addiw => (a.wrapping_add(imm as u64) as i32) as i64 as u64,
        AluImmOp::Slliw => (((a as u32) << (imm & 0x1f)) as i32) as i64 as u64,
        AluImmOp::Srliw => (((a as u32) >> (imm & 0x1f)) as i32) as i64 as u64,
        AluImmOp::Sraiw => (((a as i32) >> (imm & 0x1f)) as i64) as u64,
    }
}

fn alu(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a << (b & 0x3f),
        AluOp::Slt => ((a as i64) < (b as i64)) as u64,
        AluOp::Sltu => (a < b) as u64,
        AluOp::Xor => a ^ b,
        AluOp::Srl => a >> (b & 0x3f),
        AluOp::Sra => ((a as i64) >> (b & 0x3f)) as u64,
        AluOp::Or => a | b,
        AluOp::And => a & b,
        AluOp::Addw => (a.wrapping_add(b) as i32) as i64 as u64,
        AluOp::Subw => (a.wrapping_sub(b) as i32) as i64 as u64,
        AluOp::Sllw => (((a as u32) << (b & 0x1f)) as i32) as i64 as u64,
        AluOp::Srlw => (((a as u32) >> (b & 0x1f)) as i32) as i64 as u64,
        AluOp::Sraw => (((a as i32) >> (b & 0x1f)) as i64) as u64,
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Mulh => (((a as i64 as i128) * (b as i64 as i128)) >> 64) as u64,
        AluOp::Mulhsu => (((a as i64 as i128) * (b as u128 as i128)) >> 64) as u64,
        AluOp::Mulhu => (((a as u128) * (b as u128)) >> 64) as u64,
        AluOp::Div => {
            let (a, b) = (a as i64, b as i64);
            if b == 0 {
                u64::MAX
            } else if a == i64::MIN && b == -1 {
                a as u64
            } else {
                (a / b) as u64
            }
        }
        AluOp::Divu => a.checked_div(b).unwrap_or(u64::MAX),
        AluOp::Rem => {
            let (a, b) = (a as i64, b as i64);
            if b == 0 {
                a as u64
            } else if a == i64::MIN && b == -1 {
                0
            } else {
                (a % b) as u64
            }
        }
        AluOp::Remu => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
        AluOp::Mulw => ((a as i32).wrapping_mul(b as i32)) as i64 as u64,
        AluOp::Divw => {
            let (a, b) = (a as i32, b as i32);
            let v = if b == 0 {
                -1
            } else if a == i32::MIN && b == -1 {
                a
            } else {
                a / b
            };
            v as i64 as u64
        }
        AluOp::Divuw => {
            let (a, b) = (a as u32, b as u32);
            let v = a.checked_div(b).unwrap_or(u32::MAX);
            v as i32 as i64 as u64
        }
        AluOp::Remw => {
            let (a, b) = (a as i32, b as i32);
            let v = if b == 0 {
                a
            } else if a == i32::MIN && b == -1 {
                0
            } else {
                a % b
            };
            v as i64 as u64
        }
        AluOp::Remuw => {
            let (a, b) = (a as u32, b as u32);
            let v = if b == 0 { a } else { a % b };
            v as i32 as i64 as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use crate::mem::FlatMemory;

    fn program(insts: &[Inst]) -> FlatMemory {
        let mut m = FlatMemory::new(1 << 16);
        for (i, inst) in insts.iter().enumerate() {
            let w = encode(inst).unwrap();
            m.store(4 * i as u64, 4, w as u64).unwrap();
        }
        m
    }

    fn run_until_ecall(cpu: &mut Cpu, mem: &mut FlatMemory) {
        match cpu.run(mem, 10_000).unwrap() {
            Some(StepOutcome::Ecall) => {}
            other => panic!("expected ecall, got {other:?}"),
        }
    }

    #[test]
    fn arithmetic_loop() {
        // sum 1..=10 into a0
        use crate::inst::*;
        let mut mem = program(&[
            Inst::AluImm {
                op: AluImmOp::Addi,
                rd: Reg::T0,
                rs1: Reg::ZERO,
                imm: 10,
            },
            Inst::AluImm {
                op: AluImmOp::Addi,
                rd: Reg::A0,
                rs1: Reg::ZERO,
                imm: 0,
            },
            // loop:
            Inst::Alu {
                op: AluOp::Add,
                rd: Reg::A0,
                rs1: Reg::A0,
                rs2: Reg::T0,
            },
            Inst::AluImm {
                op: AluImmOp::Addi,
                rd: Reg::T0,
                rs1: Reg::T0,
                imm: -1,
            },
            Inst::Branch {
                cond: BranchCond::Ne,
                rs1: Reg::T0,
                rs2: Reg::ZERO,
                offset: -8,
            },
            Inst::Ecall,
        ]);
        let mut cpu = Cpu::new(0);
        run_until_ecall(&mut cpu, &mut mem);
        assert_eq!(cpu.read_reg(Reg::A0), 55);
    }

    #[test]
    fn x0_is_hardwired() {
        use crate::inst::*;
        let mut mem = program(&[
            Inst::AluImm {
                op: AluImmOp::Addi,
                rd: Reg::ZERO,
                rs1: Reg::ZERO,
                imm: 42,
            },
            Inst::Ecall,
        ]);
        let mut cpu = Cpu::new(0);
        run_until_ecall(&mut cpu, &mut mem);
        assert_eq!(cpu.read_reg(Reg::ZERO), 0);
    }

    #[test]
    fn load_store_sign_extension() {
        use crate::inst::*;
        let mut mem = program(&[
            // store 0xFF byte at 0x100, load signed and unsigned
            Inst::AluImm {
                op: AluImmOp::Addi,
                rd: Reg::T0,
                rs1: Reg::ZERO,
                imm: 0xff,
            },
            Inst::Store {
                width: MemWidth::B,
                rs2: Reg::T0,
                rs1: Reg::ZERO,
                offset: 0x100,
            },
            Inst::Load {
                width: MemWidth::B,
                rd: Reg::A0,
                rs1: Reg::ZERO,
                offset: 0x100,
            },
            Inst::Load {
                width: MemWidth::Bu,
                rd: Reg::A1,
                rs1: Reg::ZERO,
                offset: 0x100,
            },
            Inst::Ecall,
        ]);
        let mut cpu = Cpu::new(0);
        run_until_ecall(&mut cpu, &mut mem);
        assert_eq!(cpu.read_reg(Reg::A0), u64::MAX); // sign-extended -1
        assert_eq!(cpu.read_reg(Reg::A1), 0xff);
    }

    #[test]
    fn division_edge_cases() {
        assert_eq!(alu(AluOp::Div, 7, 0), u64::MAX);
        assert_eq!(alu(AluOp::Rem, 7, 0), 7);
        assert_eq!(
            alu(AluOp::Div, i64::MIN as u64, -1i64 as u64),
            i64::MIN as u64
        );
        assert_eq!(alu(AluOp::Rem, i64::MIN as u64, -1i64 as u64), 0);
        assert_eq!(alu(AluOp::Divu, 7, 0), u64::MAX);
        assert_eq!(alu(AluOp::Remu, 7, 0), 7);
        assert_eq!(
            alu(AluOp::Divw, i32::MIN as u64, -1i64 as u64),
            i32::MIN as i64 as u64
        );
    }

    #[test]
    fn word_ops_sign_extend() {
        assert_eq!(alu(AluOp::Addw, 0x7fff_ffff, 1), 0xffff_ffff_8000_0000);
        assert_eq!(alu_imm(AluImmOp::Addiw, 0xffff_ffff, 1), 0);
        assert_eq!(alu(AluOp::Sllw, 1, 31), 0xffff_ffff_8000_0000);
    }

    #[test]
    fn mulh_variants() {
        let a = 0x8000_0000_0000_0000u64; // i64::MIN
        assert_eq!(alu(AluOp::Mulhu, a, 2), 1);
        assert_eq!(alu(AluOp::Mulh, a, 2), u64::MAX); // -2^63 * 2 >> 64 = -1
    }

    #[test]
    fn misaligned_load_traps() {
        use crate::inst::*;
        let mut mem = program(&[Inst::Load {
            width: MemWidth::W,
            rd: Reg::A0,
            rs1: Reg::ZERO,
            offset: 0x101,
        }]);
        let mut cpu = Cpu::new(0);
        match cpu.step(&mut mem) {
            Err(Trap::Misaligned { addr }) => assert_eq!(addr, 0x101),
            other => panic!("unexpected {other:?}"),
        }
        // PC unchanged on trap
        assert_eq!(cpu.pc, 0);
    }

    #[test]
    fn illegal_instruction_traps() {
        let mut mem = FlatMemory::new(64);
        mem.store(0, 4, 0xffff_ffff).unwrap();
        let mut cpu = Cpu::new(0);
        assert!(matches!(
            cpu.step(&mut mem),
            Err(Trap::IllegalInstruction { .. })
        ));
    }

    #[test]
    fn counters_advance() {
        use crate::inst::*;
        let mut mem = program(&[
            Inst::AluImm {
                op: AluImmOp::Addi,
                rd: Reg::T0,
                rs1: Reg::ZERO,
                imm: 1,
            },
            Inst::Csr {
                op: CsrOp::Rs,
                rd: Reg::A0,
                rs1: Reg::ZERO,
                csr: csr::INSTRET,
            },
            Inst::Ecall,
        ]);
        let mut cpu = Cpu::new(0);
        run_until_ecall(&mut cpu, &mut mem);
        assert_eq!(cpu.read_reg(Reg::A0), 1); // instret observed before csr retires
        assert_eq!(cpu.instret, 3);
    }

    #[test]
    fn jal_links_and_jumps() {
        use crate::inst::*;
        let mut mem = program(&[
            Inst::Jal {
                rd: Reg::RA,
                offset: 8,
            },
            Inst::Ebreak, // skipped
            Inst::Ecall,
        ]);
        let mut cpu = Cpu::new(0);
        run_until_ecall(&mut cpu, &mut mem);
        assert_eq!(cpu.read_reg(Reg::RA), 4);
    }

    #[test]
    fn jalr_clears_low_bit() {
        use crate::inst::*;
        let mut mem = program(&[
            Inst::AluImm {
                op: AluImmOp::Addi,
                rd: Reg::T0,
                rs1: Reg::ZERO,
                imm: 9,
            },
            Inst::Jalr {
                rd: Reg::ZERO,
                rs1: Reg::T0,
                offset: 0,
            },
            Inst::Ecall, // at 8: target of the jalr (9 & !1 = 8)
        ]);
        let mut cpu = Cpu::new(0);
        run_until_ecall(&mut cpu, &mut mem);
        assert_eq!(cpu.pc, 12);
    }
}
