//! Predecoded instruction cache for the interpreter hot loop.
//!
//! [`Cpu::step`] pays a fetch and a full [`decode`] for every retired
//! instruction even though the vast majority of fetches hit the same few
//! code pages over and over. [`DecodeCache`] decodes each physical page
//! once into a dense table of decoded instructions and dispatches straight
//! into [`Cpu::exec_decoded`], so the steady-state cost per instruction is
//! one page lookup plus execution.
//!
//! Correctness contract: cached dispatch must be observationally identical
//! to [`Cpu::step`], including the exact trap for every fault class.
//!
//! - Decoded slots execute through the same [`Cpu::exec_decoded`] body as
//!   the uncached path, so the [`crate::interp::Retired`] stream — which the
//!   cycle-exact timing model and cosim consume — is bit-for-bit unchanged.
//! - Words that fail to decode are cached as [`Slot::Illegal`] and raise
//!   [`Trap::IllegalInstruction`] only when the PC actually reaches them,
//!   with the same `{word, pc}` payload as an uncached step.
//! - Page bytes that cannot be fetched during fill are cached as
//!   [`Slot::Unmapped`]; execution there falls back to the uncached step so
//!   the authentic [`Trap::FetchFault`] (or a post-fill mapping change) is
//!   observed.
//! - A misaligned PC bypasses the cache entirely (slots are word-indexed).
//!
//! The embedder owns invalidation: any write to guest memory must call
//! [`DecodeCache::invalidate`] (or [`DecodeCache::invalidate_range`]) for
//! the touched addresses so self-modifying code refetches through a fresh
//! decode. Filling a page performs only [`Bus`] loads, which are side-effect
//! free on every bus the simulators use (RAM and read-as-zero MMIO).

use crate::inst::Inst;
use crate::interp::{Cpu, StepOutcome, Trap};
use crate::mem::Bus;

/// Cache granule: decoded entries are kept per naturally-aligned page.
pub const PAGE_SIZE: u64 = 4096;

/// 32-bit instruction slots per page.
const SLOTS_PER_PAGE: usize = (PAGE_SIZE / 4) as usize;

/// Pages held before the cache resets itself. Far above what any MEXE
/// binary needs; purely a bound on pathological self-modifying workloads.
const MAX_PAGES: usize = 64;

/// One predecoded instruction slot.
#[derive(Debug, Clone, Copy)]
enum Slot {
    /// The word decoded cleanly; execute it directly.
    Decoded(Inst),
    /// The word is not a valid encoding; trap if the PC lands here.
    Illegal(u32),
    /// The word could not be fetched at fill time; fall back to an
    /// uncached step so the bus reports the authoritative outcome.
    Unmapped,
}

/// A fully-predecoded page of guest memory.
#[derive(Debug)]
struct Page {
    base: u64,
    slots: Vec<Slot>,
}

/// Per-hart predecoded instruction cache.
///
/// Lives outside [`Cpu`] (which stays pure architectural state, `Clone` +
/// `PartialEq`); the embedder threads it through its step loop.
#[derive(Debug, Default)]
pub struct DecodeCache {
    pages: Vec<Page>,
    /// Index of the most recently used page: straight-line code stays on
    /// this fast path and never searches.
    last: usize,
    hits: u64,
    fills: u64,
}

impl DecodeCache {
    /// Creates an empty cache.
    pub fn new() -> DecodeCache {
        DecodeCache::default()
    }

    /// Executes one instruction through the cache.
    ///
    /// Semantically identical to `cpu.step(bus)`; see the module docs for
    /// the case analysis.
    ///
    /// # Errors
    ///
    /// Returns exactly the [`Trap`] an uncached [`Cpu::step`] would.
    pub fn step<B: Bus>(&mut self, cpu: &mut Cpu, bus: &mut B) -> Result<StepOutcome, Trap> {
        let pc = cpu.pc;
        if pc & 3 != 0 {
            // Word-indexed slots cannot represent a misaligned PC; the
            // uncached path reports whatever the bus does.
            return cpu.step(bus);
        }
        match self.lookup(pc, bus) {
            Slot::Decoded(inst) => cpu.exec_decoded(bus, inst),
            Slot::Illegal(word) => Err(Trap::IllegalInstruction { word, pc }),
            Slot::Unmapped => cpu.step(bus),
        }
    }

    /// Drops the cached page covering `addr`, if any.
    ///
    /// Must be called for every guest-memory write; naturally-aligned
    /// accesses of at most 8 bytes cannot cross a page, so a single page
    /// drop covers any store the interpreter can issue.
    pub fn invalidate(&mut self, addr: u64) {
        let base = addr & !(PAGE_SIZE - 1);
        if let Some(i) = self.pages.iter().position(|p| p.base == base) {
            self.pages.swap_remove(i);
            self.last = 0;
        }
    }

    /// Drops every cached page overlapping `[addr, addr + len)`.
    pub fn invalidate_range(&mut self, addr: u64, len: usize) {
        if len == 0 {
            return;
        }
        let first = addr & !(PAGE_SIZE - 1);
        let last = addr.saturating_add(len as u64 - 1) & !(PAGE_SIZE - 1);
        self.pages.retain(|p| p.base < first || p.base > last);
        self.last = 0;
    }

    /// Drops every cached page (e.g. after remapping bus regions).
    pub fn clear(&mut self) {
        self.pages.clear();
        self.last = 0;
    }

    /// `(cache hits, page fills)` since creation, for diagnostics.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.fills)
    }

    fn lookup<B: Bus>(&mut self, pc: u64, bus: &mut B) -> Slot {
        let base = pc & !(PAGE_SIZE - 1);
        let slot_index = ((pc - base) / 4) as usize;
        if let Some(p) = self.pages.get(self.last) {
            if p.base == base {
                self.hits += 1;
                return p.slots[slot_index];
            }
        }
        if let Some(i) = self.pages.iter().position(|p| p.base == base) {
            self.last = i;
            self.hits += 1;
            return self.pages[i].slots[slot_index];
        }
        if self.pages.len() >= MAX_PAGES {
            self.clear();
        }
        self.fills += 1;
        let page = fill_page(base, bus);
        let slot = page.slots[slot_index];
        self.last = self.pages.len();
        self.pages.push(page);
        slot
    }
}

/// Decodes every word of the page at `base` in one pass.
fn fill_page<B: Bus>(base: u64, bus: &mut B) -> Page {
    let mut slots = Vec::with_capacity(SLOTS_PER_PAGE);
    for i in 0..SLOTS_PER_PAGE {
        let addr = base + 4 * i as u64;
        let slot = match bus.fetch(addr) {
            Ok(word) => match crate::decode::decode(word) {
                Ok(inst) => Slot::Decoded(inst),
                Err(e) => Slot::Illegal(e.word),
            },
            Err(_) => Slot::Unmapped,
        };
        slots.push(slot);
    }
    Page { base, slots }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use crate::inst::{AluImmOp, AluOp, BranchCond, MemWidth, Reg};
    use crate::mem::FlatMemory;

    fn program(insts: &[Inst]) -> FlatMemory {
        let mut m = FlatMemory::new(1 << 16);
        for (i, inst) in insts.iter().enumerate() {
            let w = encode(inst).unwrap();
            m.store(4 * i as u64, 4, w as u64).unwrap();
        }
        m
    }

    /// Runs the same program cached and uncached; every outcome, trap, and
    /// the final architectural state must match exactly.
    fn lockstep(mem: &FlatMemory, steps: usize) {
        let mut cold_mem = mem.clone();
        let mut hot_mem = mem.clone();
        let mut cold = Cpu::new(0);
        let mut hot = Cpu::new(0);
        let mut cache = DecodeCache::new();
        for _ in 0..steps {
            let a = cold.step(&mut cold_mem);
            let b = cache.step(&mut hot, &mut hot_mem);
            assert_eq!(a, b);
            assert_eq!(cold, hot);
            if let Ok(StepOutcome::Retired(r)) = a {
                if let crate::interp::RetireKind::Store { addr } = r.kind {
                    cache.invalidate(addr);
                }
            }
            if a.is_err() || matches!(a, Ok(StepOutcome::Ecall | StepOutcome::Ebreak)) {
                break;
            }
        }
        assert_eq!(cold_mem, hot_mem);
    }

    #[test]
    fn cached_loop_matches_uncached() {
        let mem = program(&[
            Inst::AluImm {
                op: AluImmOp::Addi,
                rd: Reg::T0,
                rs1: Reg::ZERO,
                imm: 10,
            },
            Inst::AluImm {
                op: AluImmOp::Addi,
                rd: Reg::A0,
                rs1: Reg::ZERO,
                imm: 0,
            },
            Inst::Alu {
                op: AluOp::Add,
                rd: Reg::A0,
                rs1: Reg::A0,
                rs2: Reg::T0,
            },
            Inst::AluImm {
                op: AluImmOp::Addi,
                rd: Reg::T0,
                rs1: Reg::T0,
                imm: -1,
            },
            Inst::Branch {
                cond: BranchCond::Ne,
                rs1: Reg::T0,
                rs2: Reg::ZERO,
                offset: -8,
            },
            Inst::Ecall,
        ]);
        lockstep(&mem, 10_000);
    }

    #[test]
    fn illegal_word_traps_identically() {
        let mut mem = FlatMemory::new(1 << 12);
        mem.store(0, 4, 0xffff_ffff).unwrap();
        lockstep(&mem, 4);
    }

    #[test]
    fn fetch_fault_matches_uncached() {
        // Jump straight past the end of memory: the cached path must
        // surface the identical FetchFault.
        let mem = program(&[Inst::Jal {
            rd: Reg::ZERO,
            offset: 0x2_0000,
        }]);
        lockstep(&mem, 4);
    }

    #[test]
    fn self_modifying_store_is_observed_after_invalidate() {
        // Overwrite the instruction at 0x10 (an ebreak) with an ecall, then
        // fall through into it. With per-store invalidation the cached run
        // must execute the *new* word.
        let ecall_word = encode(&Inst::Ecall).unwrap() as u64;
        let mem = program(&[
            // t0 = ecall encoding (it fits in 12 bits: 0x73)
            Inst::AluImm {
                op: AluImmOp::Addi,
                rd: Reg::T0,
                rs1: Reg::ZERO,
                imm: ecall_word as i64,
            },
            Inst::Store {
                width: MemWidth::W,
                rs2: Reg::T0,
                rs1: Reg::ZERO,
                offset: 0x10,
            },
            Inst::Fence,
            Inst::Fence,
            Inst::Ebreak, // at 0x10: patched to ecall before execution
        ]);
        assert!(ecall_word <= 0x7ff);
        lockstep(&mem, 16);
    }

    #[test]
    fn invalidate_range_drops_overlapping_pages() {
        let mut mem = program(&[Inst::Fence, Inst::Ecall]);
        let mut cpu = Cpu::new(0);
        let mut cache = DecodeCache::new();
        cache.step(&mut cpu, &mut mem).unwrap();
        assert_eq!(cache.stats().1, 1);
        cache.invalidate_range(0, PAGE_SIZE as usize * 2);
        cache.step(&mut cpu, &mut mem).unwrap();
        assert_eq!(cache.stats().1, 2, "range invalidation must refill");
    }

    #[test]
    fn misaligned_pc_falls_back() {
        let mut mem = program(&[Inst::Jalr {
            rd: Reg::ZERO,
            rs1: Reg::ZERO,
            offset: 0x102, // jalr clears only bit 0; pc 0x102 stays misaligned
        }]);
        let mut cold = Cpu::new(0);
        let mut hot = Cpu::new(0);
        let mut cold_mem = mem.clone();
        let mut cache = DecodeCache::new();
        for _ in 0..2 {
            let a = cold.step(&mut cold_mem);
            let b = cache.step(&mut hot, &mut mem);
            assert_eq!(a, b);
            assert_eq!(cold, hot);
        }
    }
}
