//! Memory abstractions used by the interpreter.
//!
//! The interpreter is generic over a [`Bus`], letting the functional
//! simulators attach MMIO devices (UART, block device, PFA, NIC) while tests
//! and user-mode execution use a simple [`FlatMemory`].

use crate::interp::Trap;

/// A byte-addressable memory bus.
///
/// Implementors provide naturally-aligned little-endian accesses of 1, 2, 4
/// or 8 bytes. The interpreter performs all alignment checks before calling
/// into the bus, so implementations may assume `size` divides `addr` only if
/// they care about alignment themselves.
pub trait Bus {
    /// Loads `size` bytes (1, 2, 4, or 8) at `addr`, zero-extended into a `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::LoadFault`] when the address is unmapped.
    fn load(&mut self, addr: u64, size: usize) -> Result<u64, Trap>;

    /// Stores the low `size` bytes of `value` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::StoreFault`] when the address is unmapped or read-only.
    fn store(&mut self, addr: u64, size: usize, value: u64) -> Result<(), Trap>;

    /// Fetches a 32-bit instruction word at `addr`.
    ///
    /// The default implementation issues a 4-byte load; devices may override
    /// to fault on execution from MMIO space.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::FetchFault`] (or a load fault) when unmapped.
    fn fetch(&mut self, addr: u64) -> Result<u32, Trap> {
        self.load(addr, 4).map(|v| v as u32).map_err(|t| match t {
            Trap::LoadFault { addr } => Trap::FetchFault { addr },
            other => other,
        })
    }
}

/// A flat, zero-initialised RAM starting at a configurable base address.
///
/// ```rust
/// use marshal_isa::mem::{Bus, FlatMemory};
/// let mut m = FlatMemory::new(4096);
/// m.store(16, 8, 0xdead_beef).unwrap();
/// assert_eq!(m.load(16, 8).unwrap(), 0xdead_beef);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatMemory {
    base: u64,
    data: Vec<u8>,
}

impl FlatMemory {
    /// Creates a memory of `size` bytes based at address 0.
    pub fn new(size: usize) -> FlatMemory {
        FlatMemory::with_base(0, size)
    }

    /// Creates a memory of `size` bytes based at `base`.
    pub fn with_base(base: u64, size: usize) -> FlatMemory {
        FlatMemory {
            base,
            data: vec![0; size],
        }
    }

    /// The base address of the mapped range.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The size of the mapped range in bytes.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Whether `[addr, addr+len)` lies entirely within this memory.
    pub fn contains(&self, addr: u64, len: usize) -> bool {
        addr >= self.base && addr.saturating_add(len as u64) <= self.base + self.data.len() as u64
    }

    fn offset(&self, addr: u64, len: usize) -> Option<usize> {
        if self.contains(addr, len) {
            Some((addr - self.base) as usize)
        } else {
            None
        }
    }

    /// Copies `bytes` into memory starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::StoreFault`] if the range is not fully mapped.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) -> Result<(), Trap> {
        let off = self
            .offset(addr, bytes.len())
            .ok_or(Trap::StoreFault { addr })?;
        self.data[off..off + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Reads `len` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::LoadFault`] if the range is not fully mapped.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Result<&[u8], Trap> {
        let off = self.offset(addr, len).ok_or(Trap::LoadFault { addr })?;
        Ok(&self.data[off..off + len])
    }

    /// Reads a NUL-terminated string starting at `addr` (at most `max` bytes).
    ///
    /// # Errors
    ///
    /// Returns [`Trap::LoadFault`] if the scan runs off mapped memory before
    /// finding a terminator.
    pub fn read_cstr(&self, addr: u64, max: usize) -> Result<String, Trap> {
        let mut out = Vec::new();
        for i in 0..max {
            let b = self.read_bytes(addr + i as u64, 1)?[0];
            if b == 0 {
                break;
            }
            out.push(b);
        }
        Ok(String::from_utf8_lossy(&out).into_owned())
    }
}

impl Bus for FlatMemory {
    fn load(&mut self, addr: u64, size: usize) -> Result<u64, Trap> {
        let off = self.offset(addr, size).ok_or(Trap::LoadFault { addr })?;
        let mut v = 0u64;
        for (i, b) in self.data[off..off + size].iter().enumerate() {
            v |= (*b as u64) << (8 * i);
        }
        Ok(v)
    }

    fn store(&mut self, addr: u64, size: usize, value: u64) -> Result<(), Trap> {
        let off = self.offset(addr, size).ok_or(Trap::StoreFault { addr })?;
        for i in 0..size {
            self.data[off + i] = (value >> (8 * i)) as u8;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn little_endian_roundtrip() {
        let mut m = FlatMemory::new(64);
        m.store(0, 4, 0x0403_0201).unwrap();
        assert_eq!(m.load(0, 1).unwrap(), 0x01);
        assert_eq!(m.load(1, 1).unwrap(), 0x02);
        assert_eq!(m.load(0, 2).unwrap(), 0x0201);
        assert_eq!(m.load(0, 8).unwrap(), 0x0403_0201);
    }

    #[test]
    fn based_memory_faults_outside_range() {
        let mut m = FlatMemory::with_base(0x8000_0000, 1024);
        assert!(m.load(0, 4).is_err());
        assert!(m.store(0x8000_0000 + 1021, 4, 0).is_err());
        assert!(m.store(0x8000_0000, 8, 42).is_ok());
        assert_eq!(m.load(0x8000_0000, 8).unwrap(), 42);
    }

    #[test]
    fn cstr_read() {
        let mut m = FlatMemory::new(64);
        m.write_bytes(8, b"hello\0world").unwrap();
        assert_eq!(m.read_cstr(8, 64).unwrap(), "hello");
    }

    #[test]
    fn fetch_converts_fault_kind() {
        let mut m = FlatMemory::new(16);
        match m.fetch(1024) {
            Err(Trap::FetchFault { addr }) => assert_eq!(addr, 1024),
            other => panic!("unexpected {other:?}"),
        }
    }
}
