//! Memory abstractions used by the interpreter.
//!
//! The interpreter is generic over a [`Bus`], letting the functional
//! simulators attach MMIO devices (UART, block device, PFA, NIC) while tests
//! and user-mode execution use a simple [`FlatMemory`].

use crate::interp::Trap;

/// A byte-addressable memory bus.
///
/// Implementors provide naturally-aligned little-endian accesses of 1, 2, 4
/// or 8 bytes. The interpreter performs all alignment checks before calling
/// into the bus, so implementations may assume `size` divides `addr` only if
/// they care about alignment themselves.
pub trait Bus {
    /// Loads `size` bytes (1, 2, 4, or 8) at `addr`, zero-extended into a `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::LoadFault`] when the address is unmapped.
    fn load(&mut self, addr: u64, size: usize) -> Result<u64, Trap>;

    /// Stores the low `size` bytes of `value` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::StoreFault`] when the address is unmapped or read-only.
    fn store(&mut self, addr: u64, size: usize, value: u64) -> Result<(), Trap>;

    /// Fetches a 32-bit instruction word at `addr`.
    ///
    /// The default implementation issues a 4-byte load; devices may override
    /// to fault on execution from MMIO space.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::FetchFault`] (or a load fault) when unmapped.
    fn fetch(&mut self, addr: u64) -> Result<u32, Trap> {
        self.load(addr, 4).map(|v| v as u32).map_err(|t| match t {
            Trap::LoadFault { addr } => Trap::FetchFault { addr },
            other => other,
        })
    }
}

/// A flat, zero-initialised RAM starting at a configurable base address.
///
/// ```rust
/// use marshal_isa::mem::{Bus, FlatMemory};
/// let mut m = FlatMemory::new(4096);
/// m.store(16, 8, 0xdead_beef).unwrap();
/// assert_eq!(m.load(16, 8).unwrap(), 0xdead_beef);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatMemory {
    base: u64,
    data: Vec<u8>,
}

impl FlatMemory {
    /// Creates a memory of `size` bytes based at address 0.
    pub fn new(size: usize) -> FlatMemory {
        FlatMemory::with_base(0, size)
    }

    /// Creates a memory of `size` bytes based at `base`.
    pub fn with_base(base: u64, size: usize) -> FlatMemory {
        FlatMemory {
            base,
            data: vec![0; size],
        }
    }

    /// The base address of the mapped range.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The size of the mapped range in bytes.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Whether `[addr, addr+len)` lies entirely within this memory.
    pub fn contains(&self, addr: u64, len: usize) -> bool {
        addr >= self.base && addr.saturating_add(len as u64) <= self.base + self.data.len() as u64
    }

    fn offset(&self, addr: u64, len: usize) -> Option<usize> {
        if self.contains(addr, len) {
            Some((addr - self.base) as usize)
        } else {
            None
        }
    }

    /// Copies `bytes` into memory starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::StoreFault`] if the range is not fully mapped.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) -> Result<(), Trap> {
        let off = self
            .offset(addr, bytes.len())
            .ok_or(Trap::StoreFault { addr })?;
        self.data[off..off + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Reads `len` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::LoadFault`] if the range is not fully mapped.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Result<&[u8], Trap> {
        let off = self.offset(addr, len).ok_or(Trap::LoadFault { addr })?;
        Ok(&self.data[off..off + len])
    }

    /// Reads a NUL-terminated string starting at `addr` (at most `max` bytes).
    ///
    /// # Errors
    ///
    /// Returns [`Trap::LoadFault`] if the scan runs off mapped memory before
    /// finding a terminator.
    pub fn read_cstr(&self, addr: u64, max: usize) -> Result<String, Trap> {
        let mut out = Vec::new();
        for i in 0..max {
            let b = self.read_bytes(addr + i as u64, 1)?[0];
            if b == 0 {
                break;
            }
            out.push(b);
        }
        Ok(String::from_utf8_lossy(&out).into_owned())
    }
}

impl Bus for FlatMemory {
    fn load(&mut self, addr: u64, size: usize) -> Result<u64, Trap> {
        let off = self.offset(addr, size).ok_or(Trap::LoadFault { addr })?;
        let mut v = 0u64;
        for (i, b) in self.data[off..off + size].iter().enumerate() {
            v |= (*b as u64) << (8 * i);
        }
        Ok(v)
    }

    fn store(&mut self, addr: u64, size: usize, value: u64) -> Result<(), Trap> {
        let off = self.offset(addr, size).ok_or(Trap::StoreFault { addr })?;
        for i in 0..size {
            self.data[off + i] = (value >> (8 * i)) as u8;
        }
        Ok(())
    }
}

/// Writable byte memory, as seen by program loaders ([`crate::MexeFile`]).
///
/// Both [`FlatMemory`] and [`PagedMemory`] implement it, so loaders work
/// against either backing.
pub trait MemWrite {
    /// Copies `bytes` into memory starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::StoreFault`] if the range is not fully mapped.
    fn write_bytes(&mut self, addr: u64, bytes: &[u8]) -> Result<(), Trap>;
}

impl MemWrite for FlatMemory {
    fn write_bytes(&mut self, addr: u64, bytes: &[u8]) -> Result<(), Trap> {
        FlatMemory::write_bytes(self, addr, bytes)
    }
}

const PAGE_SHIFT: u32 = 12;
const PAGE_BYTES: usize = 1 << PAGE_SHIFT;

/// A sparse, demand-paged RAM: address space is reserved up front, but a
/// 4 KiB page is only allocated (zeroed) on its first store.
///
/// [`FlatMemory`] zeroes its whole range at construction, which makes it
/// the wrong backing for short-lived address spaces: every guest `exec`
/// would pay a multi-megabyte memset for a program that touches a few
/// pages. `PagedMemory` makes construction O(pages-table) and each launch
/// pays only for the pages it actually dirties; unallocated pages read as
/// zero, exactly like the flat backing.
///
/// ```rust
/// use marshal_isa::mem::{Bus, PagedMemory};
/// let mut m = PagedMemory::new(8 << 20);
/// assert_eq!(m.load(0x10_0000, 8).unwrap(), 0); // untouched reads zero
/// m.store(0x10_0000, 8, 0xdead_beef).unwrap();
/// assert_eq!(m.load(0x10_0000, 8).unwrap(), 0xdead_beef);
/// ```
#[derive(Debug, Clone)]
pub struct PagedMemory {
    base: u64,
    size: usize,
    pages: Vec<Option<Box<[u8; PAGE_BYTES]>>>,
}

impl PagedMemory {
    /// Creates a memory of `size` bytes based at address 0.
    pub fn new(size: usize) -> PagedMemory {
        PagedMemory::with_base(0, size)
    }

    /// Creates a memory of `size` bytes based at `base`.
    pub fn with_base(base: u64, size: usize) -> PagedMemory {
        let mut pages = Vec::new();
        pages.resize_with(size.div_ceil(PAGE_BYTES), || None);
        PagedMemory { base, size, pages }
    }

    /// The base address of the mapped range.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The size of the mapped range in bytes.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The number of pages actually allocated so far.
    pub fn resident_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }

    /// Whether `[addr, addr+len)` lies entirely within this memory.
    pub fn contains(&self, addr: u64, len: usize) -> bool {
        addr >= self.base && addr.saturating_add(len as u64) <= self.base + self.size as u64
    }

    /// Reads `len` bytes starting at `addr`; unallocated pages read zero.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::LoadFault`] if the range is not fully mapped.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Result<Vec<u8>, Trap> {
        if !self.contains(addr, len) {
            return Err(Trap::LoadFault { addr });
        }
        let mut out = vec![0u8; len];
        let mut off = (addr - self.base) as usize;
        let mut done = 0;
        while done < len {
            let page = off >> PAGE_SHIFT;
            let in_page = off & (PAGE_BYTES - 1);
            let chunk = (PAGE_BYTES - in_page).min(len - done);
            if let Some(p) = &self.pages[page] {
                out[done..done + chunk].copy_from_slice(&p[in_page..in_page + chunk]);
            }
            off += chunk;
            done += chunk;
        }
        Ok(out)
    }

    fn page_mut(&mut self, index: usize) -> &mut [u8; PAGE_BYTES] {
        self.pages[index].get_or_insert_with(|| Box::new([0u8; PAGE_BYTES]))
    }
}

impl MemWrite for PagedMemory {
    fn write_bytes(&mut self, addr: u64, bytes: &[u8]) -> Result<(), Trap> {
        if !self.contains(addr, bytes.len()) {
            return Err(Trap::StoreFault { addr });
        }
        let mut off = (addr - self.base) as usize;
        let mut done = 0;
        while done < bytes.len() {
            let page = off >> PAGE_SHIFT;
            let in_page = off & (PAGE_BYTES - 1);
            let chunk = (PAGE_BYTES - in_page).min(bytes.len() - done);
            self.page_mut(page)[in_page..in_page + chunk]
                .copy_from_slice(&bytes[done..done + chunk]);
            off += chunk;
            done += chunk;
        }
        Ok(())
    }
}

impl Bus for PagedMemory {
    fn load(&mut self, addr: u64, size: usize) -> Result<u64, Trap> {
        if !self.contains(addr, size) {
            return Err(Trap::LoadFault { addr });
        }
        let off = (addr - self.base) as usize;
        let in_page = off & (PAGE_BYTES - 1);
        let mut v = 0u64;
        if in_page + size <= PAGE_BYTES {
            // Fast path: a naturally-aligned access never crosses a page.
            if let Some(p) = &self.pages[off >> PAGE_SHIFT] {
                for (i, b) in p[in_page..in_page + size].iter().enumerate() {
                    v |= (*b as u64) << (8 * i);
                }
            }
        } else {
            for (i, b) in self.read_bytes(addr, size)?.iter().enumerate() {
                v |= (*b as u64) << (8 * i);
            }
        }
        Ok(v)
    }

    fn store(&mut self, addr: u64, size: usize, value: u64) -> Result<(), Trap> {
        if !self.contains(addr, size) {
            return Err(Trap::StoreFault { addr });
        }
        let off = (addr - self.base) as usize;
        let in_page = off & (PAGE_BYTES - 1);
        if in_page + size <= PAGE_BYTES {
            let p = self.page_mut(off >> PAGE_SHIFT);
            for i in 0..size {
                p[in_page + i] = (value >> (8 * i)) as u8;
            }
            Ok(())
        } else {
            let bytes: Vec<u8> = (0..size).map(|i| (value >> (8 * i)) as u8).collect();
            self.write_bytes(addr, &bytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn little_endian_roundtrip() {
        let mut m = FlatMemory::new(64);
        m.store(0, 4, 0x0403_0201).unwrap();
        assert_eq!(m.load(0, 1).unwrap(), 0x01);
        assert_eq!(m.load(1, 1).unwrap(), 0x02);
        assert_eq!(m.load(0, 2).unwrap(), 0x0201);
        assert_eq!(m.load(0, 8).unwrap(), 0x0403_0201);
    }

    #[test]
    fn based_memory_faults_outside_range() {
        let mut m = FlatMemory::with_base(0x8000_0000, 1024);
        assert!(m.load(0, 4).is_err());
        assert!(m.store(0x8000_0000 + 1021, 4, 0).is_err());
        assert!(m.store(0x8000_0000, 8, 42).is_ok());
        assert_eq!(m.load(0x8000_0000, 8).unwrap(), 42);
    }

    #[test]
    fn cstr_read() {
        let mut m = FlatMemory::new(64);
        m.write_bytes(8, b"hello\0world").unwrap();
        assert_eq!(m.read_cstr(8, 64).unwrap(), "hello");
    }

    #[test]
    fn fetch_converts_fault_kind() {
        let mut m = FlatMemory::new(16);
        match m.fetch(1024) {
            Err(Trap::FetchFault { addr }) => assert_eq!(addr, 1024),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn paged_matches_flat_for_every_access_shape() {
        let mut flat = FlatMemory::with_base(0x1000, 3 * PAGE_BYTES);
        let mut paged = PagedMemory::with_base(0x1000, 3 * PAGE_BYTES);
        // Writes at page starts, ends, and straddling both boundaries.
        let probes: &[(u64, usize, u64)] = &[
            (0x1000, 8, 0x0102_0304_0506_0708),
            (0x1000 + PAGE_BYTES as u64 - 4, 8, 0xdead_beef_cafe_f00d), // page straddle
            (0x1000 + 2 * PAGE_BYTES as u64 - 1, 2, 0xbeef),            // page straddle
            (0x1000 + PAGE_BYTES as u64, 1, 0xff),
        ];
        for &(addr, size, value) in probes {
            flat.store(addr, size, value).unwrap();
            paged.store(addr, size, value).unwrap();
        }
        for &(addr, size, _) in probes {
            assert_eq!(
                flat.load(addr, size).unwrap(),
                paged.load(addr, size).unwrap()
            );
        }
        // Untouched memory reads zero on both.
        assert_eq!(paged.load(0x1000 + 64, 8).unwrap(), 0);
        assert_eq!(flat.load(0x1000 + 64, 8).unwrap(), 0);
        // Out-of-range faults agree.
        assert!(paged.load(0x0, 4).is_err());
        assert!(paged
            .store(0x1000 + 3 * PAGE_BYTES as u64 - 2, 4, 0)
            .is_err());
    }

    #[test]
    fn paged_is_demand_allocated() {
        let mut m = PagedMemory::new(8 << 20);
        assert_eq!(m.resident_pages(), 0);
        m.store(0, 8, 1).unwrap();
        m.store((4 << 20) + 7, 1, 2).unwrap();
        assert_eq!(m.resident_pages(), 2);
        // Reads never allocate.
        assert_eq!(m.load(1 << 20, 8).unwrap(), 0);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn paged_bulk_writes_cross_pages() {
        let mut m = PagedMemory::new(4 * PAGE_BYTES);
        let data: Vec<u8> = (0..(PAGE_BYTES + 512)).map(|i| (i % 251) as u8).collect();
        m.write_bytes(PAGE_BYTES as u64 - 100, &data).unwrap();
        assert_eq!(
            m.read_bytes(PAGE_BYTES as u64 - 100, data.len()).unwrap(),
            data
        );
        assert!(m.write_bytes(4 * PAGE_BYTES as u64 - 1, &[0, 0]).is_err());
        assert!(m.read_bytes(4 * PAGE_BYTES as u64, 1).is_err());
    }
}
