//! A two-pass RV64IM assembler.
//!
//! Supports the standard directive set (`.text`, `.data`, `.global`,
//! `.align`, `.byte`/`.half`/`.word`/`.dword`, `.ascii`/`.asciiz`/`.string`,
//! `.space`, `.equ`), labels, the common pseudo-instructions (`li`, `la`,
//! `mv`, `j`, `call`, `ret`, `beqz`, `rdcycle`, ...), and character/hex/
//! binary literals. Output is a deterministic [`MexeFile`].
//!
//! This is the "cross-compiler" of the reproduction: workload `host-init`
//! hooks call into it the way the paper's workloads called Speckle/GCC.

use std::collections::BTreeMap;
use std::fmt;

use crate::encode::encode;
use crate::inst::{csr, AluImmOp, AluOp, BranchCond, CsrOp, Inst, MemWidth, Reg};
use crate::mexe::MexeFile;

/// Error produced while assembling, with a 1-based source line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl AsmError {
    fn new(line: usize, message: impl Into<String>) -> AsmError {
        AsmError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "asm error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

#[derive(Debug, Clone)]
enum Operand {
    Reg(Reg),
    Imm(i64),
    Sym(String),
    /// `offset(base)` memory operand.
    Mem(i64, Reg),
}

#[derive(Debug, Clone)]
enum Item {
    Label(String),
    Inst {
        mnemonic: String,
        ops: Vec<Operand>,
    },
    Bytes(Vec<u8>),
    /// `.word`/`.dword` entries that may reference symbols.
    Words {
        size: usize,
        values: Vec<DataValue>,
    },
    Align(u64),
    Space(usize, u8),
}

#[derive(Debug, Clone)]
enum DataValue {
    Imm(i64),
    Sym(String),
}

#[derive(Debug, Clone)]
struct SourceItem {
    line: usize,
    section: Section,
    item: Item,
}

/// Assembles `source` into a [`MexeFile`] with its text section at `base`.
///
/// The data section is placed at the next 4 KiB boundary after the text
/// section. The entry point is the `_start` symbol if defined, otherwise
/// `base`.
///
/// # Errors
///
/// Returns [`AsmError`] (with a line number) for syntax errors, unknown
/// mnemonics or registers, undefined or duplicate labels, and out-of-range
/// immediates.
///
/// ```rust
/// # use marshal_isa::asm::assemble;
/// let exe = assemble(".text\n_start: li a0, 7\n ecall\n", 0x1_0000)?;
/// assert_eq!(exe.entry(), 0x1_0000);
/// # Ok::<(), marshal_isa::asm::AsmError>(())
/// ```
pub fn assemble(source: &str, base: u64) -> Result<MexeFile, AsmError> {
    let items = parse(source)?;
    layout_and_encode(&items, base)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse(source: &str) -> Result<Vec<SourceItem>, AsmError> {
    let mut items = Vec::new();
    let mut section = Section::Text;
    let mut equs: BTreeMap<String, i64> = BTreeMap::new();
    for (idx, raw_line) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw_line).trim().to_owned();
        if line.is_empty() {
            continue;
        }
        let mut rest: &str = &line;
        // Leading labels (possibly several).
        while let Some(colon) = find_label_colon(rest) {
            let name = rest[..colon].trim();
            if !is_ident(name) {
                break;
            }
            items.push(SourceItem {
                line: line_no,
                section,
                item: Item::Label(name.to_owned()),
            });
            rest = rest[colon + 1..].trim_start();
        }
        if rest.is_empty() {
            continue;
        }
        if let Some(dir) = rest.strip_prefix('.') {
            parse_directive(dir, line_no, &mut section, &mut items, &mut equs)?;
        } else {
            let (mnemonic, ops_str) = match rest.find(char::is_whitespace) {
                Some(sp) => (&rest[..sp], rest[sp..].trim()),
                None => (rest, ""),
            };
            let ops = parse_operands(ops_str, line_no, &equs)?;
            items.push(SourceItem {
                line: line_no,
                section,
                item: Item::Inst {
                    mnemonic: mnemonic.to_ascii_lowercase(),
                    ops,
                },
            });
        }
    }
    Ok(items)
}

fn strip_comment(line: &str) -> &str {
    // Respect string literals when searching for `#` / `//`.
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => in_str = !in_str,
            b'\\' if in_str => i += 1,
            b'#' if !in_str => return &line[..i],
            b'/' if !in_str && i + 1 < bytes.len() && bytes[i + 1] == b'/' => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

fn find_label_colon(s: &str) -> Option<usize> {
    let colon = s.find(':')?;
    // Not inside a string literal and not part of an operand list.
    if s[..colon].contains('"') || s[..colon].contains(char::is_whitespace) {
        return None;
    }
    Some(colon)
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_' || c == '.')
        && s.chars()
            .all(|c| c.is_alphanumeric() || c == '_' || c == '.' || c == '$')
}

fn parse_directive(
    dir: &str,
    line: usize,
    section: &mut Section,
    items: &mut Vec<SourceItem>,
    equs: &mut BTreeMap<String, i64>,
) -> Result<(), AsmError> {
    let (name, args) = match dir.find(char::is_whitespace) {
        Some(sp) => (&dir[..sp], dir[sp..].trim()),
        None => (dir, ""),
    };
    let push = |items: &mut Vec<SourceItem>, section: Section, item: Item| {
        items.push(SourceItem {
            line,
            section,
            item,
        })
    };
    match name {
        "text" => *section = Section::Text,
        "data" | "rodata" | "bss" => *section = Section::Data,
        "global" | "globl" => { /* all symbols are exported in MEXE */ }
        "align" => {
            let n = parse_int(args, line, equs)?;
            if !(0..=16).contains(&n) {
                return Err(AsmError::new(line, format!(".align {n} out of range")));
            }
            push(items, *section, Item::Align(1u64 << n));
        }
        "byte" | "half" | "word" | "dword" | "quad" => {
            let size = match name {
                "byte" => 1,
                "half" => 2,
                "word" => 4,
                _ => 8,
            };
            let mut values = Vec::new();
            for part in split_args(args) {
                let part = part.trim();
                if let Ok(v) = parse_int(part, line, equs) {
                    values.push(DataValue::Imm(v));
                } else if is_ident(part) {
                    values.push(DataValue::Sym(part.to_owned()));
                } else {
                    return Err(AsmError::new(line, format!("bad data value `{part}`")));
                }
            }
            push(items, *section, Item::Words { size, values });
        }
        "ascii" | "asciiz" | "string" => {
            let mut bytes = parse_string(args, line)?;
            if name != "ascii" {
                bytes.push(0);
            }
            push(items, *section, Item::Bytes(bytes));
        }
        "space" | "zero" | "skip" => {
            let parts: Vec<&str> = split_args(args);
            if parts.is_empty() {
                return Err(AsmError::new(line, ".space needs a size"));
            }
            let n = parse_int(parts[0].trim(), line, equs)?;
            let fill = if parts.len() > 1 {
                parse_int(parts[1].trim(), line, equs)? as u8
            } else {
                0
            };
            if n < 0 {
                return Err(AsmError::new(line, ".space size must be non-negative"));
            }
            push(items, *section, Item::Space(n as usize, fill));
        }
        "equ" | "set" => {
            let parts: Vec<&str> = split_args(args);
            if parts.len() != 2 {
                return Err(AsmError::new(line, ".equ needs `name, value`"));
            }
            let name = parts[0].trim();
            if !is_ident(name) {
                return Err(AsmError::new(line, format!("bad .equ name `{name}`")));
            }
            let value = parse_int(parts[1].trim(), line, equs)?;
            equs.insert(name.to_owned(), value);
        }
        "section" => {
            // .section .text / .section .data.foo — map by prefix.
            *section = if args.trim_start_matches('.').starts_with("text") {
                Section::Text
            } else {
                Section::Data
            };
        }
        _ => {
            return Err(AsmError::new(line, format!("unknown directive .{name}")));
        }
    }
    Ok(())
}

/// Splits a comma-separated operand list, respecting string literals and
/// parentheses.
fn split_args(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let bytes = s.as_bytes();
    let mut depth = 0i32;
    let mut in_str = false;
    let mut start = 0;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => in_str = !in_str,
            b'\\' if in_str => i += 1,
            b'(' if !in_str => depth += 1,
            b')' if !in_str => depth -= 1,
            b',' if !in_str && depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    if start < s.len() || !out.is_empty() {
        out.push(&s[start..]);
    } else if !s.trim().is_empty() {
        out.push(s);
    }
    out.retain(|p| !p.trim().is_empty());
    out
}

fn parse_string(s: &str, line: usize) -> Result<Vec<u8>, AsmError> {
    let s = s.trim();
    if !(s.starts_with('"') && s.ends_with('"') && s.len() >= 2) {
        return Err(AsmError::new(line, "expected a double-quoted string"));
    }
    let inner = &s[1..s.len() - 1];
    let mut out = Vec::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push(b'\n'),
                Some('t') => out.push(b'\t'),
                Some('r') => out.push(b'\r'),
                Some('0') => out.push(0),
                Some('\\') => out.push(b'\\'),
                Some('"') => out.push(b'"'),
                other => {
                    return Err(AsmError::new(line, format!("bad escape `\\{other:?}`")));
                }
            }
        } else {
            let mut buf = [0u8; 4];
            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
        }
    }
    Ok(out)
}

fn parse_int(s: &str, line: usize, equs: &BTreeMap<String, i64>) -> Result<i64, AsmError> {
    let s = s.trim();
    if let Some(v) = equs.get(s) {
        return Ok(*v);
    }
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let body = body.trim();
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(&hex.replace('_', ""), 16)
            .ok()
            .or_else(|| {
                u64::from_str_radix(&hex.replace('_', ""), 16)
                    .ok()
                    .map(|v| v as i64)
            })
    } else if let Some(bin) = body.strip_prefix("0b").or_else(|| body.strip_prefix("0B")) {
        i64::from_str_radix(&bin.replace('_', ""), 2).ok()
    } else if body.starts_with('\'') && body.ends_with('\'') && body.len() >= 3 {
        let inner = &body[1..body.len() - 1];
        let c = match inner {
            "\\n" => '\n',
            "\\t" => '\t',
            "\\0" => '\0',
            "\\\\" => '\\',
            _ => inner.chars().next().unwrap(),
        };
        Some(c as i64)
    } else {
        // Parse the full signed literal directly so i64::MIN works.
        return s
            .replace('_', "")
            .parse::<i64>()
            .map_err(|_| AsmError::new(line, format!("bad integer `{s}`")));
    };
    match value {
        Some(v) => Ok(if neg { v.wrapping_neg() } else { v }),
        None => Err(AsmError::new(line, format!("bad integer `{s}`"))),
    }
}

fn parse_operands(
    s: &str,
    line: usize,
    equs: &BTreeMap<String, i64>,
) -> Result<Vec<Operand>, AsmError> {
    let mut ops = Vec::new();
    for part in split_args(s) {
        let part = part.trim();
        if let Some(r) = Reg::parse(part) {
            ops.push(Operand::Reg(r));
        } else if let Some(open) = part.find('(') {
            // offset(base)
            if !part.ends_with(')') {
                return Err(AsmError::new(line, format!("bad memory operand `{part}`")));
            }
            let off_str = part[..open].trim();
            let base_str = part[open + 1..part.len() - 1].trim();
            let offset = if off_str.is_empty() {
                0
            } else {
                parse_int(off_str, line, equs)?
            };
            let base = Reg::parse(base_str)
                .ok_or_else(|| AsmError::new(line, format!("bad base register `{base_str}`")))?;
            ops.push(Operand::Mem(offset, base));
        } else if let Ok(v) = parse_int(part, line, equs) {
            ops.push(Operand::Imm(v));
        } else if is_ident(part) {
            ops.push(Operand::Sym(part.to_owned()));
        } else {
            return Err(AsmError::new(line, format!("bad operand `{part}`")));
        }
    }
    Ok(ops)
}

// ---------------------------------------------------------------------------
// Layout and encoding
// ---------------------------------------------------------------------------

const DATA_ALIGN: u64 = 4096;

fn item_size(item: &SourceItem, cursor: u64) -> Result<u64, AsmError> {
    Ok(match &item.item {
        Item::Label(_) => 0,
        Item::Inst { mnemonic, ops } => 4 * expand_count(mnemonic, ops, item.line)? as u64,
        Item::Bytes(b) => b.len() as u64,
        Item::Words { size, values } => (size * values.len()) as u64,
        Item::Align(a) => {
            let rem = cursor % a;
            if rem == 0 {
                0
            } else {
                a - rem
            }
        }
        Item::Space(n, _) => *n as u64,
    })
}

/// Number of real instructions a (pseudo-)instruction expands to.
fn expand_count(mnemonic: &str, ops: &[Operand], line: usize) -> Result<usize, AsmError> {
    Ok(match mnemonic {
        "li" => {
            let imm = match ops.get(1) {
                Some(Operand::Imm(v)) => *v,
                _ => return Err(AsmError::new(line, "li needs `rd, imm`")),
            };
            materialize_li(Reg::T0, imm).len()
        }
        "la" => 2,
        _ => 1,
    })
}

fn layout_and_encode(items: &[SourceItem], base: u64) -> Result<MexeFile, AsmError> {
    // Pass 1: sizes and symbol addresses.
    let mut text_size = 0u64;
    for it in items.iter().filter(|i| i.section == Section::Text) {
        text_size += item_size(it, base + text_size)?;
    }
    let data_base = align_up(base + text_size, DATA_ALIGN);

    let mut symbols: BTreeMap<String, u64> = BTreeMap::new();
    let mut text_cursor = base;
    let mut data_cursor = data_base;
    for it in items {
        let cursor = match it.section {
            Section::Text => &mut text_cursor,
            Section::Data => &mut data_cursor,
        };
        if let Item::Label(name) = &it.item {
            if symbols.insert(name.clone(), *cursor).is_some() {
                return Err(AsmError::new(it.line, format!("duplicate label `{name}`")));
            }
        }
        *cursor += item_size(it, *cursor)?;
    }

    // Pass 2: encode.
    let mut text = Vec::new();
    let mut data = Vec::new();
    let mut text_cursor = base;
    let mut data_cursor = data_base;
    for it in items {
        let (buf, cursor) = match it.section {
            Section::Text => (&mut text, &mut text_cursor),
            Section::Data => (&mut data, &mut data_cursor),
        };
        match &it.item {
            Item::Label(_) => {}
            Item::Inst { mnemonic, ops } => {
                let insts = expand(mnemonic, ops, *cursor, &symbols, it.line)?;
                for (k, inst) in insts.iter().enumerate() {
                    let word = encode(inst).map_err(|e| AsmError::new(it.line, e.to_string()))?;
                    let _ = k;
                    buf.extend_from_slice(&word.to_le_bytes());
                    *cursor += 4;
                }
            }
            Item::Bytes(b) => {
                buf.extend_from_slice(b);
                *cursor += b.len() as u64;
            }
            Item::Words { size, values } => {
                for v in values {
                    let value = match v {
                        DataValue::Imm(i) => *i as u64,
                        DataValue::Sym(name) => *symbols.get(name).ok_or_else(|| {
                            AsmError::new(it.line, format!("undefined symbol `{name}`"))
                        })?,
                    };
                    buf.extend_from_slice(&value.to_le_bytes()[..*size]);
                    *cursor += *size as u64;
                }
            }
            Item::Align(a) => {
                let rem = *cursor % a;
                if rem != 0 {
                    let pad = (a - rem) as usize;
                    buf.extend(std::iter::repeat_n(0u8, pad));
                    *cursor += pad as u64;
                }
            }
            Item::Space(n, fill) => {
                buf.extend(std::iter::repeat_n(*fill, *n));
                *cursor += *n as u64;
            }
        }
    }

    let entry = symbols.get("_start").copied().unwrap_or(base);
    let mut file = MexeFile::new(entry);
    if !text.is_empty() {
        file.push_segment(base, text);
    }
    if !data.is_empty() {
        file.push_segment(data_base, data);
    }
    for (name, value) in symbols {
        file.define_symbol(name, value);
    }
    Ok(file)
}

fn align_up(v: u64, a: u64) -> u64 {
    v.div_ceil(a) * a
}

// ---------------------------------------------------------------------------
// Instruction expansion
// ---------------------------------------------------------------------------

/// Materialises a 64-bit constant into `rd` as a real instruction sequence.
pub fn materialize_li(rd: Reg, imm: i64) -> Vec<Inst> {
    if (-2048..2048).contains(&imm) {
        return vec![Inst::AluImm {
            op: AluImmOp::Addi,
            rd,
            rs1: Reg::ZERO,
            imm,
        }];
    }
    let lo12 = (imm << 52) >> 52;
    let hi = imm.wrapping_sub(lo12);
    if hi == (hi as i32 as i64) && hi & 0xfff == 0 {
        let mut v = vec![Inst::Lui { rd, imm: hi }];
        if lo12 != 0 {
            v.push(Inst::AluImm {
                op: AluImmOp::Addiw,
                rd,
                rs1: rd,
                imm: lo12,
            });
        }
        return v;
    }
    // 64-bit: build the upper bits, shift, add low 12, recursively.
    let upper = (imm.wrapping_sub(lo12)) >> 12;
    let mut v = materialize_li(rd, upper);
    v.push(Inst::AluImm {
        op: AluImmOp::Slli,
        rd,
        rs1: rd,
        imm: 12,
    });
    if lo12 != 0 {
        v.push(Inst::AluImm {
            op: AluImmOp::Addi,
            rd,
            rs1: rd,
            imm: lo12,
        });
    }
    v
}

struct Ctx<'a> {
    pc: u64,
    symbols: &'a BTreeMap<String, u64>,
    line: usize,
}

impl Ctx<'_> {
    fn resolve(&self, op: &Operand) -> Result<i64, AsmError> {
        match op {
            Operand::Imm(v) => Ok(*v),
            Operand::Sym(name) => self
                .symbols
                .get(name)
                .map(|v| *v as i64)
                .ok_or_else(|| AsmError::new(self.line, format!("undefined symbol `{name}`"))),
            _ => Err(AsmError::new(self.line, "expected immediate or symbol")),
        }
    }

    fn branch_offset(&self, op: &Operand) -> Result<i64, AsmError> {
        Ok(self.resolve(op)? - self.pc as i64)
    }

    fn reg(&self, op: Option<&Operand>) -> Result<Reg, AsmError> {
        match op {
            Some(Operand::Reg(r)) => Ok(*r),
            _ => Err(AsmError::new(self.line, "expected register operand")),
        }
    }

    fn mem(&self, op: Option<&Operand>) -> Result<(i64, Reg), AsmError> {
        match op {
            Some(Operand::Mem(off, base)) => Ok((*off, *base)),
            Some(Operand::Reg(r)) => Ok((0, *r)),
            _ => Err(AsmError::new(
                self.line,
                "expected memory operand `off(reg)`",
            )),
        }
    }
}

fn parse_csr_operand(op: &Operand, line: usize) -> Result<u16, AsmError> {
    match op {
        Operand::Imm(v) if (0..4096).contains(v) => Ok(*v as u16),
        Operand::Sym(name) => match name.as_str() {
            "cycle" => Ok(csr::CYCLE),
            "time" => Ok(csr::TIME),
            "instret" => Ok(csr::INSTRET),
            "mhartid" => Ok(csr::MHARTID),
            "mscratch" => Ok(csr::MSCRATCH),
            _ => Err(AsmError::new(line, format!("unknown CSR `{name}`"))),
        },
        _ => Err(AsmError::new(line, "expected a CSR name or number")),
    }
}

fn expand(
    mnemonic: &str,
    ops: &[Operand],
    pc: u64,
    symbols: &BTreeMap<String, u64>,
    line: usize,
) -> Result<Vec<Inst>, AsmError> {
    let ctx = Ctx { pc, symbols, line };
    let one = |i: Inst| Ok(vec![i]);
    let branch =
        |cond: BranchCond, rs1: Reg, rs2: Reg, target: &Operand| -> Result<Vec<Inst>, AsmError> {
            Ok(vec![Inst::Branch {
                cond,
                rs1,
                rs2,
                offset: ctx.branch_offset(target)?,
            }])
        };

    let get = |i: usize| ops.get(i);
    match mnemonic {
        // --- U / J types -------------------------------------------------
        "lui" => one(Inst::Lui {
            rd: ctx.reg(get(0))?,
            imm: ctx.resolve(get(1).ok_or_else(|| AsmError::new(line, "lui needs imm"))?)? << 12,
        }),
        "auipc" => one(Inst::Auipc {
            rd: ctx.reg(get(0))?,
            imm: ctx.resolve(get(1).ok_or_else(|| AsmError::new(line, "auipc needs imm"))?)? << 12,
        }),
        "jal" => match ops.len() {
            1 => one(Inst::Jal {
                rd: Reg::RA,
                offset: ctx.branch_offset(&ops[0])?,
            }),
            2 => one(Inst::Jal {
                rd: ctx.reg(get(0))?,
                offset: ctx.branch_offset(&ops[1])?,
            }),
            _ => Err(AsmError::new(line, "jal needs `[rd,] target`")),
        },
        "jalr" => match ops.len() {
            1 => match &ops[0] {
                Operand::Reg(r) => one(Inst::Jalr {
                    rd: Reg::RA,
                    rs1: *r,
                    offset: 0,
                }),
                _ => Err(AsmError::new(line, "jalr needs a register")),
            },
            2 => {
                let rd = ctx.reg(get(0))?;
                let (off, rs1) = ctx.mem(get(1))?;
                one(Inst::Jalr {
                    rd,
                    rs1,
                    offset: off,
                })
            }
            3 => one(Inst::Jalr {
                rd: ctx.reg(get(0))?,
                rs1: ctx.reg(get(1))?,
                offset: ctx.resolve(&ops[2])?,
            }),
            _ => Err(AsmError::new(line, "jalr needs 1-3 operands")),
        },
        // --- branches ----------------------------------------------------
        "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" => {
            let cond = match mnemonic {
                "beq" => BranchCond::Eq,
                "bne" => BranchCond::Ne,
                "blt" => BranchCond::Lt,
                "bge" => BranchCond::Ge,
                "bltu" => BranchCond::Ltu,
                _ => BranchCond::Geu,
            };
            if ops.len() != 3 {
                return Err(AsmError::new(
                    line,
                    format!("{mnemonic} needs `rs1, rs2, target`"),
                ));
            }
            branch(cond, ctx.reg(get(0))?, ctx.reg(get(1))?, &ops[2])
        }
        "bgt" | "ble" | "bgtu" | "bleu" => {
            let cond = match mnemonic {
                "bgt" => BranchCond::Lt,
                "ble" => BranchCond::Ge,
                "bgtu" => BranchCond::Ltu,
                _ => BranchCond::Geu,
            };
            if ops.len() != 3 {
                return Err(AsmError::new(
                    line,
                    format!("{mnemonic} needs `rs1, rs2, target`"),
                ));
            }
            // Swap operands: bgt a,b == blt b,a
            branch(cond, ctx.reg(get(1))?, ctx.reg(get(0))?, &ops[2])
        }
        "beqz" | "bnez" | "bltz" | "bgez" => {
            let cond = match mnemonic {
                "beqz" => BranchCond::Eq,
                "bnez" => BranchCond::Ne,
                "bltz" => BranchCond::Lt,
                _ => BranchCond::Ge,
            };
            if ops.len() != 2 {
                return Err(AsmError::new(
                    line,
                    format!("{mnemonic} needs `rs, target`"),
                ));
            }
            branch(cond, ctx.reg(get(0))?, Reg::ZERO, &ops[1])
        }
        "blez" => branch(BranchCond::Ge, Reg::ZERO, ctx.reg(get(0))?, &ops[1]),
        "bgtz" => branch(BranchCond::Lt, Reg::ZERO, ctx.reg(get(0))?, &ops[1]),
        // --- loads/stores --------------------------------------------------
        "lb" | "lh" | "lw" | "ld" | "lbu" | "lhu" | "lwu" => {
            let width = match mnemonic {
                "lb" => MemWidth::B,
                "lh" => MemWidth::H,
                "lw" => MemWidth::W,
                "ld" => MemWidth::D,
                "lbu" => MemWidth::Bu,
                "lhu" => MemWidth::Hu,
                _ => MemWidth::Wu,
            };
            let rd = ctx.reg(get(0))?;
            let (off, rs1) = ctx.mem(get(1))?;
            one(Inst::Load {
                width,
                rd,
                rs1,
                offset: off,
            })
        }
        "sb" | "sh" | "sw" | "sd" => {
            let width = match mnemonic {
                "sb" => MemWidth::B,
                "sh" => MemWidth::H,
                "sw" => MemWidth::W,
                _ => MemWidth::D,
            };
            let rs2 = ctx.reg(get(0))?;
            let (off, rs1) = ctx.mem(get(1))?;
            one(Inst::Store {
                width,
                rs2,
                rs1,
                offset: off,
            })
        }
        // --- ALU immediate -------------------------------------------------
        "addi" | "slti" | "sltiu" | "xori" | "ori" | "andi" | "slli" | "srli" | "srai"
        | "addiw" | "slliw" | "srliw" | "sraiw" => {
            let op = match mnemonic {
                "addi" => AluImmOp::Addi,
                "slti" => AluImmOp::Slti,
                "sltiu" => AluImmOp::Sltiu,
                "xori" => AluImmOp::Xori,
                "ori" => AluImmOp::Ori,
                "andi" => AluImmOp::Andi,
                "slli" => AluImmOp::Slli,
                "srli" => AluImmOp::Srli,
                "srai" => AluImmOp::Srai,
                "addiw" => AluImmOp::Addiw,
                "slliw" => AluImmOp::Slliw,
                "srliw" => AluImmOp::Srliw,
                _ => AluImmOp::Sraiw,
            };
            if ops.len() != 3 {
                return Err(AsmError::new(
                    line,
                    format!("{mnemonic} needs `rd, rs1, imm`"),
                ));
            }
            one(Inst::AluImm {
                op,
                rd: ctx.reg(get(0))?,
                rs1: ctx.reg(get(1))?,
                imm: ctx.resolve(&ops[2])?,
            })
        }
        // --- ALU register --------------------------------------------------
        "add" | "sub" | "sll" | "slt" | "sltu" | "xor" | "srl" | "sra" | "or" | "and" | "addw"
        | "subw" | "sllw" | "srlw" | "sraw" | "mul" | "mulh" | "mulhsu" | "mulhu" | "div"
        | "divu" | "rem" | "remu" | "mulw" | "divw" | "divuw" | "remw" | "remuw" => {
            let op = match mnemonic {
                "add" => AluOp::Add,
                "sub" => AluOp::Sub,
                "sll" => AluOp::Sll,
                "slt" => AluOp::Slt,
                "sltu" => AluOp::Sltu,
                "xor" => AluOp::Xor,
                "srl" => AluOp::Srl,
                "sra" => AluOp::Sra,
                "or" => AluOp::Or,
                "and" => AluOp::And,
                "addw" => AluOp::Addw,
                "subw" => AluOp::Subw,
                "sllw" => AluOp::Sllw,
                "srlw" => AluOp::Srlw,
                "sraw" => AluOp::Sraw,
                "mul" => AluOp::Mul,
                "mulh" => AluOp::Mulh,
                "mulhsu" => AluOp::Mulhsu,
                "mulhu" => AluOp::Mulhu,
                "div" => AluOp::Div,
                "divu" => AluOp::Divu,
                "rem" => AluOp::Rem,
                "remu" => AluOp::Remu,
                "mulw" => AluOp::Mulw,
                "divw" => AluOp::Divw,
                "divuw" => AluOp::Divuw,
                "remw" => AluOp::Remw,
                _ => AluOp::Remuw,
            };
            if ops.len() != 3 {
                return Err(AsmError::new(
                    line,
                    format!("{mnemonic} needs `rd, rs1, rs2`"),
                ));
            }
            one(Inst::Alu {
                op,
                rd: ctx.reg(get(0))?,
                rs1: ctx.reg(get(1))?,
                rs2: ctx.reg(get(2))?,
            })
        }
        // --- system --------------------------------------------------------
        "ecall" => one(Inst::Ecall),
        "ebreak" => one(Inst::Ebreak),
        "fence" | "fence.i" => one(Inst::Fence),
        "csrrw" | "csrrs" | "csrrc" => {
            let op = match mnemonic {
                "csrrw" => CsrOp::Rw,
                "csrrs" => CsrOp::Rs,
                _ => CsrOp::Rc,
            };
            if ops.len() != 3 {
                return Err(AsmError::new(
                    line,
                    format!("{mnemonic} needs `rd, csr, rs1`"),
                ));
            }
            one(Inst::Csr {
                op,
                rd: ctx.reg(get(0))?,
                csr: parse_csr_operand(&ops[1], line)?,
                rs1: ctx.reg(get(2))?,
            })
        }
        // --- pseudo-instructions ---------------------------------------------
        "nop" => one(Inst::AluImm {
            op: AluImmOp::Addi,
            rd: Reg::ZERO,
            rs1: Reg::ZERO,
            imm: 0,
        }),
        "li" => {
            let rd = ctx.reg(get(0))?;
            let imm = match get(1) {
                Some(Operand::Imm(v)) => *v,
                // `li rd, label` is rejected (size would depend on layout);
                // use `la` for addresses.
                _ => {
                    return Err(AsmError::new(
                        line,
                        "li needs `rd, imm` (use `la` for symbols)",
                    ))
                }
            };
            Ok(materialize_li(rd, imm))
        }
        "la" => {
            let rd = ctx.reg(get(0))?;
            let target =
                ctx.resolve(get(1).ok_or_else(|| AsmError::new(line, "la needs symbol"))?)?;
            let rel = target - pc as i64;
            let lo12 = (rel << 52) >> 52;
            let hi = rel - lo12;
            Ok(vec![
                Inst::Auipc { rd, imm: hi },
                Inst::AluImm {
                    op: AluImmOp::Addi,
                    rd,
                    rs1: rd,
                    imm: lo12,
                },
            ])
        }
        "mv" => one(Inst::AluImm {
            op: AluImmOp::Addi,
            rd: ctx.reg(get(0))?,
            rs1: ctx.reg(get(1))?,
            imm: 0,
        }),
        "not" => one(Inst::AluImm {
            op: AluImmOp::Xori,
            rd: ctx.reg(get(0))?,
            rs1: ctx.reg(get(1))?,
            imm: -1,
        }),
        "neg" => one(Inst::Alu {
            op: AluOp::Sub,
            rd: ctx.reg(get(0))?,
            rs1: Reg::ZERO,
            rs2: ctx.reg(get(1))?,
        }),
        "negw" => one(Inst::Alu {
            op: AluOp::Subw,
            rd: ctx.reg(get(0))?,
            rs1: Reg::ZERO,
            rs2: ctx.reg(get(1))?,
        }),
        "sext.w" => one(Inst::AluImm {
            op: AluImmOp::Addiw,
            rd: ctx.reg(get(0))?,
            rs1: ctx.reg(get(1))?,
            imm: 0,
        }),
        "seqz" => one(Inst::AluImm {
            op: AluImmOp::Sltiu,
            rd: ctx.reg(get(0))?,
            rs1: ctx.reg(get(1))?,
            imm: 1,
        }),
        "snez" => one(Inst::Alu {
            op: AluOp::Sltu,
            rd: ctx.reg(get(0))?,
            rs1: Reg::ZERO,
            rs2: ctx.reg(get(1))?,
        }),
        "sltz" => one(Inst::Alu {
            op: AluOp::Slt,
            rd: ctx.reg(get(0))?,
            rs1: ctx.reg(get(1))?,
            rs2: Reg::ZERO,
        }),
        "sgtz" => one(Inst::Alu {
            op: AluOp::Slt,
            rd: ctx.reg(get(0))?,
            rs1: Reg::ZERO,
            rs2: ctx.reg(get(1))?,
        }),
        "j" => one(Inst::Jal {
            rd: Reg::ZERO,
            offset: ctx
                .branch_offset(get(0).ok_or_else(|| AsmError::new(line, "j needs target"))?)?,
        }),
        "jr" => one(Inst::Jalr {
            rd: Reg::ZERO,
            rs1: ctx.reg(get(0))?,
            offset: 0,
        }),
        "call" => one(Inst::Jal {
            rd: Reg::RA,
            offset: ctx
                .branch_offset(get(0).ok_or_else(|| AsmError::new(line, "call needs target"))?)?,
        }),
        "tail" => one(Inst::Jal {
            rd: Reg::ZERO,
            offset: ctx
                .branch_offset(get(0).ok_or_else(|| AsmError::new(line, "tail needs target"))?)?,
        }),
        "ret" => one(Inst::Jalr {
            rd: Reg::ZERO,
            rs1: Reg::RA,
            offset: 0,
        }),
        "rdcycle" => one(Inst::Csr {
            op: CsrOp::Rs,
            rd: ctx.reg(get(0))?,
            rs1: Reg::ZERO,
            csr: csr::CYCLE,
        }),
        "rdtime" => one(Inst::Csr {
            op: CsrOp::Rs,
            rd: ctx.reg(get(0))?,
            rs1: Reg::ZERO,
            csr: csr::TIME,
        }),
        "rdinstret" => one(Inst::Csr {
            op: CsrOp::Rs,
            rd: ctx.reg(get(0))?,
            rs1: Reg::ZERO,
            csr: csr::INSTRET,
        }),
        "csrr" => one(Inst::Csr {
            op: CsrOp::Rs,
            rd: ctx.reg(get(0))?,
            rs1: Reg::ZERO,
            csr: parse_csr_operand(
                get(1).ok_or_else(|| AsmError::new(line, "csrr needs a CSR"))?,
                line,
            )?,
        }),
        "csrw" => one(Inst::Csr {
            op: CsrOp::Rw,
            rd: Reg::ZERO,
            rs1: ctx.reg(get(1))?,
            csr: parse_csr_operand(
                get(0).ok_or_else(|| AsmError::new(line, "csrw needs a CSR"))?,
                line,
            )?,
        }),
        other => Err(AsmError::new(line, format!("unknown mnemonic `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Cpu, StepOutcome};
    use crate::mem::FlatMemory;

    fn run(source: &str) -> Cpu {
        let exe = assemble(source, 0x1_0000).expect("assemble");
        let mut mem = FlatMemory::new(1 << 21);
        exe.load_into(&mut mem).unwrap();
        let mut cpu = Cpu::new(exe.entry());
        cpu.write_reg(Reg::SP, 0x10_0000);
        match cpu.run(&mut mem, 1_000_000).unwrap() {
            Some(StepOutcome::Ecall) => cpu,
            other => panic!("program did not ecall: {other:?}"),
        }
    }

    #[test]
    fn fibonacci() {
        let cpu = run(r#"
        .text
        .global _start
_start:
        li      t0, 10        # n
        li      a0, 0         # fib(0)
        li      a1, 1         # fib(1)
loop:
        beqz    t0, done
        add     t2, a0, a1
        mv      a0, a1
        mv      a1, t2
        addi    t0, t0, -1
        j       loop
done:
        ecall
"#);
        assert_eq!(cpu.read_reg(Reg::A0), 55);
    }

    #[test]
    fn data_section_and_la() {
        let cpu = run(r#"
        .text
_start:
        la      t0, values
        ld      a0, 0(t0)
        ld      a1, 8(t0)
        add     a0, a0, a1
        ecall
        .data
        .align  3
values:
        .dword  40, 2
"#);
        assert_eq!(cpu.read_reg(Reg::A0), 42);
    }

    #[test]
    fn string_data() {
        let exe = assemble(
            r#"
        .data
msg:    .asciiz "hi\n"
        .text
_start: ecall
"#,
            0x1_0000,
        )
        .unwrap();
        let addr = exe.symbol("msg").unwrap();
        let mut mem = FlatMemory::new(1 << 21);
        exe.load_into(&mut mem).unwrap();
        assert_eq!(mem.read_cstr(addr, 16).unwrap(), "hi\n");
    }

    #[test]
    fn li_large_constants() {
        for imm in [
            0i64,
            1,
            -1,
            2047,
            -2048,
            2048,
            0x1234,
            0x7fff_ffff,
            -0x8000_0000,
            0x8000_0000,
            0x1234_5678_9abc_def0,
            i64::MIN,
            i64::MAX,
            0x7ff,
            0x800,
            -0x801,
        ] {
            let cpu = run(&format!("_start:\n li a0, {imm}\n ecall\n"));
            assert_eq!(cpu.read_reg(Reg::A0) as i64, imm, "li {imm:#x}");
        }
    }

    #[test]
    fn call_and_ret() {
        let cpu = run(r#"
_start:
        li      a0, 5
        call    double
        call    double
        ecall
double:
        slli    a0, a0, 1
        ret
"#);
        assert_eq!(cpu.read_reg(Reg::A0), 20);
    }

    #[test]
    fn comparison_pseudos() {
        let cpu = run(r#"
_start:
        li      t0, 5
        li      t1, 9
        bgt     t1, t0, ok     # 9 > 5 -> taken
        li      a0, 0
        ecall
ok:
        seqz    a1, zero       # a1 = 1
        snez    a2, t0         # a2 = 1
        li      a0, 1
        ecall
"#);
        assert_eq!(cpu.read_reg(Reg::A0), 1);
        assert_eq!(cpu.read_reg(Reg::A1), 1);
        assert_eq!(cpu.read_reg(Reg::A2), 1);
    }

    #[test]
    fn equ_constants() {
        let cpu = run(r#"
        .equ    ANSWER, 42
_start:
        li      a0, ANSWER
        ecall
"#);
        assert_eq!(cpu.read_reg(Reg::A0), 42);
    }

    #[test]
    fn rdcycle_reads_counter() {
        let cpu = run("_start:\n nop\n nop\n rdcycle a0\n ecall\n");
        assert_eq!(cpu.read_reg(Reg::A0), 2);
    }

    #[test]
    fn word_table_with_symbols() {
        let cpu = run(r#"
_start:
        la      t0, table
        ld      t1, 0(t0)      # address of target
        jr      t1
dead:
        li      a0, 0
        ecall
target:
        li      a0, 7
        ecall
        .data
        .align  3
table:  .dword  target
"#);
        assert_eq!(cpu.read_reg(Reg::A0), 7);
    }

    #[test]
    fn errors_have_line_numbers() {
        let err = assemble("nop\n bogus a0\n", 0).unwrap_err();
        assert_eq!(err.line, 2);
        let err = assemble("beq a0, a1, missing\n", 0).unwrap_err();
        assert!(err.message.contains("undefined symbol"));
        let err = assemble("x:\nx:\n", 0).unwrap_err();
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn comments_and_blank_lines() {
        let exe = assemble(
            "# leading comment\n\n_start: nop // trailing\n ecall # done\n",
            0,
        )
        .unwrap();
        assert_eq!(exe.segments()[0].data.len(), 8);
    }

    #[test]
    fn deterministic_output() {
        let src = "_start: li a0, 123456789\n ecall\n .data\nx: .word 1,2,3\n";
        let a = assemble(src, 0x1_0000).unwrap().to_bytes();
        let b = assemble(src, 0x1_0000).unwrap().to_bytes();
        assert_eq!(a, b);
    }

    #[test]
    fn align_pads_correctly() {
        let exe = assemble(
            ".data\n .byte 1\n .align 3\nval: .dword 5\n .text\n_start: ecall\n",
            0x1_0000,
        )
        .unwrap();
        let val = exe.symbol("val").unwrap();
        assert_eq!(val % 8, 0);
    }

    #[test]
    fn char_literals() {
        let cpu = run("_start:\n li a0, 'A'\n ecall\n");
        assert_eq!(cpu.read_reg(Reg::A0), 65);
    }
}
