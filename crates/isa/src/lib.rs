//! # marshal-isa
//!
//! A from-scratch RV64IM implementation used as the common substrate of the
//! FireMarshal reproduction: instruction definitions, authentic binary
//! encoding/decoding, a two-pass assembler, a deterministic object format
//! (`MEXE`), a disassembler, and a functional interpreter core.
//!
//! Both the functional simulators (`marshal-sim-functional`) and the
//! cycle-exact simulator (`marshal-sim-rtl`) execute *exactly* the same
//! binaries through this crate, which is what lets the reproduction uphold
//! the paper's central claim: the same artifact behaves identically across
//! simulation platforms.
//!
//! ## Example
//!
//! ```rust
//! use marshal_isa::asm::assemble;
//! use marshal_isa::interp::{Cpu, StepOutcome};
//! use marshal_isa::mem::FlatMemory;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let exe = assemble(
//!     r#"
//!     .text
//!     .global _start
//! _start:
//!     li a0, 21
//!     slli a0, a0, 1     # a0 = 42
//!     li a7, 93          # SYS_EXIT
//!     ecall
//! "#,
//!     0x1_0000,
//! )?;
//! let mut mem = FlatMemory::new(1 << 20);
//! exe.load_into(&mut mem)?;
//! let mut cpu = Cpu::new(exe.entry());
//! loop {
//!     match cpu.step(&mut mem)? {
//!         StepOutcome::Retired(_) => {}
//!         StepOutcome::Ecall => break,
//!         other => panic!("unexpected: {other:?}"),
//!     }
//! }
//! assert_eq!(cpu.read_reg(marshal_isa::inst::Reg::A0), 42);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod abi;
pub mod asm;
pub mod decode;
pub mod disasm;
pub mod encode;
pub mod inst;
pub mod interp;
pub mod mem;
pub mod mexe;
pub mod predecode;

pub use asm::{assemble, AsmError};
pub use inst::{Inst, Reg};
pub use interp::{Cpu, StepOutcome, Trap};
pub use mexe::MexeFile;
pub use predecode::DecodeCache;
