//! The guest ABI: syscall numbers and calling conventions shared by every
//! simulator in the workspace.
//!
//! Guest user programs request services with `ecall`; the syscall number
//! goes in `a7` and arguments in `a0`–`a5`, mirroring the RISC-V Linux
//! convention. Numbers for calls that exist in Linux reuse the Linux values
//! so the assembly reads naturally; the handful of simulator-specific calls
//! live above 2000.

/// Syscall numbers.
pub mod sys {
    /// `exit(code)` — terminate the program.
    pub const EXIT: u64 = 93;
    /// `write(fd, buf, len) -> written` — fd 1/2 go to the serial console.
    pub const WRITE: u64 = 64;
    /// `read(fd, buf, len) -> nread`.
    pub const READ: u64 = 63;
    /// `open(path_cstr, flags) -> fd` (simplified; no mode argument).
    pub const OPEN: u64 = 1024;
    /// `close(fd)`.
    pub const CLOSE: u64 = 57;
    /// `argc() -> count` — number of program arguments.
    pub const ARGC: u64 = 2000;
    /// `argv(index, buf, cap) -> len` — copy argument `index` into `buf`.
    pub const ARGV: u64 = 2001;
    /// `mmap_remote(pages) -> vaddr` — map `pages` of *remote* memory
    /// (backed by the PFA / software-paging model in cycle-exact simulation,
    /// plain local memory in functional simulation).
    pub const MMAP_REMOTE: u64 = 2002;
    /// `trace(marker)` — emit a numbered trace marker into the serial log.
    pub const TRACE: u64 = 2003;
}

/// `open` flags.
pub mod flags {
    /// Open for reading.
    pub const O_RDONLY: u64 = 0;
    /// Open for writing, create or truncate.
    pub const O_WRONLY: u64 = 1;
    /// Open for appending, create if missing.
    pub const O_APPEND: u64 = 2;
}

/// Well-known file descriptors.
pub mod fd {
    /// Standard output (serial console).
    pub const STDOUT: u64 = 1;
    /// Standard error (serial console).
    pub const STDERR: u64 = 2;
    /// First descriptor handed out by `open`.
    pub const FIRST_OPEN: u64 = 3;
}

/// Default virtual load address for user programs.
pub const USER_BASE: u64 = 0x1_0000;

/// Default initial stack pointer for user programs (grows down).
pub const USER_STACK_TOP: u64 = 0x7f_f000;

/// Default user address-space size in bytes.
pub const USER_MEM_SIZE: usize = 0x80_0000;

// Layout invariants, checked at compile time.
const _: () = assert!(USER_STACK_TOP > USER_BASE);
const _: () = assert!((USER_STACK_TOP as usize) < USER_MEM_SIZE);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linux_compatible_numbers() {
        assert_eq!(sys::EXIT, 93);
        assert_eq!(sys::WRITE, 64);
        assert_eq!(sys::READ, 63);
    }
}
