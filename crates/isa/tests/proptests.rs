//! Property-based tests for the ISA substrate: encode/decode roundtrips,
//! `li` materialisation, ALU semantics, and MEXE serialisation.
//!
//! Uses the in-repo `marshal-qcheck` harness (offline build environment);
//! every case derives from a fixed seed and replays deterministically.

use std::collections::BTreeMap;

use marshal_isa::asm::{assemble, materialize_li};
use marshal_isa::decode::decode;
use marshal_isa::encode::encode;
use marshal_isa::inst::{AluImmOp, AluOp, BranchCond, Inst, MemWidth, Reg};
use marshal_isa::interp::{Cpu, StepOutcome};
use marshal_isa::mem::{Bus, FlatMemory};
use marshal_isa::MexeFile;
use marshal_qcheck::{cases, Rng};

fn arb_reg(rng: &mut Rng) -> Reg {
    Reg::new(rng.range_u64(0, 32) as u8).unwrap()
}

fn arb_inst(rng: &mut Rng) -> Inst {
    let imm12 = |rng: &mut Rng| rng.range_i64(-2048, 2048);
    match rng.range_u64(0, 9) {
        0 => Inst::Lui {
            rd: arb_reg(rng),
            imm: rng.range_i64(-0x7_ffff, 0x7_ffff) << 12,
        },
        1 => Inst::Auipc {
            rd: arb_reg(rng),
            imm: rng.range_i64(-0x7_ffff, 0x7_ffff) << 12,
        },
        2 => Inst::Jal {
            rd: arb_reg(rng),
            offset: rng.range_i64(-100_000, 100_000) * 2,
        },
        3 => Inst::Jalr {
            rd: arb_reg(rng),
            rs1: arb_reg(rng),
            offset: imm12(rng),
        },
        4 => Inst::Branch {
            cond: *rng.pick(&[
                BranchCond::Eq,
                BranchCond::Ne,
                BranchCond::Lt,
                BranchCond::Ge,
                BranchCond::Ltu,
                BranchCond::Geu,
            ]),
            rs1: arb_reg(rng),
            rs2: arb_reg(rng),
            offset: rng.range_i64(-2048, 2048) * 2,
        },
        5 => Inst::Load {
            width: *rng.pick(&[
                MemWidth::B,
                MemWidth::H,
                MemWidth::W,
                MemWidth::D,
                MemWidth::Bu,
                MemWidth::Hu,
                MemWidth::Wu,
            ]),
            rd: arb_reg(rng),
            rs1: arb_reg(rng),
            offset: imm12(rng),
        },
        6 => Inst::Store {
            width: *rng.pick(&[MemWidth::B, MemWidth::H, MemWidth::W, MemWidth::D]),
            rs2: arb_reg(rng),
            rs1: arb_reg(rng),
            offset: imm12(rng),
        },
        7 => Inst::AluImm {
            op: *rng.pick(&[
                AluImmOp::Addi,
                AluImmOp::Slti,
                AluImmOp::Sltiu,
                AluImmOp::Xori,
                AluImmOp::Ori,
                AluImmOp::Andi,
                AluImmOp::Addiw,
            ]),
            rd: arb_reg(rng),
            rs1: arb_reg(rng),
            imm: imm12(rng),
        },
        _ => Inst::Alu {
            op: *rng.pick(&[
                AluOp::Add,
                AluOp::Sub,
                AluOp::Sll,
                AluOp::Xor,
                AluOp::Mul,
                AluOp::Div,
                AluOp::Remu,
                AluOp::Addw,
                AluOp::Sraw,
            ]),
            rd: arb_reg(rng),
            rs1: arb_reg(rng),
            rs2: arb_reg(rng),
        },
    }
}

#[test]
fn encode_decode_roundtrip() {
    cases(512, |rng| {
        let inst = arb_inst(rng);
        let word = encode(&inst).unwrap();
        let back = decode(word).unwrap();
        assert_eq!(inst, back);
    });
}

#[test]
fn li_materialises_any_constant() {
    cases(256, |rng| {
        let imm = rng.any_i64();
        let insts = materialize_li(Reg::A0, imm);
        assert!(insts.len() <= 8, "li expansion too long: {}", insts.len());
        // Execute the sequence and verify the result.
        let mut mem = FlatMemory::new(1 << 12);
        for (i, inst) in insts.iter().enumerate() {
            let w = encode(inst).unwrap();
            mem.store(4 * i as u64, 4, w as u64).unwrap();
        }
        let halt = encode(&Inst::Ecall).unwrap();
        mem.store(4 * insts.len() as u64, 4, halt as u64).unwrap();
        let mut cpu = Cpu::new(0);
        loop {
            match cpu.step(&mut mem).unwrap() {
                StepOutcome::Retired(_) => {}
                StepOutcome::Ecall => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(cpu.read_reg(Reg::A0) as i64, imm);
    });
}

#[test]
fn mexe_roundtrip() {
    cases(128, |rng| {
        let entry = rng.any_u64();
        let mut f = MexeFile::new(entry);
        for _ in 0..rng.range_usize(0, 4) {
            let vaddr = rng.range_u64(0, 1 << 30);
            f.push_segment(vaddr, rng.bytes_in(0, 256));
        }
        let mut syms = BTreeMap::new();
        for _ in 0..rng.range_usize(0, 6) {
            let name = format!(
                "{}{}",
                rng.string_of("abcdefghijklmnopqrstuvwxyz_", 1, 2),
                rng.string_of("abcdefghijklmnopqrstuvwxyz0123456789_", 0, 13)
            );
            syms.insert(name, rng.any_u64());
        }
        for (name, value) in syms {
            f.define_symbol(name, value);
        }
        let bytes = f.to_bytes();
        let g = MexeFile::from_bytes(&bytes).unwrap();
        assert_eq!(f, g);
    });
}

#[test]
fn division_never_traps() {
    cases(256, |rng| {
        let a = rng.any_u64();
        let b = rng.any_u64();
        // RISC-V defines results for div-by-zero and overflow: execution
        // must retire normally for every operand pair.
        let mut mem = FlatMemory::new(256);
        for (i, op) in [
            AluOp::Div,
            AluOp::Divu,
            AluOp::Rem,
            AluOp::Remu,
            AluOp::Divw,
            AluOp::Divuw,
            AluOp::Remw,
            AluOp::Remuw,
        ]
        .iter()
        .enumerate()
        {
            let w = encode(&Inst::Alu {
                op: *op,
                rd: Reg::A2,
                rs1: Reg::A0,
                rs2: Reg::A1,
            })
            .unwrap();
            mem.store(4 * i as u64, 4, w as u64).unwrap();
        }
        mem.store(32, 4, encode(&Inst::Ecall).unwrap() as u64)
            .unwrap();
        let mut cpu = Cpu::new(0);
        cpu.write_reg(Reg::A0, a);
        cpu.write_reg(Reg::A1, b);
        let out = cpu.run(&mut mem, 64).unwrap();
        assert_eq!(out, Some(StepOutcome::Ecall));
    });
}

#[test]
fn flat_memory_store_load() {
    cases(256, |rng| {
        let addr = rng.range_u64(0, 4000);
        let val = rng.any_u64();
        let size = *rng.pick(&[1usize, 2, 4, 8]);
        if addr as usize + size > 4096 {
            return;
        }
        let mut m = FlatMemory::new(4096);
        m.store(addr, size, val).unwrap();
        let mask = if size == 8 {
            u64::MAX
        } else {
            (1u64 << (8 * size)) - 1
        };
        assert_eq!(m.load(addr, size).unwrap(), val & mask);
    });
}

#[test]
fn assembled_programs_are_deterministic() {
    cases(64, |rng| {
        // A generated program of n additions always assembles to identical
        // bytes and computes the expected sum.
        let n = rng.range_u64(1, 64) as u32;
        let mut src = String::from("_start:\n li a0, 0\n");
        for i in 1..=n {
            src.push_str(&format!(" addi a0, a0, {}\n", i % 100));
        }
        src.push_str(" ecall\n");
        let a = assemble(&src, 0x1_0000).unwrap();
        let b = assemble(&src, 0x1_0000).unwrap();
        assert_eq!(a.to_bytes(), b.to_bytes());
        let mut mem = FlatMemory::new(1 << 20);
        a.load_into(&mut mem).unwrap();
        let mut cpu = Cpu::new(a.entry());
        cpu.run(&mut mem, 10_000).unwrap();
        let expected: u64 = (1..=n as u64).map(|i| i % 100).sum();
        assert_eq!(cpu.read_reg(Reg::A0), expected);
    });
}

/// The assembler is total: arbitrary text is either assembled or
/// rejected with a line-numbered error, never a panic.
#[test]
fn assembler_never_panics() {
    cases(256, |rng| {
        let src = rng.printable(0, 200);
        let _ = assemble(&src, 0x1_0000);
    });
}

/// Structured fuzz: random well-formed-ish instruction streams.
#[test]
fn assembler_handles_fragment_soup() {
    let fixed = [
        "  nop",
        "lbl:",
        "  j lbl",
        "  beqz a0, lbl",
        "  .data",
        "  .word 1, 2, 3",
        "  .asciiz \"x\"",
        "  .text",
        "  mul a0, a1, a2",
        "  ld a0, 0(sp)",
    ];
    cases(256, |rng| {
        let fragments: Vec<String> = (0..rng.range_usize(0, 20))
            .map(|_| match rng.range_u64(0, 12) {
                10 => format!("  li a0, {}", rng.range_i64(0, 4096)),
                11 => format!("  addi a1, a1, {}", rng.range_i64(-2048, 2048)),
                i => fixed[i as usize].to_owned(),
            })
            .collect();
        // `lbl` is always defined once, at the start of the text section
        // (branches from .data to .text may legitimately exceed their
        // encoding range, which is an expected assembler error, not a
        // robustness bug). Instructions are kept out of .data for the same
        // reason.
        let mut in_text = true;
        let src: Vec<String> = fragments
            .into_iter()
            .filter(|f| {
                if f == "lbl:" {
                    return false;
                }
                if f.trim() == ".data" {
                    in_text = false;
                } else if f.trim() == ".text" {
                    in_text = true;
                }
                in_text || f.trim_start().starts_with('.')
            })
            .collect();
        let text = format!("lbl:\n{}", src.join("\n"));
        let result = assemble(&text, 0x1_0000);
        assert!(
            result.is_ok(),
            "fragment soup must assemble: {:?}\n{text}",
            result.err()
        );
        // Assembly is deterministic.
        let again = assemble(&text, 0x1_0000).unwrap();
        assert_eq!(result.unwrap().to_bytes(), again.to_bytes());
    });
}
