//! Property-based tests for the ISA substrate: encode/decode roundtrips,
//! `li` materialisation, ALU semantics, and MEXE serialisation.

use proptest::prelude::*;

use marshal_isa::asm::{assemble, materialize_li};
use marshal_isa::decode::decode;
use marshal_isa::encode::encode;
use marshal_isa::inst::{AluImmOp, AluOp, BranchCond, Inst, MemWidth, Reg};
use marshal_isa::interp::{Cpu, StepOutcome};
use marshal_isa::mem::{Bus, FlatMemory};
use marshal_isa::MexeFile;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|i| Reg::new(i).unwrap())
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    let imm12 = -2048i64..2048;
    let br_off = (-2048i64..2048).prop_map(|v| v * 2);
    let jal_off = (-100_000i64..100_000).prop_map(|v| v * 2);
    prop_oneof![
        (arb_reg(), -0x7_ffffi64..0x7_ffff).prop_map(|(rd, v)| Inst::Lui { rd, imm: v << 12 }),
        (arb_reg(), -0x7_ffffi64..0x7_ffff).prop_map(|(rd, v)| Inst::Auipc { rd, imm: v << 12 }),
        (arb_reg(), jal_off).prop_map(|(rd, offset)| Inst::Jal { rd, offset }),
        (arb_reg(), arb_reg(), imm12.clone())
            .prop_map(|(rd, rs1, offset)| Inst::Jalr { rd, rs1, offset }),
        (
            prop_oneof![
                Just(BranchCond::Eq),
                Just(BranchCond::Ne),
                Just(BranchCond::Lt),
                Just(BranchCond::Ge),
                Just(BranchCond::Ltu),
                Just(BranchCond::Geu)
            ],
            arb_reg(),
            arb_reg(),
            br_off
        )
            .prop_map(|(cond, rs1, rs2, offset)| Inst::Branch {
                cond,
                rs1,
                rs2,
                offset
            }),
        (
            prop_oneof![
                Just(MemWidth::B),
                Just(MemWidth::H),
                Just(MemWidth::W),
                Just(MemWidth::D),
                Just(MemWidth::Bu),
                Just(MemWidth::Hu),
                Just(MemWidth::Wu)
            ],
            arb_reg(),
            arb_reg(),
            imm12.clone()
        )
            .prop_map(|(width, rd, rs1, offset)| Inst::Load {
                width,
                rd,
                rs1,
                offset
            }),
        (
            prop_oneof![
                Just(MemWidth::B),
                Just(MemWidth::H),
                Just(MemWidth::W),
                Just(MemWidth::D)
            ],
            arb_reg(),
            arb_reg(),
            imm12.clone()
        )
            .prop_map(|(width, rs2, rs1, offset)| Inst::Store {
                width,
                rs2,
                rs1,
                offset
            }),
        (
            prop_oneof![
                Just(AluImmOp::Addi),
                Just(AluImmOp::Slti),
                Just(AluImmOp::Sltiu),
                Just(AluImmOp::Xori),
                Just(AluImmOp::Ori),
                Just(AluImmOp::Andi),
                Just(AluImmOp::Addiw)
            ],
            arb_reg(),
            arb_reg(),
            imm12
        )
            .prop_map(|(op, rd, rs1, imm)| Inst::AluImm { op, rd, rs1, imm }),
        (
            prop_oneof![
                Just(AluOp::Add),
                Just(AluOp::Sub),
                Just(AluOp::Sll),
                Just(AluOp::Xor),
                Just(AluOp::Mul),
                Just(AluOp::Div),
                Just(AluOp::Remu),
                Just(AluOp::Addw),
                Just(AluOp::Sraw)
            ],
            arb_reg(),
            arb_reg(),
            arb_reg()
        )
            .prop_map(|(op, rd, rs1, rs2)| Inst::Alu { op, rd, rs1, rs2 }),
    ]
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(inst in arb_inst()) {
        let word = encode(&inst).unwrap();
        let back = decode(word).unwrap();
        prop_assert_eq!(inst, back);
    }

    #[test]
    fn li_materialises_any_constant(imm in any::<i64>()) {
        let insts = materialize_li(Reg::A0, imm);
        prop_assert!(insts.len() <= 8, "li expansion too long: {}", insts.len());
        // Execute the sequence and verify the result.
        let mut mem = FlatMemory::new(1 << 12);
        for (i, inst) in insts.iter().enumerate() {
            let w = encode(inst).unwrap();
            mem.store(4 * i as u64, 4, w as u64).unwrap();
        }
        let halt = encode(&Inst::Ecall).unwrap();
        mem.store(4 * insts.len() as u64, 4, halt as u64).unwrap();
        let mut cpu = Cpu::new(0);
        loop {
            match cpu.step(&mut mem).unwrap() {
                StepOutcome::Retired(_) => {}
                StepOutcome::Ecall => break,
                other => prop_assert!(false, "unexpected {:?}", other),
            }
        }
        prop_assert_eq!(cpu.read_reg(Reg::A0) as i64, imm);
    }

    #[test]
    fn mexe_roundtrip(entry in any::<u64>(), segs in proptest::collection::vec(
        (0u64..1 << 30, proptest::collection::vec(any::<u8>(), 0..256)), 0..4),
        syms in proptest::collection::btree_map("[a-z_][a-z0-9_]{0,12}", any::<u64>(), 0..6))
    {
        let mut f = MexeFile::new(entry);
        for (vaddr, data) in segs {
            f.push_segment(vaddr, data);
        }
        for (name, value) in syms {
            f.define_symbol(name, value);
        }
        let bytes = f.to_bytes();
        let g = MexeFile::from_bytes(&bytes).unwrap();
        prop_assert_eq!(f, g);
    }

    #[test]
    fn division_never_traps(a in any::<u64>(), b in any::<u64>()) {
        // RISC-V defines results for div-by-zero and overflow: execution
        // must retire normally for every operand pair.
        let mut mem = FlatMemory::new(256);
        for (i, op) in [AluOp::Div, AluOp::Divu, AluOp::Rem, AluOp::Remu,
                        AluOp::Divw, AluOp::Divuw, AluOp::Remw, AluOp::Remuw]
            .iter()
            .enumerate()
        {
            let w = encode(&Inst::Alu { op: *op, rd: Reg::A2, rs1: Reg::A0, rs2: Reg::A1 }).unwrap();
            mem.store(4 * i as u64, 4, w as u64).unwrap();
        }
        mem.store(32, 4, encode(&Inst::Ecall).unwrap() as u64).unwrap();
        let mut cpu = Cpu::new(0);
        cpu.write_reg(Reg::A0, a);
        cpu.write_reg(Reg::A1, b);
        let out = cpu.run(&mut mem, 64).unwrap();
        prop_assert_eq!(out, Some(StepOutcome::Ecall));
    }

    #[test]
    fn flat_memory_store_load(addr in 0u64..4000, val in any::<u64>(),
                              size in prop_oneof![Just(1usize), Just(2), Just(4), Just(8)]) {
        let mut m = FlatMemory::new(4096);
        prop_assume!(addr as usize + size <= 4096);
        m.store(addr, size, val).unwrap();
        let mask = if size == 8 { u64::MAX } else { (1u64 << (8 * size)) - 1 };
        prop_assert_eq!(m.load(addr, size).unwrap(), val & mask);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn assembled_programs_are_deterministic(n in 1u32..64) {
        // A generated program of n additions always assembles to identical
        // bytes and computes the expected sum.
        let mut src = String::from("_start:\n li a0, 0\n");
        for i in 1..=n {
            src.push_str(&format!(" addi a0, a0, {}\n", i % 100));
        }
        src.push_str(" ecall\n");
        let a = assemble(&src, 0x1_0000).unwrap();
        let b = assemble(&src, 0x1_0000).unwrap();
        prop_assert_eq!(a.to_bytes(), b.to_bytes());
        let mut mem = FlatMemory::new(1 << 20);
        a.load_into(&mut mem).unwrap();
        let mut cpu = Cpu::new(a.entry());
        cpu.run(&mut mem, 10_000).unwrap();
        let expected: u64 = (1..=n as u64).map(|i| i % 100).sum();
        prop_assert_eq!(cpu.read_reg(Reg::A0), expected);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The assembler is total: arbitrary text is either assembled or
    /// rejected with a line-numbered error, never a panic.
    #[test]
    fn assembler_never_panics(src in "\\PC{0,200}") {
        let _ = assemble(&src, 0x1_0000);
    }

    /// Structured fuzz: random well-formed-ish instruction streams.
    #[test]
    fn assembler_handles_fragment_soup(
        fragments in proptest::collection::vec(
            prop_oneof![
                Just("  nop".to_owned()),
                Just("lbl:".to_owned()),
                Just("  j lbl".to_owned()),
                Just("  beqz a0, lbl".to_owned()),
                (0i64..4096).prop_map(|n| format!("  li a0, {n}")),
                ( -2048i64..2048).prop_map(|n| format!("  addi a1, a1, {n}")),
                Just("  .data".to_owned()),
                Just("  .word 1, 2, 3".to_owned()),
                Just("  .asciiz \"x\"".to_owned()),
                Just("  .text".to_owned()),
                Just("  mul a0, a1, a2".to_owned()),
                Just("  ld a0, 0(sp)".to_owned()),
            ],
            0..20,
        )
    ) {
        // `lbl` is always defined once, at the start of the text section
        // (branches from .data to .text may legitimately exceed their
        // encoding range, which is an expected assembler error, not a
        // robustness bug). Instructions are kept out of .data for the same
        // reason.
        let mut in_text = true;
        let src: Vec<String> = fragments
            .into_iter()
            .filter(|f| {
                if f == "lbl:" {
                    return false;
                }
                if f.trim() == ".data" {
                    in_text = false;
                } else if f.trim() == ".text" {
                    in_text = true;
                }
                in_text || f.trim_start().starts_with('.')
            })
            .collect();
        let text = format!("lbl:\n{}", src.join("\n"));
        let result = assemble(&text, 0x1_0000);
        prop_assert!(result.is_ok(), "fragment soup must assemble: {:?}\n{text}", result.err());
        // Assembly is deterministic.
        let again = assemble(&text, 0x1_0000).unwrap();
        prop_assert_eq!(result.unwrap().to_bytes(), again.to_bytes());
    }
}
