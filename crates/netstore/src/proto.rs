//! Wire protocol for the artifact distribution service.
//!
//! Every frame is length-prefixed and checksummed:
//!
//! ```text
//! "MNET" | payload len: u32 LE | payload | Fingerprint::of(payload): u128 LE
//! ```
//!
//! The checksum is verified before any payload parsing, so a frame that was
//! corrupted or truncated in flight is rejected as [`NetError::BadFrame`]
//! without ever reaching message decoding — the same defence the blob store
//! applies to on-disk payloads, extended to the wire.
//!
//! The payload is a tag byte plus a message body. Conversations open with a
//! `Hello`/`HelloAck` version handshake; after that the client issues
//! `HaveManifest`/`GetManifest` for level manifests (keyed by the level's
//! *input fingerprint*, so a hit is exactly a build-cache hit) and batched
//! `GetBlobs` for the payloads its local pool is missing.

use std::fmt;
use std::io::{Read, Write};

use marshal_depgraph::Fingerprint;

/// Protocol version spoken by this build; the handshake rejects mismatches.
pub const NET_VERSION: u32 = 1;

/// Frame magic bytes.
pub const FRAME_MAGIC: &[u8; 4] = b"MNET";

/// Upper bound on a frame payload — a defence against a lying peer
/// declaring a multi-gigabyte length and wedging the reader.
pub const MAX_FRAME: usize = 64 << 20;

/// Upper bound on fingerprints per `GetBlobs` request; clients chunk larger
/// fetch sets into multiple requests.
pub const MAX_BLOB_BATCH: usize = 256;

/// Errors from the distribution layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Socket or connection failure (reconnect may help).
    Io(String),
    /// A per-request deadline expired.
    Timeout(String),
    /// A frame failed its magic, length, or checksum validation.
    BadFrame(String),
    /// The peer spoke well-formed frames but violated the protocol
    /// (unexpected message, version mismatch, malformed manifest).
    Protocol(String),
    /// The remote reported an error or served bad data it refused to fix.
    Remote(String),
    /// The circuit breaker is open: the remote has failed enough
    /// consecutive times that this build has degraded to local-only.
    CircuitOpen,
}

impl NetError {
    /// Whether retrying the request (possibly on a fresh connection) could
    /// plausibly succeed. Transport-level failures are retryable; protocol
    /// violations and an open breaker are not.
    pub fn retryable(&self) -> bool {
        matches!(
            self,
            NetError::Io(_) | NetError::Timeout(_) | NetError::BadFrame(_)
        )
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(m) => write!(f, "network I/O error: {m}"),
            NetError::Timeout(m) => write!(f, "request timed out: {m}"),
            NetError::BadFrame(m) => write!(f, "bad frame: {m}"),
            NetError::Protocol(m) => write!(f, "protocol error: {m}"),
            NetError::Remote(m) => write!(f, "remote error: {m}"),
            NetError::CircuitOpen => write!(f, "circuit breaker open (degraded to local-only)"),
        }
    }
}

impl std::error::Error for NetError {}

/// A protocol message. See the module docs for the conversation shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Client greeting with its protocol version.
    Hello {
        /// The client's [`NET_VERSION`].
        version: u32,
    },
    /// Server acknowledgement of a compatible [`Message::Hello`].
    HelloAck {
        /// The server's [`NET_VERSION`].
        version: u32,
    },
    /// Does the server have a manifest for this level-input fingerprint?
    HaveManifest {
        /// The level's input fingerprint (its build-cache key).
        input: Fingerprint,
    },
    /// Answer to [`Message::HaveManifest`].
    Have {
        /// Whether the manifest is present.
        present: bool,
    },
    /// Fetch the manifest for this level-input fingerprint.
    GetManifest {
        /// The level's input fingerprint.
        input: Fingerprint,
    },
    /// Manifest payload for a [`Message::GetManifest`] hit.
    ManifestData {
        /// Raw `MMAN` manifest bytes.
        bytes: Vec<u8>,
    },
    /// The requested manifest is not on this server.
    NotFound,
    /// Batched blob fetch (at most [`MAX_BLOB_BATCH`] fingerprints).
    GetBlobs {
        /// Content fingerprints of the wanted blobs.
        fps: Vec<Fingerprint>,
    },
    /// Answer to [`Message::GetBlobs`], one entry per requested
    /// fingerprint in order; `None` payloads are absent (or failed server
    /// side verification and were withheld).
    Blobs {
        /// `(fingerprint, payload-if-present)` pairs.
        entries: Vec<(Fingerprint, Option<Vec<u8>>)>,
    },
    /// Server-reported error; the connection closes after sending this.
    ErrorMsg {
        /// Human-readable reason.
        message: String,
    },
    /// Execute a build task on the server (`marshal serve --exec`). The
    /// spec is the task's opaque [`marshal_depgraph::Task::remote_spec`]
    /// payload; the server parses it with whatever handler the daemon was
    /// configured with and answers [`Message::ExecDone`] /
    /// [`Message::ExecFailed`] once the build settles. Artifacts do NOT
    /// ride this reply — the client fetches them through the ordinary
    /// manifest/blob messages afterwards.
    ExecTask {
        /// The task id, for logs and error attribution.
        task: String,
        /// Opaque serialized task description.
        spec: Vec<u8>,
    },
    /// The [`Message::ExecTask`] build completed; its artifacts are now
    /// fetchable from this server.
    ExecDone {
        /// The task id echoed back.
        task: String,
    },
    /// The [`Message::ExecTask`] build failed on the server.
    ExecFailed {
        /// The task id echoed back.
        task: String,
        /// The failure message.
        message: String,
    },
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

fn encode_payload(msg: &Message) -> Vec<u8> {
    let mut out = Vec::new();
    match msg {
        Message::Hello { version } => {
            out.push(0);
            out.extend_from_slice(&version.to_le_bytes());
        }
        Message::HelloAck { version } => {
            out.push(1);
            out.extend_from_slice(&version.to_le_bytes());
        }
        Message::HaveManifest { input } => {
            out.push(2);
            out.extend_from_slice(&input.0.to_le_bytes());
        }
        Message::Have { present } => {
            out.push(3);
            out.push(u8::from(*present));
        }
        Message::GetManifest { input } => {
            out.push(4);
            out.extend_from_slice(&input.0.to_le_bytes());
        }
        Message::ManifestData { bytes } => {
            out.push(5);
            put_bytes(&mut out, bytes);
        }
        Message::NotFound => out.push(6),
        Message::GetBlobs { fps } => {
            out.push(7);
            out.extend_from_slice(&(fps.len() as u32).to_le_bytes());
            for fp in fps {
                out.extend_from_slice(&fp.0.to_le_bytes());
            }
        }
        Message::Blobs { entries } => {
            out.push(8);
            out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
            for (fp, payload) in entries {
                out.extend_from_slice(&fp.0.to_le_bytes());
                match payload {
                    Some(bytes) => {
                        out.push(1);
                        out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
                        out.extend_from_slice(bytes);
                    }
                    None => out.push(0),
                }
            }
        }
        Message::ErrorMsg { message } => {
            out.push(9);
            put_bytes(&mut out, message.as_bytes());
        }
        Message::ExecTask { task, spec } => {
            out.push(10);
            put_bytes(&mut out, task.as_bytes());
            put_bytes(&mut out, spec);
        }
        Message::ExecDone { task } => {
            out.push(11);
            put_bytes(&mut out, task.as_bytes());
        }
        Message::ExecFailed { task, message } => {
            out.push(12);
            put_bytes(&mut out, task.as_bytes());
            put_bytes(&mut out, message.as_bytes());
        }
    }
    out
}

/// Encodes a message into a complete wire frame (magic, length, payload,
/// checksum).
pub fn encode_frame(msg: &Message) -> Vec<u8> {
    let payload = encode_payload(msg);
    let mut frame = Vec::with_capacity(8 + payload.len() + 16);
    frame.extend_from_slice(FRAME_MAGIC);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame.extend_from_slice(&Fingerprint::of(&payload).0.to_le_bytes());
    frame
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        if self.pos + n > self.bytes.len() {
            return Err(NetError::BadFrame(format!(
                "payload truncated at byte {} (wanted {n} more)",
                self.pos
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, NetError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, NetError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, NetError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn fp(&mut self) -> Result<Fingerprint, NetError> {
        Ok(Fingerprint(u128::from_le_bytes(
            self.take(16)?.try_into().unwrap(),
        )))
    }

    fn bytes_u32(&mut self) -> Result<Vec<u8>, NetError> {
        let len = self.u32()? as usize;
        if len > MAX_FRAME {
            return Err(NetError::BadFrame(format!("field length {len} too large")));
        }
        Ok(self.take(len)?.to_vec())
    }
}

fn parse_payload(payload: &[u8]) -> Result<Message, NetError> {
    let mut c = Cursor {
        bytes: payload,
        pos: 0,
    };
    let tag = c.u8()?;
    let msg = match tag {
        0 => Message::Hello { version: c.u32()? },
        1 => Message::HelloAck { version: c.u32()? },
        2 => Message::HaveManifest { input: c.fp()? },
        3 => Message::Have {
            present: c.u8()? != 0,
        },
        4 => Message::GetManifest { input: c.fp()? },
        5 => Message::ManifestData {
            bytes: c.bytes_u32()?,
        },
        6 => Message::NotFound,
        7 => {
            let count = c.u32()? as usize;
            if count > MAX_BLOB_BATCH {
                return Err(NetError::Protocol(format!(
                    "GetBlobs batch of {count} exceeds cap {MAX_BLOB_BATCH}"
                )));
            }
            let mut fps = Vec::with_capacity(count);
            for _ in 0..count {
                fps.push(c.fp()?);
            }
            Message::GetBlobs { fps }
        }
        8 => {
            let count = c.u32()? as usize;
            if count > MAX_BLOB_BATCH {
                return Err(NetError::Protocol(format!(
                    "Blobs batch of {count} exceeds cap {MAX_BLOB_BATCH}"
                )));
            }
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                let fp = c.fp()?;
                let present = c.u8()? != 0;
                let payload = if present {
                    let len = c.u64()? as usize;
                    if len > MAX_FRAME {
                        return Err(NetError::BadFrame(format!("blob length {len} too large")));
                    }
                    Some(c.take(len)?.to_vec())
                } else {
                    None
                };
                entries.push((fp, payload));
            }
            Message::Blobs { entries }
        }
        9 => Message::ErrorMsg {
            message: String::from_utf8(c.bytes_u32()?)
                .map_err(|_| NetError::BadFrame("non-UTF-8 error message".to_owned()))?,
        },
        10 => Message::ExecTask {
            task: String::from_utf8(c.bytes_u32()?)
                .map_err(|_| NetError::BadFrame("non-UTF-8 task id".to_owned()))?,
            spec: c.bytes_u32()?,
        },
        11 => Message::ExecDone {
            task: String::from_utf8(c.bytes_u32()?)
                .map_err(|_| NetError::BadFrame("non-UTF-8 task id".to_owned()))?,
        },
        12 => Message::ExecFailed {
            task: String::from_utf8(c.bytes_u32()?)
                .map_err(|_| NetError::BadFrame("non-UTF-8 task id".to_owned()))?,
            message: String::from_utf8(c.bytes_u32()?)
                .map_err(|_| NetError::BadFrame("non-UTF-8 error message".to_owned()))?,
        },
        t => return Err(NetError::BadFrame(format!("unknown message tag {t}"))),
    };
    if c.pos != payload.len() {
        return Err(NetError::BadFrame(format!(
            "{} trailing bytes after message",
            payload.len() - c.pos
        )));
    }
    Ok(msg)
}

/// Validates and decodes a complete wire frame into a message.
///
/// # Errors
///
/// [`NetError::BadFrame`] when the magic, length, or checksum does not
/// validate (the payload is never parsed in that case), or when the payload
/// itself is malformed; [`NetError::Protocol`] when a batch exceeds its cap.
pub fn decode_frame(frame: &[u8]) -> Result<Message, NetError> {
    if frame.len() < 8 {
        return Err(NetError::BadFrame(format!(
            "frame of {} bytes is shorter than the header",
            frame.len()
        )));
    }
    if &frame[..4] != FRAME_MAGIC {
        return Err(NetError::BadFrame("bad frame magic".to_owned()));
    }
    let len = u32::from_le_bytes(frame[4..8].try_into().unwrap()) as usize;
    if len > MAX_FRAME {
        return Err(NetError::BadFrame(format!(
            "declared payload of {len} bytes exceeds cap"
        )));
    }
    if frame.len() != 8 + len + 16 {
        return Err(NetError::BadFrame(format!(
            "frame is {} bytes but declares a {len}-byte payload",
            frame.len()
        )));
    }
    let payload = &frame[8..8 + len];
    let sum = u128::from_le_bytes(frame[8 + len..].try_into().unwrap());
    let actual = Fingerprint::of(payload).0;
    if sum != actual {
        return Err(NetError::BadFrame(
            "payload checksum mismatch (corrupted in flight)".to_owned(),
        ));
    }
    parse_payload(payload)
}

fn io_err(context: &str, e: &std::io::Error) -> NetError {
    use std::io::ErrorKind;
    match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => NetError::Timeout(format!("{context}: {e}")),
        _ => NetError::Io(format!("{context}: {e}")),
    }
}

/// Reads one complete raw frame (header, payload, and checksum) from a
/// stream. Returns the raw bytes so transports can hand them to
/// [`decode_frame`] — or corrupt them first, in fault-injection shims.
///
/// # Errors
///
/// [`NetError::Timeout`] when a read deadline expires, [`NetError::Io`] on
/// other socket failures (including EOF mid-frame), [`NetError::BadFrame`]
/// when the header's magic or declared length is invalid.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, NetError> {
    let mut header = [0u8; 8];
    r.read_exact(&mut header)
        .map_err(|e| io_err("reading frame header", &e))?;
    if &header[..4] != FRAME_MAGIC {
        return Err(NetError::BadFrame("bad frame magic".to_owned()));
    }
    let len = u32::from_le_bytes(header[4..8].try_into().unwrap()) as usize;
    if len > MAX_FRAME {
        return Err(NetError::BadFrame(format!(
            "declared payload of {len} bytes exceeds cap"
        )));
    }
    let mut frame = Vec::with_capacity(8 + len + 16);
    frame.extend_from_slice(&header);
    frame.resize(8 + len + 16, 0);
    r.read_exact(&mut frame[8..])
        .map_err(|e| io_err("reading frame body", &e))?;
    Ok(frame)
}

/// Writes a raw frame to a stream.
///
/// # Errors
///
/// [`NetError::Timeout`] when a write deadline expires, [`NetError::Io`] on
/// other socket failures.
pub fn write_frame<W: Write>(w: &mut W, frame: &[u8]) -> Result<(), NetError> {
    w.write_all(frame)
        .map_err(|e| io_err("writing frame", &e))?;
    w.flush().map_err(|e| io_err("flushing frame", &e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::Hello {
                version: NET_VERSION,
            },
            Message::HelloAck {
                version: NET_VERSION,
            },
            Message::HaveManifest {
                input: Fingerprint(42),
            },
            Message::Have { present: true },
            Message::GetManifest {
                input: Fingerprint(u128::MAX),
            },
            Message::ManifestData {
                bytes: b"MMAN....".to_vec(),
            },
            Message::NotFound,
            Message::GetBlobs {
                fps: vec![Fingerprint(1), Fingerprint(2), Fingerprint(3)],
            },
            Message::Blobs {
                entries: vec![
                    (Fingerprint(1), Some(b"payload".to_vec())),
                    (Fingerprint(2), None),
                ],
            },
            Message::ErrorMsg {
                message: "no thanks".to_owned(),
            },
            Message::ExecTask {
                task: "level:br-base+tools".to_owned(),
                spec: b"marshal-level-v1\n...".to_vec(),
            },
            Message::ExecDone {
                task: "level:br-base+tools".to_owned(),
            },
            Message::ExecFailed {
                task: "level:br-base+tools".to_owned(),
                message: "distro build failed".to_owned(),
            },
        ]
    }

    #[test]
    fn roundtrip_every_message() {
        for msg in sample_messages() {
            let frame = encode_frame(&msg);
            assert_eq!(decode_frame(&frame).unwrap(), msg, "roundtrip of {msg:?}");
        }
    }

    #[test]
    fn stream_roundtrip() {
        let mut buf = Vec::new();
        for msg in sample_messages() {
            write_frame(&mut buf, &encode_frame(&msg)).unwrap();
        }
        let mut r = &buf[..];
        for msg in sample_messages() {
            let frame = read_frame(&mut r).unwrap();
            assert_eq!(decode_frame(&frame).unwrap(), msg);
        }
        assert!(r.is_empty());
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let msg = Message::Blobs {
            entries: vec![(Fingerprint(7), Some(b"some payload bytes".to_vec()))],
        };
        let frame = encode_frame(&msg);
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x40;
            assert!(
                decode_frame(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn truncation_is_rejected_not_panicked() {
        let frame = encode_frame(&Message::ManifestData {
            bytes: vec![0xAB; 100],
        });
        for cut in 0..frame.len() {
            assert!(decode_frame(&frame[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn random_garbage_never_panics() {
        let mut rng = marshal_qcheck::Rng::new(0x9e37);
        for _ in 0..500 {
            let garbage = rng.bytes_in(0, 200);
            let _ = decode_frame(&garbage);
        }
        // Garbage wearing a valid header must still fail the checksum.
        let mut framed = Vec::new();
        framed.extend_from_slice(FRAME_MAGIC);
        framed.extend_from_slice(&8u32.to_le_bytes());
        framed.extend_from_slice(&[0xEE; 8 + 16]);
        assert!(matches!(decode_frame(&framed), Err(NetError::BadFrame(_))));
    }

    #[test]
    fn oversized_declared_length_is_capped() {
        let mut frame = Vec::new();
        frame.extend_from_slice(FRAME_MAGIC);
        frame.extend_from_slice(&(u32::MAX).to_le_bytes());
        let err = read_frame(&mut &frame[..]).unwrap_err();
        assert!(matches!(err, NetError::BadFrame(_)), "{err}");
    }

    #[test]
    fn oversized_blob_batch_is_a_protocol_error() {
        let fps: Vec<Fingerprint> = (0..MAX_BLOB_BATCH as u128 + 1).map(Fingerprint).collect();
        let frame = encode_frame(&Message::GetBlobs { fps });
        assert!(matches!(decode_frame(&frame), Err(NetError::Protocol(_))));
    }

    #[test]
    fn retryable_classification() {
        assert!(NetError::Io("x".into()).retryable());
        assert!(NetError::Timeout("x".into()).retryable());
        assert!(NetError::BadFrame("x".into()).retryable());
        assert!(!NetError::Protocol("x".into()).retryable());
        assert!(!NetError::Remote("x".into()).retryable());
        assert!(!NetError::CircuitOpen.retryable());
    }

    #[test]
    fn eof_mid_frame_is_io_not_panic() {
        let frame = encode_frame(&Message::NotFound);
        let cut = &frame[..frame.len() - 3];
        assert!(matches!(read_frame(&mut &cut[..]), Err(NetError::Io(_))));
    }
}
