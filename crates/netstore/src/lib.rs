//! # marshal-netstore
//!
//! Resilient artifact distribution for marshal workdirs: turns the
//! content-addressed blob pool (`workdir/objects/`) into a fleet-scale
//! artifact cache, so two machines building the same workload spec transfer
//! only the bytes the receiver is missing.
//!
//! - [`proto`]: a length-prefixed, checksummed frame protocol with a version
//!   handshake and batched blob requests.
//! - [`transport`]: the pluggable [`Transport`] trait — real TCP, an
//!   in-process loopback for tests, and a [`FaultTransport`] shim that
//!   injects deterministic network faults.
//! - [`server`]: the `marshal serve` daemon — thread-per-connection with
//!   per-connection read deadlines, malformed-frame rejection without
//!   crashing, and graceful drain on SIGINT.
//! - [`client`]: the fetch-before-build client — bounded retries with
//!   exponential backoff and deterministic jitter, a circuit breaker that
//!   degrades a whole build to local-only after consecutive failures, and
//!   hash verification with quarantine of every received blob.
//! - [`runner`]: the remote task runner — plugs a `marshal serve --exec`
//!   daemon into the depgraph scheduler as a [`RemoteRunner`], falling
//!   back to local execution and retiring itself on any remote failure.
//!
//! Robustness is the headline: a dead or lying daemon must cost one timeout
//! and a structured warning, never a wedged or failed build.

#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod runner;
pub mod server;
pub mod transport;

pub use client::{RemoteFetchSummary, RemoteStore, RetryPolicy};
pub use proto::{decode_frame, encode_frame, Message, NetError, NET_VERSION};
pub use runner::{FetchHook, RemoteRunner};
pub use server::{ExecHandler, ServeSummary, Server, ServerHandle};
pub use transport::{
    FaultPlan, FaultTransport, LoopbackTransport, NetFaultKind, TcpTransport, Transport,
};
