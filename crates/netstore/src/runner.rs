//! The remote task runner: dispatches build tasks to a `marshal serve
//! --exec` daemon over the MNET EXEC protocol.
//!
//! A [`RemoteRunner`] wraps one [`RemoteStore`] client (so it inherits the
//! retry/backoff/circuit-breaker policy the fetch path already has) and
//! plugs into the depgraph scheduler as a [`TaskRunner`]. The failure
//! philosophy matches fetching: a remote can *accelerate* a build but
//! never break one. Any remote problem — refused exec, dead transport,
//! failed artifact fetch — makes the runner execute the task locally,
//! report its terminal event, and then retire itself with `RunnerLost` so
//! the scheduler routes the rest of the build elsewhere. A task is never
//! orphaned: the terminal event always precedes the retirement.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

use marshal_depgraph::{run_task, Assignment, EventSender, Task, TaskRunner};
use marshal_trace::Recorder;

use crate::client::RemoteStore;

/// Pulls a finished task's artifacts from the remote into the local
/// workdir (manifest plus missing blobs) after the daemon reports success.
/// Returning an error makes the runner fall back to executing locally —
/// a remote build whose artifacts cannot be fetched is worthless.
pub type FetchHook = Arc<dyn Fn(&Task) -> Result<(), String> + Send + Sync>;

/// A [`TaskRunner`] that executes tasks on a `marshal serve --exec`
/// daemon. One slot: the daemon serializes builds anyway, and one
/// in-flight task bounds the damage when the remote dies mid-build.
///
/// Only tasks carrying a serialized description
/// ([`Task::remote_payload`]) are eligible; the scheduler offers the rest
/// to other runners.
pub struct RemoteRunner {
    store: Arc<RemoteStore>,
    fetch: FetchHook,
    recorder: Recorder,
    label: String,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for RemoteRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteRunner")
            .field("label", &self.label)
            .finish_non_exhaustive()
    }
}

impl RemoteRunner {
    /// Creates a runner over an established client. `fetch` runs after
    /// every successful remote exec to localize the artifacts.
    pub fn new(store: Arc<RemoteStore>, fetch: FetchHook) -> RemoteRunner {
        let label = format!("remote:{}", store.label());
        RemoteRunner {
            store,
            fetch,
            recorder: Recorder::disabled(),
            label,
            handles: Vec::new(),
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "task panicked".to_owned()
    }
}

impl TaskRunner for RemoteRunner {
    fn label(&self) -> String {
        self.label.clone()
    }

    fn slots(&self) -> usize {
        1
    }

    fn can_run(&self, task: &Task) -> bool {
        task.remote_payload().is_some()
    }

    fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    fn submit(&mut self, assignment: Assignment, events: &EventSender) {
        let store = Arc::clone(&self.store);
        let fetch = Arc::clone(&self.fetch);
        let rec = self.recorder.clone();
        let label = self.label.clone();
        let events = events.clone();
        self.handles.push(std::thread::spawn(move || {
            let task = assignment.task;
            let id = task.id().to_owned();
            events.started(&id);
            let span = rec.span(
                "task",
                &[
                    ("task", &id),
                    ("claim_wait_us", &assignment.claim_wait_us.to_string()),
                    ("runner", &label),
                ],
            );
            let remote_result = if store.degraded() {
                Err(format!("remote {}: circuit breaker open", store.label()))
            } else {
                let spec = task.remote_payload().expect("can_run admitted this task");
                store.exec_task(&id, spec).and_then(|()| {
                    // The fetch hook writes the task's declared outputs, so
                    // it runs under the task's write claims like the action
                    // itself would.
                    marshal_depgraph::with_claims(&task, || (fetch)(&task))
                        .map_err(|e| format!("fetching remote artifacts for `{id}`: {e}"))
                })
            };
            match remote_result {
                Ok(()) => {
                    // A remote hit is a cache hit: the fetched artifacts are
                    // bit-identical to what a local build would produce.
                    span.end_with(&[("outcome", "executed"), ("remote", "hit")]);
                    events.finished(&id);
                }
                Err(reason) => {
                    store.note(format!(
                        "remote {}: `{id}` fell back to local execution ({reason})",
                        store.label()
                    ));
                    match catch_unwind(AssertUnwindSafe(|| run_task(&task))) {
                        Ok(Ok(())) => {
                            span.end_with(&[("outcome", "executed"), ("remote", "fallback")]);
                            events.finished(&id);
                        }
                        Ok(Err(message)) => {
                            span.end_with(&[("outcome", "failed"), ("error", &message)]);
                            events.failed(&id, message);
                        }
                        Err(payload) => {
                            let message = panic_message(payload);
                            span.end_with(&[("outcome", "panicked"), ("error", &message)]);
                            events.panicked(&id, message);
                        }
                    }
                    // Terminal event first, then retirement: the scheduler
                    // settles the task before it stops offering work here,
                    // so nothing is orphaned and nothing hangs.
                    events.runner_lost(reason);
                }
            }
        }));
    }

    fn shutdown(&mut self) {
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for RemoteRunner {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::RetryPolicy;
    use crate::server::{ExecHandler, ServeRoot};
    use crate::transport::LoopbackTransport;
    use marshal_depgraph::{ExecEvent, ExecOptions, Graph, StateDb};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{mpsc, Mutex};

    fn scratch(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("marshal-rrun-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn loopback_store(dir: &std::path::Path, handler: Option<ExecHandler>) -> Arc<RemoteStore> {
        let mut root = ServeRoot::new(dir);
        if let Some(h) = handler {
            root.set_exec_handler(h);
        }
        let root = Arc::new(root);
        Arc::new(RemoteStore::with_factory(
            "loopback",
            Box::new(move || Ok(Box::new(LoopbackTransport::new(Arc::clone(&root))) as _)),
            RetryPolicy::fast(),
        ))
    }

    fn no_fetch() -> FetchHook {
        Arc::new(|_task: &Task| Ok(()))
    }

    #[test]
    fn remote_runner_executes_via_daemon_not_locally() {
        let dir = scratch("hit");
        let seen: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let handler: ExecHandler = Arc::new(move |task, spec| {
            seen2
                .lock()
                .unwrap()
                .push(format!("{task}:{}", String::from_utf8_lossy(spec)));
            Ok(())
        });
        let store = loopback_store(&dir, Some(handler));
        let ran_locally = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&ran_locally);
        let task = Task::new("lv", move || {
            r.fetch_add(1, Ordering::SeqCst);
            Ok(())
        })
        .remote_spec(b"spec-bytes".to_vec());

        let mut runner = RemoteRunner::new(store, no_fetch());
        assert!(runner.can_run(&task));
        let (tx, rx) = mpsc::channel();
        let events = EventSender::new(0, tx);
        runner.submit(
            Assignment {
                task,
                claim_wait_us: 0,
            },
            &events,
        );
        assert!(matches!(rx.recv().unwrap(), ExecEvent::Started { .. }));
        assert!(matches!(
            rx.recv().unwrap(),
            ExecEvent::Finished { ref task, .. } if task == "lv"
        ));
        runner.shutdown();
        assert_eq!(
            ran_locally.load(Ordering::SeqCst),
            0,
            "must not run locally"
        );
        assert_eq!(seen.lock().unwrap().as_slice(), ["lv:spec-bytes"]);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn remote_failure_falls_back_locally_then_retires() {
        let dir = scratch("fallback");
        let handler: ExecHandler = Arc::new(|_task, _spec| Err("disk full".to_owned()));
        let store = loopback_store(&dir, Some(handler));
        let ran_locally = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&ran_locally);
        let task = Task::new("lv", move || {
            r.fetch_add(1, Ordering::SeqCst);
            Ok(())
        })
        .remote_spec(b"s".to_vec());

        let mut runner = RemoteRunner::new(Arc::clone(&store), no_fetch());
        let (tx, rx) = mpsc::channel();
        runner.submit(
            Assignment {
                task,
                claim_wait_us: 0,
            },
            &EventSender::new(0, tx),
        );
        let events: Vec<ExecEvent> = rx.iter().take(3).collect();
        assert!(matches!(events[0], ExecEvent::Started { .. }));
        // Terminal event strictly precedes retirement.
        assert!(matches!(
            events[1],
            ExecEvent::Finished { ref task, .. } if task == "lv"
        ));
        assert!(matches!(
            events[2],
            ExecEvent::RunnerLost { ref reason, .. } if reason.contains("disk full")
        ));
        runner.shutdown();
        assert_eq!(ran_locally.load(Ordering::SeqCst), 1);
        let notes = store.take_notes();
        assert!(
            notes.iter().any(|n| n.contains("fell back to local")),
            "{notes:?}"
        );
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn exec_against_daemon_without_handler_is_refused() {
        let dir = scratch("no-exec");
        let store = loopback_store(&dir, None);
        let err = store.exec_task("lv", b"s").unwrap_err();
        assert!(err.contains("exec not enabled"), "{err}");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn tasks_without_spec_are_declined() {
        let dir = scratch("decline");
        let store = loopback_store(&dir, None);
        let runner = RemoteRunner::new(store, no_fetch());
        assert!(!runner.can_run(&Task::new("plain", || Ok(()))));
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// End-to-end through the scheduler: a failing remote retires after a
    /// local fallback, and the rest of the build lands on the surviving
    /// local runner — the build completes, never hangs.
    #[test]
    fn scheduler_survives_remote_runner_retirement() {
        let dir = scratch("sched");
        let handler: ExecHandler = Arc::new(|_task, _spec| Err("remote broken".to_owned()));
        let store = loopback_store(&dir, Some(handler));
        let count = Arc::new(AtomicUsize::new(0));
        let mut g = Graph::new();
        for id in ["a", "b", "c"] {
            let c = Arc::clone(&count);
            g.add(
                Task::new(id, move || {
                    c.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                })
                .remote_spec(format!("spec-{id}").into_bytes()),
            )
            .unwrap();
        }
        let mut db = StateDb::in_memory();
        let runners: Vec<Box<dyn TaskRunner>> = vec![
            Box::new(RemoteRunner::new(Arc::clone(&store), no_fetch())),
            Box::new(marshal_depgraph::LocalRunner::new(2)),
        ];
        let report = g
            .execute_with_runners(&mut db, &ExecOptions::default(), runners)
            .unwrap();
        assert_eq!(report.executed, vec!["a", "b", "c"]);
        assert_eq!(count.load(Ordering::SeqCst), 3);
        assert!(!store.take_notes().is_empty());
        std::fs::remove_dir_all(dir).unwrap();
    }
}
