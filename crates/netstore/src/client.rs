//! The fetch-before-build client.
//!
//! Given a remote daemon, a builder asks for each level's manifest by input
//! fingerprint and fetches only the blobs its local pool is missing; a hit
//! replaces the entire local level build. The failure philosophy is that a
//! remote can *accelerate* a build but never break one:
//!
//! - transport failures get bounded retries with exponential backoff and
//!   deterministic jitter;
//! - a circuit breaker trips after [`RetryPolicy::breaker_threshold`]
//!   consecutive failed attempts and degrades the whole build to local-only
//!   — a dead daemon costs one request's worth of timeouts, not one per
//!   level;
//! - every received blob is hash-verified; a mismatch is quarantined and
//!   re-fetched exactly once, and corrupt bytes never enter `objects/`;
//! - any unrecoverable fetch problem falls back to building locally and is
//!   reported as a structured note, never as a build failure.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use marshal_depgraph::Fingerprint;
use marshal_image::{manifest_refs, Blob, BlobStore};
use marshal_qcheck::Rng;
use marshal_trace::Recorder;

use crate::proto::{decode_frame, encode_frame, Message, NetError, MAX_BLOB_BATCH, NET_VERSION};
use crate::transport::{TcpTransport, Transport};

/// Produces a fresh connection; called lazily and again after any
/// connection is torn down by a failure.
pub type TransportFactory = Box<dyn Fn() -> Result<Box<dyn Transport>, NetError> + Send + Sync>;

/// Retry, deadline, and circuit-breaker tuning for a [`RemoteStore`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Attempts per request (first try included).
    pub attempts: u32,
    /// Backoff before retry `n` is `base_delay * 2^(n-1)` plus jitter,
    /// capped at `max_delay`.
    pub base_delay: Duration,
    /// Upper bound on a single backoff sleep.
    pub max_delay: Duration,
    /// Per-request deadline (connect, read, and write).
    pub request_timeout: Duration,
    /// Consecutive failed attempts before the breaker opens and the build
    /// degrades to local-only.
    pub breaker_threshold: u32,
    /// Seed for deterministic backoff jitter.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 3,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
            request_timeout: Duration::from_secs(5),
            breaker_threshold: 3,
            jitter_seed: 0x6d61_7273_6861_6c21,
        }
    }
}

impl RetryPolicy {
    /// A policy with millisecond-scale delays, for tests and benches that
    /// exercise retry paths without real waiting.
    pub fn fast() -> RetryPolicy {
        RetryPolicy {
            attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(4),
            request_timeout: Duration::from_secs(2),
            breaker_threshold: 3,
            jitter_seed: 7,
        }
    }
}

/// What remote fetching did for a build — surfaced in build products and
/// the CLI summary line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RemoteFetchSummary {
    /// Level manifests fetched from the remote.
    pub manifests_fetched: u64,
    /// Level manifests the remote did not have.
    pub manifests_missing: u64,
    /// Levels fully satisfied by the remote (manifest plus all blobs).
    pub levels_fetched: u64,
    /// Levels built locally (remote miss, degraded, or no remote data).
    pub levels_built_locally: u64,
    /// Blobs received and installed into the local pool.
    pub blobs_fetched: u64,
    /// Payload bytes received for those blobs.
    pub bytes_fetched: u64,
    /// Received blobs that failed hash verification and were quarantined.
    pub blobs_quarantined: u64,
    /// Request attempts that were retries of a failed attempt.
    pub retries: u64,
    /// Whether the circuit breaker tripped and the build degraded to
    /// local-only.
    pub degraded: bool,
}

impl RemoteFetchSummary {
    /// One human-readable line for build output.
    pub fn describe(&self) -> String {
        let mut s = format!(
            "remote: {} level(s) fetched ({} blobs, {} bytes), {} built locally",
            self.levels_fetched, self.blobs_fetched, self.bytes_fetched, self.levels_built_locally
        );
        if self.blobs_quarantined > 0 {
            s.push_str(&format!(
                ", {} corrupt blob(s) quarantined",
                self.blobs_quarantined
            ));
        }
        if self.degraded {
            s.push_str(" [degraded to local-only]");
        }
        s
    }
}

/// The stable journal label for a request message's kind.
pub(crate) fn message_kind(msg: &Message) -> &'static str {
    match msg {
        Message::Hello { .. } => "hello",
        Message::HaveManifest { .. } => "have-manifest",
        Message::GetManifest { .. } => "get-manifest",
        Message::GetBlobs { .. } => "get-blobs",
        Message::ExecTask { .. } => "exec-task",
        Message::ExecDone { .. } => "exec-done",
        Message::ExecFailed { .. } => "exec-failed",
        _ => "other",
    }
}

struct ClientState {
    conn: Option<Box<dyn Transport>>,
    consecutive_failures: u32,
    open: bool,
    rng: Rng,
}

#[derive(Default)]
struct ClientStats {
    manifests_fetched: AtomicU64,
    manifests_missing: AtomicU64,
    levels_fetched: AtomicU64,
    levels_built_locally: AtomicU64,
    blobs_fetched: AtomicU64,
    bytes_fetched: AtomicU64,
    blobs_quarantined: AtomicU64,
    retries: AtomicU64,
    degraded: AtomicBool,
}

/// A resilient client for one remote artifact daemon. Shared across build
/// tasks; requests are serialized internally.
pub struct RemoteStore {
    factory: TransportFactory,
    policy: RetryPolicy,
    state: Mutex<ClientState>,
    stats: ClientStats,
    notes: Mutex<Vec<String>>,
    label: String,
    /// Run-journal recorder (disabled by default); a mutex because the
    /// client is shared behind an `Arc` and the recorder is installed after
    /// construction. The hot path takes it once per request.
    recorder: Mutex<Recorder>,
}

impl std::fmt::Debug for RemoteStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteStore")
            .field("label", &self.label)
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

impl RemoteStore {
    /// A client over a custom transport factory (loopback, fault-injected,
    /// or anything else implementing [`Transport`]).
    pub fn with_factory(
        label: impl Into<String>,
        factory: TransportFactory,
        policy: RetryPolicy,
    ) -> RemoteStore {
        RemoteStore {
            factory,
            state: Mutex::new(ClientState {
                conn: None,
                consecutive_failures: 0,
                open: false,
                rng: Rng::new(policy.jitter_seed),
            }),
            policy,
            stats: ClientStats::default(),
            notes: Mutex::new(Vec::new()),
            label: label.into(),
            recorder: Mutex::new(Recorder::disabled()),
        }
    }

    /// Installs a run-journal recorder: every request records a `remote`
    /// span, and retries and breaker trips record instants.
    pub fn set_recorder(&self, recorder: Recorder) {
        *self.recorder.lock().expect("recorder lock") = recorder;
    }

    fn recorder(&self) -> Recorder {
        self.recorder.lock().expect("recorder lock").clone()
    }

    /// A client that connects over TCP to `addr` (`HOST:PORT`).
    pub fn tcp(addr: &str, policy: RetryPolicy) -> RemoteStore {
        let addr_owned = addr.to_owned();
        let timeout = policy.request_timeout;
        let factory: TransportFactory = Box::new(move || {
            Ok(Box::new(TcpTransport::connect(&addr_owned, timeout)?) as Box<dyn Transport>)
        });
        RemoteStore::with_factory(addr, factory, policy)
    }

    /// The remote's label (its address, for TCP clients).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Whether the circuit breaker has tripped (build degraded to
    /// local-only).
    pub fn degraded(&self) -> bool {
        self.stats.degraded.load(Ordering::Relaxed)
    }

    /// Drains accumulated human-readable notes (breaker trips, quarantines,
    /// fallbacks) for conversion into structured warnings.
    pub fn take_notes(&self) -> Vec<String> {
        std::mem::take(&mut *self.notes.lock().expect("notes lock"))
    }

    /// Records that a level was built locally instead of fetched.
    pub fn note_local_build(&self) {
        self.stats
            .levels_built_locally
            .fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the fetch statistics.
    pub fn summary(&self) -> RemoteFetchSummary {
        RemoteFetchSummary {
            manifests_fetched: self.stats.manifests_fetched.load(Ordering::Relaxed),
            manifests_missing: self.stats.manifests_missing.load(Ordering::Relaxed),
            levels_fetched: self.stats.levels_fetched.load(Ordering::Relaxed),
            levels_built_locally: self.stats.levels_built_locally.load(Ordering::Relaxed),
            blobs_fetched: self.stats.blobs_fetched.load(Ordering::Relaxed),
            bytes_fetched: self.stats.bytes_fetched.load(Ordering::Relaxed),
            blobs_quarantined: self.stats.blobs_quarantined.load(Ordering::Relaxed),
            retries: self.stats.retries.load(Ordering::Relaxed),
            degraded: self.stats.degraded.load(Ordering::Relaxed),
        }
    }

    /// Appends a human-readable note for the end-of-build warning drain.
    /// Public so the remote runner can report fallbacks through the same
    /// channel fetch failures use.
    pub fn note(&self, line: String) {
        self.notes.lock().expect("notes lock").push(line);
    }

    fn backoff_delay(&self, attempt: u32, rng: &mut Rng) -> Duration {
        let base = self.policy.base_delay;
        let exp = base.saturating_mul(1u32 << (attempt - 1).min(16));
        let capped = exp.min(self.policy.max_delay);
        let jitter_cap = (base.as_millis() as u64 / 2).max(1);
        capped + Duration::from_millis(rng.below(jitter_cap + 1))
    }

    /// Connects and performs the version handshake.
    fn open_connection(&self) -> Result<Box<dyn Transport>, NetError> {
        let mut t = (self.factory)()?;
        let reply = t.exchange(&encode_frame(&Message::Hello {
            version: NET_VERSION,
        }))?;
        match decode_frame(&reply)? {
            Message::HelloAck { version } if version == NET_VERSION => Ok(t),
            Message::ErrorMsg { message } => Err(NetError::Remote(message)),
            other => Err(NetError::Protocol(format!(
                "expected HelloAck, got {other:?}"
            ))),
        }
    }

    fn attempt_once(&self, st: &mut ClientState, frame: &[u8]) -> Result<Message, NetError> {
        if st.conn.is_none() {
            st.conn = Some(self.open_connection()?);
        }
        let conn = st.conn.as_mut().expect("connection just ensured");
        let reply = conn.exchange(frame)?;
        decode_frame(&reply)
    }

    fn record_failure(&self, st: &mut ClientState) -> bool {
        st.conn = None;
        st.consecutive_failures += 1;
        if st.consecutive_failures >= self.policy.breaker_threshold && !st.open {
            st.open = true;
            self.stats.degraded.store(true, Ordering::Relaxed);
            self.recorder()
                .breaker_trip(u64::from(st.consecutive_failures));
            self.note(format!(
                "remote {}: circuit breaker opened after {} consecutive failures; \
                 degrading this build to local-only",
                self.label, st.consecutive_failures
            ));
            return true;
        }
        false
    }

    /// Sends one request with retry/backoff and breaker accounting.
    ///
    /// # Errors
    ///
    /// [`NetError::CircuitOpen`] when the breaker is (or becomes) open;
    /// otherwise the last attempt's error.
    pub fn request(&self, msg: &Message) -> Result<Message, NetError> {
        let frame = encode_frame(msg);
        let mut st = self.state.lock().expect("client state lock");
        if st.open {
            // The degraded fast-path stays free: no span, no sends.
            return Err(NetError::CircuitOpen);
        }
        let rec = self.recorder();
        let kind = message_kind(msg);
        let span = rec.span("remote", &[("kind", kind)]);
        let mut attempts_used = 1u64;
        let result = self.request_attempts(&mut st, &frame, kind, &rec, &mut attempts_used);
        let outcome = match &result {
            Ok(_) => "ok",
            Err(NetError::CircuitOpen) => "breaker-open",
            Err(NetError::Remote(_)) => "refused",
            Err(_) => "error",
        };
        span.end_with(&[
            ("outcome", outcome),
            ("attempts", &attempts_used.to_string()),
        ]);
        result
    }

    /// The retry loop of [`RemoteStore::request`], under the state lock.
    fn request_attempts(
        &self,
        st: &mut ClientState,
        frame: &[u8],
        kind: &str,
        rec: &Recorder,
        attempts_used: &mut u64,
    ) -> Result<Message, NetError> {
        let attempts = self.policy.attempts.max(1);
        let mut last = NetError::Io("no attempts made".to_owned());
        for attempt in 0..attempts {
            if attempt > 0 {
                let delay = self.backoff_delay(attempt, &mut st.rng);
                std::thread::sleep(delay);
                self.stats.retries.fetch_add(1, Ordering::Relaxed);
                rec.remote_retry(kind, u64::from(attempt));
                *attempts_used = u64::from(attempt) + 1;
            }
            match self.attempt_once(st, frame) {
                Ok(Message::ErrorMsg { message }) => {
                    // The server answered but refused us; retrying the same
                    // request will not change its mind.
                    st.conn = None;
                    if self.record_failure(st) {
                        return Err(NetError::CircuitOpen);
                    }
                    return Err(NetError::Remote(message));
                }
                Ok(reply) => {
                    st.consecutive_failures = 0;
                    return Ok(reply);
                }
                Err(e) if e.retryable() => {
                    if self.record_failure(st) {
                        return Err(NetError::CircuitOpen);
                    }
                    last = e;
                }
                Err(e) => {
                    if self.record_failure(st) {
                        return Err(NetError::CircuitOpen);
                    }
                    return Err(e);
                }
            }
        }
        Err(last)
    }

    /// Fetches one blob payload, returning `None` when the remote does not
    /// have (or withholds) it.
    fn fetch_one_blob(&self, fp: Fingerprint) -> Result<Option<Vec<u8>>, NetError> {
        match self.request(&Message::GetBlobs { fps: vec![fp] })? {
            Message::Blobs { mut entries } if entries.len() == 1 => Ok(entries.remove(0).1),
            other => Err(NetError::Protocol(format!(
                "expected a 1-entry Blobs reply, got {other:?}"
            ))),
        }
    }

    /// Verifies received bytes against `fp`; on mismatch quarantines them
    /// and re-fetches exactly once.
    fn verify_or_refetch(
        &self,
        store: &BlobStore,
        fp: Fingerprint,
        bytes: Vec<u8>,
    ) -> Result<Option<Vec<u8>>, NetError> {
        if Fingerprint::of(&bytes) == fp {
            return Ok(Some(bytes));
        }
        self.stats.blobs_quarantined.fetch_add(1, Ordering::Relaxed);
        let where_to = store
            .quarantine_received(fp, &bytes)
            .map(|p| p.display().to_string())
            .unwrap_or_else(|e| format!("<quarantine failed: {e}>"));
        self.note(format!(
            "remote {}: blob {fp} failed hash verification; quarantined to {where_to}, \
             re-fetching once",
            self.label
        ));
        let Some(again) = self.fetch_one_blob(fp)? else {
            return Ok(None);
        };
        if Fingerprint::of(&again) == fp {
            return Ok(Some(again));
        }
        let _ = store.quarantine_received(fp, &again);
        self.stats.blobs_quarantined.fetch_add(1, Ordering::Relaxed);
        Err(NetError::Remote(format!(
            "remote {} served blob {fp} corrupt twice; refusing it",
            self.label
        )))
    }

    /// Fetches a level by input fingerprint: the manifest, then only the
    /// blobs missing from the local pool. On success every referenced blob
    /// is verified and installed and the manifest bytes are returned.
    /// `Ok(None)` means the remote cannot fully supply this level (absent
    /// manifest or blob) and the caller should build locally.
    ///
    /// # Errors
    ///
    /// [`NetError::CircuitOpen`] once degraded; transport errors that
    /// survived retries; [`NetError::Remote`] for a twice-corrupt blob.
    /// Callers treat every error as "build locally" — fetching never fails
    /// a build.
    pub fn fetch_level(
        &self,
        store: &BlobStore,
        input: Fingerprint,
    ) -> Result<Option<Vec<u8>>, NetError> {
        let manifest = match self.request(&Message::GetManifest { input })? {
            Message::ManifestData { bytes } => bytes,
            Message::NotFound => {
                self.stats.manifests_missing.fetch_add(1, Ordering::Relaxed);
                return Ok(None);
            }
            other => {
                return Err(NetError::Protocol(format!(
                    "expected ManifestData/NotFound, got {other:?}"
                )))
            }
        };
        self.stats.manifests_fetched.fetch_add(1, Ordering::Relaxed);
        let refs = manifest_refs(&manifest).map_err(|e| {
            NetError::Protocol(format!(
                "remote {} sent a malformed manifest: {e}",
                self.label
            ))
        })?;
        let missing: Vec<Fingerprint> = refs.into_iter().filter(|fp| !store.has(*fp)).collect();
        for chunk in missing.chunks(MAX_BLOB_BATCH) {
            let entries = match self.request(&Message::GetBlobs {
                fps: chunk.to_vec(),
            })? {
                Message::Blobs { entries } if entries.len() == chunk.len() => entries,
                other => {
                    return Err(NetError::Protocol(format!(
                        "expected a {}-entry Blobs reply, got {other:?}",
                        chunk.len()
                    )))
                }
            };
            for (want, (got, payload)) in chunk.iter().zip(entries) {
                if got != *want {
                    return Err(NetError::Protocol(format!(
                        "asked for blob {want}, reply describes {got}"
                    )));
                }
                let Some(bytes) = payload else {
                    self.note(format!(
                        "remote {} is missing blob {want} for level {input}; building locally",
                        self.label
                    ));
                    return Ok(None);
                };
                let Some(verified) = self.verify_or_refetch(store, *want, bytes)? else {
                    self.note(format!(
                        "remote {} is missing blob {want} for level {input}; building locally",
                        self.label
                    ));
                    return Ok(None);
                };
                let len = verified.len() as u64;
                store
                    .put(&Blob::with_fingerprint(verified, *want))
                    .map_err(|e| NetError::Io(format!("installing fetched blob: {e}")))?;
                self.stats.blobs_fetched.fetch_add(1, Ordering::Relaxed);
                self.stats.bytes_fetched.fetch_add(len, Ordering::Relaxed);
            }
        }
        self.stats.levels_fetched.fetch_add(1, Ordering::Relaxed);
        Ok(Some(manifest))
    }

    /// Fetches a single blob by fingerprint, verifying and installing it
    /// into `store`. Returns `Ok(false)` when the remote does not have it.
    /// This is the self-heal path: a load that finds a corrupt or missing
    /// pool blob asks the remote for a fresh copy.
    ///
    /// # Errors
    ///
    /// Same policy as [`RemoteStore::fetch_level`].
    pub fn fetch_blob(&self, store: &BlobStore, fp: Fingerprint) -> Result<bool, NetError> {
        let Some(bytes) = self.fetch_one_blob(fp)? else {
            return Ok(false);
        };
        let Some(verified) = self.verify_or_refetch(store, fp, bytes)? else {
            return Ok(false);
        };
        let len = verified.len() as u64;
        store
            .put(&Blob::with_fingerprint(verified, fp))
            .map_err(|e| NetError::Io(format!("installing fetched blob: {e}")))?;
        self.stats.blobs_fetched.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes_fetched.fetch_add(len, Ordering::Relaxed);
        Ok(true)
    }

    /// Asks the daemon to execute one build task described by `spec`
    /// (a serialized task description the daemon knows how to interpret;
    /// see `docs/serve-protocol.md`). Blocks until the daemon reports the
    /// build done or failed — artifacts do *not* ride the reply; the
    /// caller fetches them through the manifest/blob protocol afterwards.
    ///
    /// # Errors
    ///
    /// A human-readable reason: the daemon refused or reported a build
    /// failure, the transport died after retries, or the breaker is open.
    /// Callers treat every error as "run this task locally instead".
    pub fn exec_task(&self, task: &str, spec: &[u8]) -> Result<(), String> {
        let reply = self
            .request(&Message::ExecTask {
                task: task.to_owned(),
                spec: spec.to_vec(),
            })
            .map_err(|e| format!("remote {}: exec of `{task}` failed ({e})", self.label))?;
        match reply {
            Message::ExecDone { task: done } if done == task => Ok(()),
            Message::ExecFailed {
                task: failed,
                message,
            } if failed == task => Err(format!(
                "remote {}: `{task}` failed remotely: {message}",
                self.label
            )),
            other => Err(format!(
                "remote {}: expected ExecDone/ExecFailed for `{task}`, got {other:?}",
                self.label
            )),
        }
    }

    /// [`RemoteStore::fetch_level`] with the error policy applied: any
    /// failure becomes a note plus `None` (build locally). The degraded
    /// fast-path is silent — the breaker trip was already noted once.
    pub fn try_fetch_level(&self, store: &BlobStore, input: Fingerprint) -> Option<Vec<u8>> {
        match self.fetch_level(store, input) {
            Ok(found) => found,
            Err(NetError::CircuitOpen) => None,
            Err(e) => {
                self.note(format!(
                    "remote {}: fetch of level {input} failed ({e}); building locally",
                    self.label
                ));
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServeRoot;
    use crate::transport::{FaultPlan, FaultTransport, LoopbackTransport, NetFaultKind};
    use marshal_image::FsImage;
    use std::path::{Path, PathBuf};
    use std::sync::Arc;

    fn scratch(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("marshal-client-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn populate(workdir: &Path) -> (Fingerprint, FsImage) {
        let store = BlobStore::new(workdir.join("objects"));
        let mut img = FsImage::new();
        img.write_file("/etc/hostname", b"remote-node").unwrap();
        img.write_file("/etc/motd", b"hello from the daemon")
            .unwrap();
        img.write_exec("/bin/run", b"\x13\x05\x10\x00").unwrap();
        let (manifest, _) = store.write_manifest(&img).unwrap();
        let input = Fingerprint::of(b"the-level-input");
        let root = ServeRoot::new(workdir);
        std::fs::create_dir_all(workdir.join("levels").join("by-input")).unwrap();
        std::fs::write(root.manifest_path(input), &manifest).unwrap();
        (input, img)
    }

    fn loopback_client(server_dir: &Path, policy: RetryPolicy) -> RemoteStore {
        let root = Arc::new(ServeRoot::new(server_dir));
        RemoteStore::with_factory(
            "loopback",
            Box::new(move || Ok(Box::new(LoopbackTransport::new(Arc::clone(&root))) as _)),
            policy,
        )
    }

    fn faulty_client(server_dir: &Path, plan: FaultPlan, policy: RetryPolicy) -> RemoteStore {
        let root = Arc::new(ServeRoot::new(server_dir));
        RemoteStore::with_factory(
            "loopback+faults",
            Box::new(move || {
                Ok(Box::new(FaultTransport::new(
                    LoopbackTransport::new(Arc::clone(&root)),
                    plan.clone(),
                )) as _)
            }),
            policy,
        )
    }

    #[test]
    fn fetch_level_installs_only_missing_blobs() {
        let server = scratch("fetch-server");
        let local = scratch("fetch-local");
        let (input, img) = populate(&server);
        let client = loopback_client(&server, RetryPolicy::fast());
        let store = BlobStore::new(local.join("objects"));

        let manifest = client.fetch_level(&store, input).unwrap().expect("hit");
        assert_eq!(store.read_manifest(&manifest).unwrap(), img);
        let first = client.summary();
        assert_eq!(first.levels_fetched, 1);
        assert!(first.blobs_fetched >= 3);

        // A second fetch of the same level moves zero blobs.
        let again = client.fetch_level(&store, input).unwrap().expect("hit");
        assert_eq!(again, manifest);
        assert_eq!(client.summary().blobs_fetched, first.blobs_fetched);

        // An unknown level is a miss, not an error.
        let miss = client
            .fetch_level(&store, Fingerprint::of(b"unknown"))
            .unwrap();
        assert!(miss.is_none());
        assert_eq!(client.summary().manifests_missing, 1);
        std::fs::remove_dir_all(server).unwrap();
        std::fs::remove_dir_all(local).unwrap();
    }

    #[test]
    fn transient_fault_is_retried_to_success() {
        for kind in [
            NetFaultKind::Drop,
            NetFaultKind::Stall,
            NetFaultKind::CorruptFrame,
            NetFaultKind::Truncate,
            NetFaultKind::SlowStart,
        ] {
            let server = scratch(&format!("retry-server-{kind:?}"));
            let local = scratch(&format!("retry-local-{kind:?}"));
            let (input, _) = populate(&server);
            // One injected fault, then healthy.
            let plan = FaultPlan::new(kind, 1, 1, 3);
            let client = faulty_client(&server, plan.clone(), RetryPolicy::fast());
            let store = BlobStore::new(local.join("objects"));
            let fetched = client.fetch_level(&store, input).unwrap();
            assert!(fetched.is_some(), "{kind:?} should heal via retry");
            assert_eq!(plan.injected(), 1, "{kind:?}");
            assert!(client.summary().retries >= 1, "{kind:?}");
            assert!(!client.degraded(), "{kind:?}");
            std::fs::remove_dir_all(server).unwrap();
            std::fs::remove_dir_all(local).unwrap();
        }
    }

    #[test]
    fn dead_remote_trips_breaker_once_then_fast_fails() {
        let server = scratch("breaker-server");
        let local = scratch("breaker-local");
        let (input, _) = populate(&server);
        let plan = FaultPlan::always(NetFaultKind::Stall, 5);
        let client = faulty_client(&server, plan.clone(), RetryPolicy::fast());
        let store = BlobStore::new(local.join("objects"));

        assert_eq!(
            client.fetch_level(&store, input).unwrap_err(),
            NetError::CircuitOpen
        );
        let spent = plan.exchanges();
        // Further requests are free: the breaker fast-fails without
        // touching the transport at all.
        for _ in 0..10 {
            assert!(client.try_fetch_level(&store, input).is_none());
        }
        assert_eq!(plan.exchanges(), spent, "degraded requests must be free");
        assert!(client.degraded());
        let notes = client.take_notes();
        assert!(
            notes.iter().any(|n| n.contains("circuit breaker")),
            "{notes:?}"
        );
        std::fs::remove_dir_all(server).unwrap();
        std::fs::remove_dir_all(local).unwrap();
    }

    /// A transport whose server lies: frames are well-formed (valid
    /// checksum) but blob payloads have been tampered with.
    struct LyingTransport {
        inner: LoopbackTransport,
        lies_left: Arc<AtomicU64>,
    }

    impl Transport for LyingTransport {
        fn exchange(&mut self, frame: &[u8]) -> Result<Vec<u8>, NetError> {
            let reply = self.inner.exchange(frame)?;
            let msg = decode_frame(&reply).expect("loopback frames are valid");
            if let Message::Blobs { mut entries } = msg {
                if self.lies_left.load(Ordering::Relaxed) > 0 {
                    if let Some((_, Some(bytes))) = entries.first_mut() {
                        if let Some(b) = bytes.first_mut() {
                            *b ^= 0xFF;
                            self.lies_left.fetch_sub(1, Ordering::Relaxed);
                        }
                    }
                }
                return Ok(encode_frame(&Message::Blobs { entries }));
            }
            Ok(reply)
        }
    }

    fn lying_client(server_dir: &Path, lies: u64) -> RemoteStore {
        let root = Arc::new(ServeRoot::new(server_dir));
        let lies_left = Arc::new(AtomicU64::new(lies));
        RemoteStore::with_factory(
            "liar",
            Box::new(move || {
                Ok(Box::new(LyingTransport {
                    inner: LoopbackTransport::new(Arc::clone(&root)),
                    lies_left: Arc::clone(&lies_left),
                }) as _)
            }),
            RetryPolicy::fast(),
        )
    }

    #[test]
    fn corrupt_received_blob_is_quarantined_and_refetched_once() {
        let server = scratch("liar-server");
        let local = scratch("liar-local");
        let (input, img) = populate(&server);
        let client = lying_client(&server, 1);
        let store = BlobStore::new(local.join("objects"));

        let manifest = client.fetch_level(&store, input).unwrap().expect("hit");
        assert_eq!(store.read_manifest(&manifest).unwrap(), img);
        let s = client.summary();
        assert_eq!(s.blobs_quarantined, 1);
        // The corrupt bytes were preserved in quarantine, not the pool.
        assert!(store.quarantine_dir().is_dir());
        let quarantined: Vec<_> = std::fs::read_dir(store.quarantine_dir()).unwrap().collect();
        assert_eq!(quarantined.len(), 1);
        // Every pool blob verifies.
        for fp in manifest_refs(&manifest).unwrap() {
            store.get(fp).expect("pool blob must verify");
        }
        assert!(client
            .take_notes()
            .iter()
            .any(|n| n.contains("quarantined")));
        std::fs::remove_dir_all(server).unwrap();
        std::fs::remove_dir_all(local).unwrap();
    }

    #[test]
    fn twice_corrupt_blob_is_refused_never_installed() {
        let server = scratch("liar2-server");
        let local = scratch("liar2-local");
        let (input, _) = populate(&server);
        let client = lying_client(&server, u64::MAX);
        let store = BlobStore::new(local.join("objects"));

        let err = client.fetch_level(&store, input).unwrap_err();
        assert!(matches!(err, NetError::Remote(_)), "{err}");
        assert_eq!(client.summary().blobs_quarantined, 2);
        // try_fetch_level applies the policy: note + local fallback.
        assert!(client.try_fetch_level(&store, input).is_none());
        // Nothing corrupt reached the pool: every installed blob verifies.
        let objects = local.join("objects");
        for shard in std::fs::read_dir(&objects).unwrap() {
            let shard = shard.unwrap();
            if shard.file_name().to_string_lossy().starts_with('.') {
                continue;
            }
            for blob in std::fs::read_dir(shard.path()).unwrap() {
                let name = blob.unwrap().file_name();
                let stem = name.to_string_lossy().replace(".blob", "");
                let fp: Fingerprint = stem.parse().unwrap();
                store.get(fp).expect("installed blob must verify");
            }
        }
        std::fs::remove_dir_all(server).unwrap();
        std::fs::remove_dir_all(local).unwrap();
    }

    #[test]
    fn backoff_grows_and_stays_bounded() {
        let client = loopback_client(&scratch("backoff"), RetryPolicy::default());
        let mut rng = Rng::new(1);
        let d1 = client.backoff_delay(1, &mut rng);
        let d4 = client.backoff_delay(4, &mut rng);
        assert!(d1 >= Duration::from_millis(50));
        assert!(d4 <= RetryPolicy::default().max_delay + Duration::from_millis(26));
        // Deterministic: same seed, same jitter.
        let mut a = Rng::new(9);
        let mut b = Rng::new(9);
        assert_eq!(
            client.backoff_delay(2, &mut a),
            client.backoff_delay(2, &mut b)
        );
    }
}
