//! Pluggable byte-frame transports.
//!
//! A [`Transport`] carries one raw frame to the peer and returns the raw
//! reply frame. Operating at the byte-frame level (rather than on decoded
//! messages) is deliberate: it lets [`FaultTransport`] corrupt, truncate,
//! or drop the *wire bytes*, so fault-injection tests exercise the same
//! checksum/decode rejection paths a hostile network would.

use std::net::{TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use marshal_qcheck::Rng;

use crate::proto::{read_frame, write_frame, NetError};
use crate::server::ServeRoot;

/// One request/reply exchange of raw wire frames.
pub trait Transport: Send {
    /// Sends `frame` and returns the peer's raw reply frame.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] / [`NetError::Timeout`] on transport failure. A
    /// corrupted reply is *not* an error here — validation happens in
    /// [`crate::proto::decode_frame`].
    fn exchange(&mut self, frame: &[u8]) -> Result<Vec<u8>, NetError>;
}

/// A real TCP connection with per-request read/write deadlines.
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Connects to `addr` (e.g. `127.0.0.1:9300`) with `timeout` applied to
    /// the connect itself and to every subsequent read and write.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when the address does not resolve or the connection
    /// is refused; [`NetError::Timeout`] when the connect deadline expires.
    pub fn connect(addr: &str, timeout: Duration) -> Result<TcpTransport, NetError> {
        let resolved = addr
            .to_socket_addrs()
            .map_err(|e| NetError::Io(format!("resolving {addr}: {e}")))?
            .next()
            .ok_or_else(|| NetError::Io(format!("{addr} resolved to no addresses")))?;
        let stream = TcpStream::connect_timeout(&resolved, timeout).map_err(|e| {
            if e.kind() == std::io::ErrorKind::TimedOut {
                NetError::Timeout(format!("connecting to {addr}: {e}"))
            } else {
                NetError::Io(format!("connecting to {addr}: {e}"))
            }
        })?;
        stream
            .set_read_timeout(Some(timeout))
            .and_then(|()| stream.set_write_timeout(Some(timeout)))
            .map_err(|e| NetError::Io(format!("setting deadlines on {addr}: {e}")))?;
        Ok(TcpTransport { stream })
    }
}

impl Transport for TcpTransport {
    fn exchange(&mut self, frame: &[u8]) -> Result<Vec<u8>, NetError> {
        write_frame(&mut self.stream, frame)?;
        read_frame(&mut self.stream)
    }
}

/// An in-process transport that answers from a [`ServeRoot`] directly —
/// the daemon's request handler without sockets. Used by tests, benches,
/// and as the substrate under [`FaultTransport`].
pub struct LoopbackTransport {
    root: Arc<ServeRoot>,
}

impl LoopbackTransport {
    /// A loopback over this serve root.
    pub fn new(root: Arc<ServeRoot>) -> LoopbackTransport {
        LoopbackTransport { root }
    }
}

impl Transport for LoopbackTransport {
    fn exchange(&mut self, frame: &[u8]) -> Result<Vec<u8>, NetError> {
        Ok(crate::proto::encode_frame(&self.root.respond_raw(frame)))
    }
}

/// Network fault kinds injected by [`FaultTransport`] — the wire-level
/// counterpart of the on-disk `FaultKind`s in marshal-core's `faultinject`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFaultKind {
    /// The connection dies mid-exchange ([`NetError::Io`]).
    Drop,
    /// The peer goes silent and the read deadline expires
    /// ([`NetError::Timeout`], reported instantly so tests stay fast).
    Stall,
    /// The reply arrives with a flipped byte; the frame checksum must
    /// reject it.
    CorruptFrame,
    /// The reply is cut off mid-frame.
    Truncate,
    /// The first exchanges of a connection's life time out before service
    /// recovers — models a cold daemon behind a slow link.
    SlowStart,
}

impl NetFaultKind {
    /// Every fault kind, for chaos suites that iterate them all.
    pub const ALL: [NetFaultKind; 5] = [
        NetFaultKind::Drop,
        NetFaultKind::Stall,
        NetFaultKind::CorruptFrame,
        NetFaultKind::Truncate,
        NetFaultKind::SlowStart,
    ];
}

struct FaultState {
    kind: NetFaultKind,
    skip_first: u64,
    max_faults: u64,
    injected: u64,
    exchanges: u64,
    rng: Rng,
}

/// A deterministic plan for when and how a [`FaultTransport`] misbehaves.
///
/// The plan's state lives behind an [`Arc`], so it survives the client
/// dropping and re-creating transports on reconnect — a plan with
/// `max_faults = 2` injects exactly two faults across the whole
/// conversation, however many connections that spans.
#[derive(Clone)]
pub struct FaultPlan {
    state: Arc<Mutex<FaultState>>,
}

impl FaultPlan {
    /// A plan injecting `kind` on every exchange after the first
    /// `skip_first`, at most `max_faults` times in total (use `u64::MAX`
    /// for a fault that never heals). `seed` drives corruption offsets.
    pub fn new(kind: NetFaultKind, skip_first: u64, max_faults: u64, seed: u64) -> FaultPlan {
        FaultPlan {
            state: Arc::new(Mutex::new(FaultState {
                kind,
                skip_first,
                max_faults,
                injected: 0,
                exchanges: 0,
                rng: Rng::new(seed),
            })),
        }
    }

    /// A plan that always injects `kind`, never healing.
    pub fn always(kind: NetFaultKind, seed: u64) -> FaultPlan {
        FaultPlan::new(kind, 0, u64::MAX, seed)
    }

    /// How many faults have been injected so far.
    pub fn injected(&self) -> u64 {
        self.state.lock().expect("fault plan lock").injected
    }

    /// How many exchanges have passed through transports using this plan.
    pub fn exchanges(&self) -> u64 {
        self.state.lock().expect("fault plan lock").exchanges
    }
}

/// A [`Transport`] decorator that injects faults from a [`FaultPlan`] into
/// an otherwise healthy inner transport.
pub struct FaultTransport<T: Transport> {
    inner: T,
    plan: FaultPlan,
}

impl<T: Transport> FaultTransport<T> {
    /// Wraps `inner` with the fault behaviour of `plan`.
    pub fn new(inner: T, plan: FaultPlan) -> FaultTransport<T> {
        FaultTransport { inner, plan }
    }
}

impl<T: Transport> Transport for FaultTransport<T> {
    fn exchange(&mut self, frame: &[u8]) -> Result<Vec<u8>, NetError> {
        let fault = {
            let mut st = self.plan.state.lock().expect("fault plan lock");
            st.exchanges += 1;
            let due = st.exchanges > st.skip_first && st.injected < st.max_faults;
            if due {
                st.injected += 1;
                Some(st.kind)
            } else {
                None
            }
        };
        match fault {
            None => self.inner.exchange(frame),
            Some(NetFaultKind::Drop) => Err(NetError::Io(
                "injected fault: connection dropped".to_owned(),
            )),
            Some(NetFaultKind::Stall) => Err(NetError::Timeout(
                "injected fault: peer stalled past the read deadline".to_owned(),
            )),
            Some(NetFaultKind::SlowStart) => Err(NetError::Timeout(
                "injected fault: slow start, service not warm yet".to_owned(),
            )),
            Some(NetFaultKind::CorruptFrame) => {
                let mut reply = self.inner.exchange(frame)?;
                if reply.len() > 8 {
                    let off = {
                        let mut st = self.plan.state.lock().expect("fault plan lock");
                        8 + st.rng.below((reply.len() - 8) as u64) as usize
                    };
                    reply[off] ^= 0x55;
                } else {
                    reply.clear();
                }
                Ok(reply)
            }
            Some(NetFaultKind::Truncate) => {
                let reply = self.inner.exchange(frame)?;
                let keep = reply.len() / 2;
                Ok(reply[..keep].to_vec())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{decode_frame, encode_frame, Message, NET_VERSION};

    /// A healthy stand-in peer that acks everything with HelloAck.
    struct EchoAck;

    impl Transport for EchoAck {
        fn exchange(&mut self, _frame: &[u8]) -> Result<Vec<u8>, NetError> {
            Ok(encode_frame(&Message::HelloAck {
                version: NET_VERSION,
            }))
        }
    }

    fn hello() -> Vec<u8> {
        encode_frame(&Message::Hello {
            version: NET_VERSION,
        })
    }

    #[test]
    fn drop_and_stall_fail_without_touching_inner() {
        for (kind, retryable) in [(NetFaultKind::Drop, true), (NetFaultKind::Stall, true)] {
            let mut t = FaultTransport::new(EchoAck, FaultPlan::always(kind, 1));
            let err = t.exchange(&hello()).unwrap_err();
            assert_eq!(err.retryable(), retryable, "{kind:?}");
        }
    }

    #[test]
    fn corrupt_frame_fails_checksum() {
        let mut t = FaultTransport::new(EchoAck, FaultPlan::always(NetFaultKind::CorruptFrame, 7));
        let reply = t.exchange(&hello()).unwrap();
        assert!(matches!(decode_frame(&reply), Err(NetError::BadFrame(_))));
    }

    #[test]
    fn truncate_fails_decode() {
        let mut t = FaultTransport::new(EchoAck, FaultPlan::always(NetFaultKind::Truncate, 7));
        let reply = t.exchange(&hello()).unwrap();
        assert!(decode_frame(&reply).is_err());
    }

    #[test]
    fn plan_budget_heals_after_max_faults() {
        let plan = FaultPlan::new(NetFaultKind::SlowStart, 0, 2, 1);
        let mut t = FaultTransport::new(EchoAck, plan.clone());
        assert!(t.exchange(&hello()).is_err());
        assert!(t.exchange(&hello()).is_err());
        let reply = t.exchange(&hello()).unwrap();
        assert!(decode_frame(&reply).is_ok());
        assert_eq!(plan.injected(), 2);
        assert_eq!(plan.exchanges(), 3);
    }

    #[test]
    fn plan_survives_transport_recreation() {
        let plan = FaultPlan::new(NetFaultKind::Drop, 0, 1, 1);
        {
            let mut t = FaultTransport::new(EchoAck, plan.clone());
            assert!(t.exchange(&hello()).is_err());
        }
        // A "reconnect" gets a fresh transport but the same plan state:
        // the budget is spent, so the fault does not repeat.
        let mut t2 = FaultTransport::new(EchoAck, plan.clone());
        assert!(t2.exchange(&hello()).is_ok());
        assert_eq!(plan.injected(), 1);
    }

    #[test]
    fn skip_first_defers_the_fault() {
        let plan = FaultPlan::new(NetFaultKind::Drop, 2, u64::MAX, 1);
        let mut t = FaultTransport::new(EchoAck, plan);
        assert!(t.exchange(&hello()).is_ok());
        assert!(t.exchange(&hello()).is_ok());
        assert!(t.exchange(&hello()).is_err());
    }
}
