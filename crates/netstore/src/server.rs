//! The `marshal serve` daemon.
//!
//! Serves a workdir's content-addressed pool (`objects/`) and its
//! by-input-fingerprint manifest index (`levels/by-input/`) over the frame
//! protocol. Robustness rules:
//!
//! - thread-per-connection with per-connection read deadlines, so one
//!   stalled client cannot wedge the daemon;
//! - a malformed frame earns the sender an [`Message::ErrorMsg`] and a
//!   closed connection — never a crash;
//! - blobs are hash-verified on the way out ([`BlobStore::get`]), so a
//!   corrupt pool entry is withheld (reported absent) rather than shipped;
//! - SIGINT triggers a graceful drain: stop accepting, finish in-flight
//!   connections, return a summary.

use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use marshal_depgraph::Fingerprint;
use marshal_image::{sniff_manifest, BlobStore};
use marshal_trace::Recorder;

use crate::proto::{
    decode_frame, encode_frame, read_frame, write_frame, Message, NetError, NET_VERSION,
};

/// How often blocked waits (accept loop, idle connections) re-check the
/// shutdown flags. Bounds drain latency.
const POLL: Duration = Duration::from_millis(25);

/// Executes a remote build request on behalf of the daemon: given the task
/// id and its opaque `remote_spec` payload, build the artifact into this
/// server's workdir so manifest/blob fetches can find it. Installed with
/// [`ServeRoot::set_exec_handler`] (the `marshal serve --exec` flag).
pub type ExecHandler = Arc<dyn Fn(&str, &[u8]) -> Result<(), String> + Send + Sync>;

/// Request handling over a workdir — the daemon's brain, separated from the
/// socket plumbing so [`crate::LoopbackTransport`] and tests can drive it
/// in-process.
pub struct ServeRoot {
    blobs: BlobStore,
    by_input: PathBuf,
    /// Run-journal recorder (disabled by default); each answered request
    /// records a `remote.request` instant.
    recorder: Recorder,
    /// Build-on-request handler; absent unless the daemon opted in with
    /// `--exec`, in which case [`Message::ExecTask`] requests build here.
    exec: Option<ExecHandler>,
}

impl std::fmt::Debug for ServeRoot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeRoot")
            .field("blobs", &self.blobs)
            .field("by_input", &self.by_input)
            .field("recorder", &self.recorder)
            .field("exec", &self.exec.is_some())
            .finish()
    }
}

impl ServeRoot {
    /// A serve root over `workdir` (expects `workdir/objects/` and
    /// `workdir/levels/by-input/`; both may be absent or empty).
    pub fn new(workdir: &Path) -> ServeRoot {
        ServeRoot {
            blobs: BlobStore::new(workdir.join("objects")),
            by_input: workdir.join("levels").join("by-input"),
            recorder: Recorder::disabled(),
            exec: None,
        }
    }

    /// Installs a run-journal recorder (set before the serve loop starts).
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// Enables remote task execution: [`Message::ExecTask`] requests are
    /// routed through `handler` (set before the serve loop starts).
    /// Without a handler, exec requests are refused with an error message.
    pub fn set_exec_handler(&mut self, handler: ExecHandler) {
        self.exec = Some(handler);
    }

    /// Where the manifest for a level-input fingerprint lives.
    pub fn manifest_path(&self, input: Fingerprint) -> PathBuf {
        self.by_input.join(format!("{input}.man"))
    }

    /// Answers one decoded request. Unexpected or unanswerable messages get
    /// an [`Message::ErrorMsg`]; nothing panics on hostile input.
    pub fn respond(&self, msg: &Message) -> Message {
        let reply = self.answer(msg);
        if self.recorder.enabled() {
            let outcome = match &reply {
                Message::ErrorMsg { .. } => "refused",
                Message::NotFound => "miss",
                Message::Have { present: false } => "miss",
                _ => "ok",
            };
            self.recorder
                .remote_request(crate::client::message_kind(msg), 1, outcome);
        }
        reply
    }

    fn answer(&self, msg: &Message) -> Message {
        match msg {
            Message::Hello { version } => {
                if *version == NET_VERSION {
                    Message::HelloAck {
                        version: NET_VERSION,
                    }
                } else {
                    Message::ErrorMsg {
                        message: format!(
                            "protocol version mismatch: client {version}, server {NET_VERSION}"
                        ),
                    }
                }
            }
            Message::HaveManifest { input } => Message::Have {
                present: self.manifest_path(*input).is_file(),
            },
            Message::GetManifest { input } => {
                match std::fs::read(self.manifest_path(*input)) {
                    Ok(bytes) if sniff_manifest(&bytes) => Message::ManifestData { bytes },
                    // Unreadable or torn on our side: honestly absent.
                    Ok(_) | Err(_) => Message::NotFound,
                }
            }
            Message::GetBlobs { fps } => Message::Blobs {
                entries: fps
                    .iter()
                    .map(|fp| {
                        // get() verifies the hash, so a blob that rotted on
                        // this server is withheld, not shipped.
                        let payload = self.blobs.get(*fp).ok().map(|b| b.as_ref().to_vec());
                        (*fp, payload)
                    })
                    .collect(),
            },
            Message::ExecTask { task, spec } => match &self.exec {
                Some(handler) => match handler(task, spec) {
                    Ok(()) => Message::ExecDone { task: task.clone() },
                    Err(message) => Message::ExecFailed {
                        task: task.clone(),
                        message,
                    },
                },
                None => Message::ErrorMsg {
                    message: "exec not enabled on this daemon (start with --exec)".to_owned(),
                },
            },
            other => Message::ErrorMsg {
                message: format!("unexpected message: {other:?}"),
            },
        }
    }

    /// Decodes a raw frame and answers it; malformed frames become
    /// [`Message::ErrorMsg`] replies instead of crashes.
    pub fn respond_raw(&self, frame: &[u8]) -> Message {
        match decode_frame(frame) {
            Ok(msg) => self.respond(&msg),
            Err(e) => Message::ErrorMsg {
                message: format!("rejected frame: {e}"),
            },
        }
    }
}

static SIGINT_SEEN: AtomicBool = AtomicBool::new(false);

/// Whether a SIGINT has been observed since
/// [`install_sigint_handler`] was called.
pub fn sigint_received() -> bool {
    SIGINT_SEEN.load(Ordering::SeqCst)
}

/// Installs a SIGINT handler that records the signal for
/// [`sigint_received`], letting [`Server::run`] drain gracefully instead of
/// dying mid-connection. Idempotent.
#[cfg(unix)]
pub fn install_sigint_handler() {
    extern "C" fn on_sigint(_sig: i32) {
        SIGINT_SEEN.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    unsafe {
        signal(SIGINT, on_sigint as extern "C" fn(i32) as usize);
    }
}

/// No-op off unix; the serve loop still drains on [`ServerHandle::shutdown`].
#[cfg(not(unix))]
pub fn install_sigint_handler() {}

#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    bad_frames: AtomicU64,
}

/// What a serve run handled, reported after a graceful drain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Connections accepted.
    pub connections: u64,
    /// Well-formed requests answered.
    pub requests: u64,
    /// Malformed frames rejected (connection closed, daemon unharmed).
    pub bad_frames: u64,
}

/// Remote control for a running [`Server`], usable from another thread.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
    addr: std::net::SocketAddr,
}

impl ServerHandle {
    /// Asks the serve loop to drain and return.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }
}

/// The artifact distribution daemon.
pub struct Server {
    listener: TcpListener,
    root: Arc<ServeRoot>,
    shutdown: Arc<AtomicBool>,
    read_timeout: Duration,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port) serving
    /// `workdir`. `read_timeout` is the per-connection deadline for reading
    /// a request once one has started arriving.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when the bind fails.
    pub fn bind(addr: &str, workdir: &Path, read_timeout: Duration) -> Result<Server, NetError> {
        let listener =
            TcpListener::bind(addr).map_err(|e| NetError::Io(format!("binding {addr}: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| NetError::Io(format!("nonblocking accept: {e}")))?;
        Ok(Server {
            listener,
            root: Arc::new(ServeRoot::new(workdir)),
            shutdown: Arc::new(AtomicBool::new(false)),
            read_timeout,
        })
    }

    /// The bound address (resolves the actual port when bound to port 0).
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when the socket cannot report its address.
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, NetError> {
        self.listener
            .local_addr()
            .map_err(|e| NetError::Io(format!("local addr: {e}")))
    }

    /// Enables remote task execution on this daemon. Must be called before
    /// [`Server::run`] spawns connection threads (the root is still
    /// uniquely owned then); later calls are ignored.
    pub fn set_exec_handler(&mut self, handler: ExecHandler) {
        if let Some(root) = Arc::get_mut(&mut self.root) {
            root.set_exec_handler(handler);
        }
    }

    /// Installs a run-journal recorder on the serve root. Must be called
    /// before [`Server::run`]; later calls are ignored.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        if let Some(root) = Arc::get_mut(&mut self.root) {
            root.set_recorder(recorder);
        }
    }

    /// A handle for shutting the server down from another thread.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when the socket cannot report its address.
    pub fn handle(&self) -> Result<ServerHandle, NetError> {
        Ok(ServerHandle {
            shutdown: Arc::clone(&self.shutdown),
            addr: self.local_addr()?,
        })
    }

    /// Runs the accept loop until [`ServerHandle::shutdown`] or SIGINT,
    /// then drains: stops accepting, joins every in-flight connection
    /// thread, and reports what was served.
    pub fn run(self) -> ServeSummary {
        let counters = Arc::new(Counters::default());
        let mut threads: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            if self.shutdown.load(Ordering::SeqCst) || sigint_received() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    counters.connections.fetch_add(1, Ordering::Relaxed);
                    let root = Arc::clone(&self.root);
                    let counters = Arc::clone(&counters);
                    let shutdown = Arc::clone(&self.shutdown);
                    let deadline = self.read_timeout;
                    threads.push(std::thread::spawn(move || {
                        serve_connection(stream, &root, &counters, &shutdown, deadline);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL);
                }
                // Transient accept errors (e.g. a connection reset before
                // accept) must not kill the daemon.
                Err(_) => std::thread::sleep(POLL),
            }
            threads.retain(|t| !t.is_finished());
        }
        for t in threads {
            let _ = t.join();
        }
        ServeSummary {
            connections: counters.connections.load(Ordering::Relaxed),
            requests: counters.requests.load(Ordering::Relaxed),
            bad_frames: counters.bad_frames.load(Ordering::Relaxed),
        }
    }
}

/// One connection's lifecycle: handshake, then serve requests until EOF,
/// deadline abuse, a malformed frame, or drain.
fn serve_connection(
    mut stream: TcpStream,
    root: &ServeRoot,
    counters: &Counters,
    shutdown: &AtomicBool,
    deadline: Duration,
) {
    // Idle waits poll so drain stays responsive; once bytes start arriving
    // the full per-request deadline applies.
    let mut peek_buf = [0u8; 1];
    loop {
        if shutdown.load(Ordering::SeqCst) || sigint_received() {
            return;
        }
        if stream.set_read_timeout(Some(POLL)).is_err() {
            return;
        }
        match stream.peek(&mut peek_buf) {
            Ok(0) => return, // clean EOF
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
        if stream.set_read_timeout(Some(deadline)).is_err() {
            return;
        }
        let reply = match read_frame(&mut stream) {
            Ok(frame) => {
                let msg = root.respond_raw(&frame);
                if matches!(msg, Message::ErrorMsg { .. }) {
                    counters.bad_frames.fetch_add(1, Ordering::Relaxed);
                } else {
                    counters.requests.fetch_add(1, Ordering::Relaxed);
                }
                msg
            }
            // Unframeable bytes or a reader that blew its deadline: tell
            // them why (best effort) and hang up.
            Err(e) => {
                counters.bad_frames.fetch_add(1, Ordering::Relaxed);
                let _ = write_frame(
                    &mut stream,
                    &encode_frame(&Message::ErrorMsg {
                        message: format!("rejected frame: {e}"),
                    }),
                );
                return;
            }
        };
        let fatal = matches!(reply, Message::ErrorMsg { .. });
        if write_frame(&mut stream, &encode_frame(&reply)).is_err() || fatal {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{TcpTransport, Transport};
    use marshal_image::FsImage;

    fn scratch(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("marshal-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    /// Populates a workdir-shaped directory with one level manifest and its
    /// blobs; returns the input fingerprint it is indexed under.
    fn populate(workdir: &Path) -> Fingerprint {
        let store = BlobStore::new(workdir.join("objects"));
        let mut img = FsImage::new();
        img.write_file("/etc/hostname", b"served-node").unwrap();
        img.write_exec("/bin/run", b"\x13\x05\x10\x00").unwrap();
        let (manifest, _) = store.write_manifest(&img).unwrap();
        let input = Fingerprint::of(b"level-input-key");
        let root = ServeRoot::new(workdir);
        std::fs::create_dir_all(workdir.join("levels").join("by-input")).unwrap();
        std::fs::write(root.manifest_path(input), &manifest).unwrap();
        input
    }

    fn start(workdir: &Path) -> (ServerHandle, std::thread::JoinHandle<ServeSummary>) {
        let server = Server::bind("127.0.0.1:0", workdir, Duration::from_secs(2)).unwrap();
        let handle = server.handle().unwrap();
        let join = std::thread::spawn(move || server.run());
        (handle, join)
    }

    fn connect(handle: &ServerHandle) -> TcpTransport {
        TcpTransport::connect(&handle.addr().to_string(), Duration::from_secs(2)).unwrap()
    }

    fn ask(t: &mut TcpTransport, msg: &Message) -> Message {
        decode_frame(&t.exchange(&encode_frame(msg)).unwrap()).unwrap()
    }

    #[test]
    fn serves_manifest_and_blobs_over_tcp() {
        let dir = scratch("roundtrip");
        let input = populate(&dir);
        let (handle, join) = start(&dir);
        let mut t = connect(&handle);
        assert_eq!(
            ask(
                &mut t,
                &Message::Hello {
                    version: NET_VERSION
                }
            ),
            Message::HelloAck {
                version: NET_VERSION
            }
        );
        assert_eq!(
            ask(&mut t, &Message::HaveManifest { input }),
            Message::Have { present: true }
        );
        let Message::ManifestData { bytes } = ask(&mut t, &Message::GetManifest { input }) else {
            panic!("expected manifest");
        };
        let fps = marshal_image::manifest_refs(&bytes).unwrap();
        let Message::Blobs { entries } = ask(&mut t, &Message::GetBlobs { fps: fps.clone() })
        else {
            panic!("expected blobs");
        };
        assert_eq!(entries.len(), fps.len());
        for (fp, payload) in entries {
            let payload = payload.expect("all blobs present");
            assert_eq!(Fingerprint::of(&payload), fp);
        }
        // Unknown manifest is honestly absent.
        assert_eq!(
            ask(
                &mut t,
                &Message::GetManifest {
                    input: Fingerprint(0xDEAD)
                }
            ),
            Message::NotFound
        );
        drop(t);
        handle.shutdown();
        let summary = join.join().unwrap();
        assert_eq!(summary.connections, 1);
        assert!(summary.requests >= 5);
        assert_eq!(summary.bad_frames, 0);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn version_mismatch_is_refused() {
        let dir = scratch("version");
        let (handle, join) = start(&dir);
        let mut t = connect(&handle);
        let reply = ask(&mut t, &Message::Hello { version: 999 });
        assert!(matches!(reply, Message::ErrorMsg { .. }), "{reply:?}");
        handle.shutdown();
        join.join().unwrap();
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn malformed_frames_do_not_kill_the_daemon() {
        let dir = scratch("malformed");
        let input = populate(&dir);
        let (handle, join) = start(&dir);
        // A client that speaks garbage gets an error frame back...
        {
            let addr = handle.addr().to_string();
            let mut raw = std::net::TcpStream::connect(&addr).unwrap();
            raw.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
            use std::io::Write;
            raw.write_all(b"MNET\xff\xff\xff\xff not a frame at all")
                .unwrap();
            let reply = read_frame(&mut raw).unwrap();
            assert!(matches!(
                decode_frame(&reply).unwrap(),
                Message::ErrorMsg { .. }
            ));
        }
        // ...and the daemon still serves the next, well-behaved client.
        let mut t = connect(&handle);
        assert_eq!(
            ask(&mut t, &Message::HaveManifest { input }),
            Message::Have { present: true }
        );
        drop(t);
        handle.shutdown();
        let summary = join.join().unwrap();
        assert!(summary.bad_frames >= 1);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn corrupt_pool_blob_is_withheld_not_shipped() {
        let dir = scratch("withheld");
        let input = populate(&dir);
        let root = ServeRoot::new(&dir);
        let manifest = std::fs::read(root.manifest_path(input)).unwrap();
        let fps = marshal_image::manifest_refs(&manifest).unwrap();
        // Rot one blob on the server.
        let store = BlobStore::new(dir.join("objects"));
        std::fs::write(store.blob_path(fps[0]), b"rotted payload").unwrap();
        let Message::Blobs { entries } = root.respond(&Message::GetBlobs { fps: fps.clone() })
        else {
            panic!("expected blobs");
        };
        assert_eq!(entries[0].1, None, "corrupt blob must be withheld");
        if entries.len() > 1 {
            assert!(entries[1].1.is_some(), "healthy blobs still served");
        }
        std::fs::remove_dir_all(dir).unwrap();
    }
}
