//! # marshal-firmware
//!
//! SBI firmware models and boot-binary linking.
//!
//! "RISC-V systems require a supervisor binary interface (SBI) to perform
//! low-level functions. Users may provide their own implementations of
//! either OpenSBI or the Berkeley Boot Loader (bbl) (or use the included
//! defaults)" (§III-A-2). "The desired firmware is compiled and linked with
//! the Linux binary. At this stage, the boot binary is complete"
//! (§III-B step 4e).
//!
//! ## Example
//!
//! ```rust
//! use marshal_firmware::{build_firmware, link_boot_binary, FirmwareBuild};
//! use marshal_config::FirmwareKind;
//! use marshal_linux::{kconfig::KernelConfig, kernel::{KernelSource, build_kernel}, InitramfsSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = KernelConfig::riscv_defconfig();
//! let src = KernelSource::default_source();
//! let initramfs = InitramfsSpec::new().build(&config, &src)?;
//! let kernel = build_kernel(&src, &config, &initramfs)?;
//! let fw = build_firmware(&FirmwareBuild::default())?;
//! let boot = link_boot_binary(&fw, &kernel)?;
//! assert!(boot.firmware().banner().contains("OpenSBI"));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

use marshal_depgraph::{Fingerprint, Hasher128};
use marshal_linux::kernel::KernelArtifact;

pub use marshal_config::FirmwareKind;

/// Magic bytes of a serialised boot binary.
pub const BOOT_MAGIC: &[u8; 4] = b"MBBN";

/// Firmware errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FirmwareError {
    /// A malformed serialised boot binary.
    BadBootBinary(String),
}

impl std::fmt::Display for FirmwareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FirmwareError::BadBootBinary(m) => write!(f, "bad boot binary: {m}"),
        }
    }
}

impl std::error::Error for FirmwareError {}

/// Inputs to a firmware build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FirmwareBuild {
    /// Which implementation to build.
    pub kind: FirmwareKind,
    /// Source identifier (custom trees supported, defaults bundled).
    pub source: String,
    /// Extra build arguments (folded into the artifact identity).
    pub build_args: Vec<String>,
}

impl Default for FirmwareBuild {
    fn default() -> FirmwareBuild {
        FirmwareBuild {
            kind: FirmwareKind::OpenSbi,
            source: "default".to_owned(),
            build_args: Vec::new(),
        }
    }
}

/// A built firmware image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FirmwareArtifact {
    kind: FirmwareKind,
    version: String,
    source: String,
    build_args: Vec<String>,
    fingerprint: Fingerprint,
}

impl FirmwareArtifact {
    /// Which implementation this is.
    pub fn kind(&self) -> FirmwareKind {
        self.kind
    }

    /// Version string.
    pub fn version(&self) -> &str {
        &self.version
    }

    /// Source identifier.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Content fingerprint.
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }

    /// The banner printed at the very start of boot, like the real
    /// firmware's console output.
    pub fn banner(&self) -> String {
        match self.kind {
            FirmwareKind::OpenSbi => format!(
                "OpenSBI {} (build {})\nPlatform Name: firemarshal,model\nBoot HART ID: 0",
                self.version,
                self.fingerprint.short()
            ),
            FirmwareKind::Bbl => format!(
                "bbl loader {} (build {})",
                self.version,
                self.fingerprint.short()
            ),
        }
    }

    /// Modelled firmware size in bytes (drives boot timing).
    pub fn size(&self) -> u64 {
        match self.kind {
            FirmwareKind::OpenSbi => 192 << 10,
            FirmwareKind::Bbl => 64 << 10,
        }
    }
}

/// Builds a firmware artifact.
///
/// # Errors
///
/// Currently infallible for all valid [`FirmwareBuild`]s; returns
/// `Result` for forward compatibility with source validation.
pub fn build_firmware(build: &FirmwareBuild) -> Result<FirmwareArtifact, FirmwareError> {
    let version = match build.kind {
        FirmwareKind::OpenSbi => "v0.9",
        FirmwareKind::Bbl => "v1.0.0",
    };
    let mut h = Hasher128::new();
    h.update_field(build.kind.name().as_bytes());
    h.update_field(build.source.as_bytes());
    for a in &build.build_args {
        h.update_field(a.as_bytes());
    }
    Ok(FirmwareArtifact {
        kind: build.kind,
        version: version.to_owned(),
        source: build.source.clone(),
        build_args: build.build_args.clone(),
        fingerprint: h.finish(),
    })
}

/// A complete boot binary: firmware linked with the kernel payload.
///
/// This is the artifact FireMarshal's `build` command outputs (Fig. 3) and
/// both simulators consume unmodified — the portability guarantee depends
/// on this being one deterministic blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BootBinary {
    firmware: FirmwareArtifact,
    kernel: KernelArtifact,
    fingerprint: Fingerprint,
}

impl BootBinary {
    /// The firmware component.
    pub fn firmware(&self) -> &FirmwareArtifact {
        &self.firmware
    }

    /// The kernel component.
    pub fn kernel(&self) -> &KernelArtifact {
        &self.kernel
    }

    /// Identity of the whole boot binary.
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }

    /// Total modelled size (firmware + kernel text + initramfs).
    pub fn size(&self) -> u64 {
        self.firmware.size()
            + self.kernel.text_size()
            + self.kernel.initramfs().archive().len() as u64
    }

    /// Serialises to a deterministic blob (`MBBN`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(BOOT_MAGIC);
        let fw_kind = match self.firmware.kind {
            FirmwareKind::OpenSbi => 0u8,
            FirmwareKind::Bbl => 1u8,
        };
        out.push(fw_kind);
        write_field(&mut out, self.firmware.source.as_bytes());
        out.extend_from_slice(&(self.firmware.build_args.len() as u32).to_le_bytes());
        for a in &self.firmware.build_args {
            write_field(&mut out, a.as_bytes());
        }
        write_field(&mut out, &self.kernel.to_bytes());
        out
    }

    /// Parses a serialised boot binary.
    ///
    /// # Errors
    ///
    /// [`FirmwareError::BadBootBinary`] for malformed blobs.
    pub fn from_bytes(bytes: &[u8]) -> Result<BootBinary, FirmwareError> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], FirmwareError> {
            if *pos + n > bytes.len() {
                return Err(FirmwareError::BadBootBinary("truncated".to_owned()));
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        if take(&mut pos, 4)? != BOOT_MAGIC {
            return Err(FirmwareError::BadBootBinary("bad magic".to_owned()));
        }
        let kind = match take(&mut pos, 1)?[0] {
            0 => FirmwareKind::OpenSbi,
            1 => FirmwareKind::Bbl,
            k => {
                return Err(FirmwareError::BadBootBinary(format!(
                    "unknown firmware kind {k}"
                )))
            }
        };
        let read_field = |pos: &mut usize| -> Result<Vec<u8>, FirmwareError> {
            let len = u64::from_le_bytes(take(pos, 8)?.try_into().unwrap()) as usize;
            Ok(take(pos, len)?.to_vec())
        };
        let source = String::from_utf8(read_field(&mut pos)?)
            .map_err(|_| FirmwareError::BadBootBinary("bad source".to_owned()))?;
        let nargs = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
        let mut build_args = Vec::new();
        for _ in 0..nargs {
            build_args.push(
                String::from_utf8(read_field(&mut pos)?)
                    .map_err(|_| FirmwareError::BadBootBinary("bad arg".to_owned()))?,
            );
        }
        let kernel_bytes = read_field(&mut pos)?;
        if pos != bytes.len() {
            return Err(FirmwareError::BadBootBinary("trailing bytes".to_owned()));
        }
        let kernel = KernelArtifact::from_bytes(&kernel_bytes)
            .map_err(|e| FirmwareError::BadBootBinary(e.to_string()))?;
        let firmware = build_firmware(&FirmwareBuild {
            kind,
            source,
            build_args,
        })?;
        link_boot_binary(&firmware, &kernel)
    }

    /// Whether `bytes` look like a boot binary.
    pub fn sniff(bytes: &[u8]) -> bool {
        bytes.len() >= 4 && &bytes[..4] == BOOT_MAGIC
    }
}

/// Links firmware and kernel into the final boot binary.
///
/// # Errors
///
/// Currently infallible for valid inputs; returns `Result` for forward
/// compatibility with link-time checks.
pub fn link_boot_binary(
    firmware: &FirmwareArtifact,
    kernel: &KernelArtifact,
) -> Result<BootBinary, FirmwareError> {
    let mut h = Hasher128::new();
    h.update_field(firmware.fingerprint.to_string().as_bytes());
    h.update_field(kernel.fingerprint().to_string().as_bytes());
    Ok(BootBinary {
        firmware: firmware.clone(),
        kernel: kernel.clone(),
        fingerprint: h.finish(),
    })
}

fn write_field(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
    out.extend_from_slice(bytes);
}

#[cfg(test)]
mod tests {
    use super::*;
    use marshal_linux::kconfig::KernelConfig;
    use marshal_linux::kernel::{build_kernel, KernelSource};
    use marshal_linux::InitramfsSpec;

    fn kernel() -> KernelArtifact {
        let config = KernelConfig::riscv_defconfig();
        let src = KernelSource::default_source();
        let initramfs = InitramfsSpec::new()
            .module("iceblk", "v1")
            .build(&config, &src)
            .unwrap();
        build_kernel(&src, &config, &initramfs).unwrap()
    }

    #[test]
    fn firmware_builds_deterministic() {
        let a = build_firmware(&FirmwareBuild::default()).unwrap();
        let b = build_firmware(&FirmwareBuild::default()).unwrap();
        assert_eq!(a, b);
        assert!(a.banner().contains("OpenSBI v0.9"));
    }

    #[test]
    fn build_args_change_identity() {
        let a = build_firmware(&FirmwareBuild::default()).unwrap();
        let b = build_firmware(&FirmwareBuild {
            build_args: vec!["FW_TEXT_START=0x80000000".to_owned()],
            ..FirmwareBuild::default()
        })
        .unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn bbl_flavour() {
        let fw = build_firmware(&FirmwareBuild {
            kind: FirmwareKind::Bbl,
            ..FirmwareBuild::default()
        })
        .unwrap();
        assert!(fw.banner().contains("bbl"));
        assert!(fw.size() < build_firmware(&FirmwareBuild::default()).unwrap().size());
    }

    #[test]
    fn boot_binary_roundtrip() {
        let fw = build_firmware(&FirmwareBuild::default()).unwrap();
        let boot = link_boot_binary(&fw, &kernel()).unwrap();
        let bytes = boot.to_bytes();
        assert!(BootBinary::sniff(&bytes));
        let back = BootBinary::from_bytes(&bytes).unwrap();
        assert_eq!(back.fingerprint(), boot.fingerprint());
        assert_eq!(back.kernel().version(), boot.kernel().version());
        assert_eq!(back.firmware().kind(), FirmwareKind::OpenSbi);
    }

    #[test]
    fn garbage_rejected() {
        assert!(BootBinary::from_bytes(b"XXXX").is_err());
        let fw = build_firmware(&FirmwareBuild::default()).unwrap();
        let boot = link_boot_binary(&fw, &kernel()).unwrap();
        let mut bytes = boot.to_bytes();
        bytes.truncate(bytes.len() / 2);
        assert!(BootBinary::from_bytes(&bytes).is_err());
        let mut extra = boot.to_bytes();
        extra.push(7);
        assert!(BootBinary::from_bytes(&extra).is_err());
    }

    #[test]
    fn identity_tracks_components() {
        let fw_a = build_firmware(&FirmwareBuild::default()).unwrap();
        let fw_b = build_firmware(&FirmwareBuild {
            kind: FirmwareKind::Bbl,
            ..FirmwareBuild::default()
        })
        .unwrap();
        let k = kernel();
        let boot_a = link_boot_binary(&fw_a, &k).unwrap();
        let boot_b = link_boot_binary(&fw_b, &k).unwrap();
        assert_ne!(boot_a.fingerprint(), boot_b.fingerprint());
        assert!(boot_a.size() > 0);
    }
}
