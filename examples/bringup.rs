//! Post-tapeout bring-up triage — the §VI workflow the authors were
//! building: "the existing suite of FireMarshal-based benchmarks are run
//! in an identical manner in both functional simulation and during
//! bring-up, allowing researchers to triage issues with potentially
//! faulty hardware."
//!
//! Runs the bundled suite on (a) functional simulation, (b) healthy
//! "silicon" (the cycle-exact simulator), and (c) a chip with a corrupted
//! boot flash (modelled by bit-flipping the boot binary) — and prints the
//! triage matrix that localises the fault.
//!
//! ```text
//! cargo run --release --example bringup
//! ```

use marshal_core::faultinject::{FaultKind, Injector};
use marshal_core::{install, launch, BuildOptions, Builder, MarshalError, TestOutcome};
use marshal_sim_rtl::HardwareConfig;

fn outcome_str(o: &TestOutcome) -> &'static str {
    match o {
        TestOutcome::Pass => "PASS",
        TestOutcome::NoReference => "pass*",
        TestOutcome::Fail { .. } => "FAIL",
        TestOutcome::TimedOut { .. } => "HUNG",
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = std::env::temp_dir().join(format!("firemarshal-bringup-{}", std::process::id()));
    std::fs::create_dir_all(&root)?;
    let setup = marshal_workloads::setup(&root)?;
    let mut builder = Builder::new(setup.board, setup.search, root.join("work"))?;

    let suite = ["hello.json", "coremark.json", "latency-microbenchmark.json"];
    println!("bring-up suite: {suite:?}\n");
    println!(
        "{:>28} {:>12} {:>12} {:>14}",
        "workload", "functional", "silicon", "bad-flash chip"
    );

    let mut any_divergence = false;
    for name in suite {
        let products = builder.build(name, &BuildOptions::default())?;

        // (a) functional simulation — the golden reference behaviour.
        let run = launch::launch_workload(&builder, &products, &Default::default())?;
        let functional = marshal_core::test::compare_run(
            &products,
            &run.jobs
                .iter()
                .map(|j| (j.job.clone(), j.serial.clone()))
                .collect::<Vec<_>>(),
        )?;

        // (b) healthy silicon: the cycle-exact simulator, same artifacts.
        let (manifest, _) = install::install_workload(&builder, &products)?;
        let healthy = install::run_installed(&manifest, HardwareConfig::rocket(), false)?;
        let silicon = marshal_core::test::compare_run(
            &products,
            &healthy
                .iter()
                .map(|n| (n.name.clone(), n.result.serial.clone()))
                .collect::<Vec<_>>(),
        )?;

        // (c) a chip whose flash was mis-programmed: flip one bit inside
        //     the first Linux job's payload binary on the disk image.
        let mut faulty_outcomes = Vec::new();
        for (i, job) in manifest.jobs.iter().enumerate() {
            let serial = if let (0, "linux", Some(disk_path)) = (i, job.kind.as_str(), &job.disk) {
                let boot = marshal_firmware::BootBinary::from_bytes(&std::fs::read(&job.primary)?)
                    .expect("healthy boot binary");
                let mut disk = marshal_image::FsImage::from_bytes(&std::fs::read(disk_path)?)
                    .expect("healthy disk image");
                // Corrupt the first program under /bin — a single flipped
                // bit, as a marginal flash cell would produce. The seeded
                // injector makes the fault replay bit-for-bit, so a
                // divergence seen here is debuggable later.
                let mut inj = Injector::new(0xb117_f11b);
                if let Ok(entries) = disk.list_dir("/bin") {
                    for entry in entries {
                        let path = format!("/bin/{entry}");
                        if let Ok(data) = disk.read_file(&path) {
                            if marshal_isa::MexeFile::sniff(data) {
                                let mut data = data.to_vec();
                                // Flip past the header so the program still
                                // loads and misbehaves, like real silicon.
                                let mut text = data.split_off(64.min(data.len()));
                                inj.corrupt_bytes(&mut text, FaultKind::BitFlip);
                                data.extend_from_slice(&text);
                                disk.write_exec(&path, &data).unwrap();
                                break;
                            }
                        }
                    }
                }
                match marshal_sim_rtl::FireSim::new(HardwareConfig::rocket()).launch(
                    &boot,
                    Some(&disk),
                    marshal_sim_functional::LaunchMode::Run,
                ) {
                    Ok((r, _)) => r.serial,
                    Err(e) => format!("boot failure: {e}\n"),
                }
            } else {
                healthy[i].result.serial.clone()
            };
            faulty_outcomes.push((job.name.clone(), serial));
        }
        let faulty = marshal_core::test::compare_run(&products, &faulty_outcomes)?;

        let worst = |v: &[TestOutcome]| {
            v.iter()
                .find(|o| matches!(o, TestOutcome::Fail { .. }))
                .cloned()
                .unwrap_or_else(|| v.first().cloned().unwrap_or(TestOutcome::NoReference))
        };
        let (f, s, bad) = (worst(&functional), worst(&silicon), worst(&faulty));
        if outcome_str(&s) != outcome_str(&bad) {
            any_divergence = true;
        }
        println!(
            "{:>28} {:>12} {:>12} {:>14}",
            products.workload,
            outcome_str(&f),
            outcome_str(&s),
            outcome_str(&bad)
        );
    }

    println!("\n(pass* = workload ships no reference output)");
    if any_divergence {
        println!(
            "triage: functional and healthy silicon agree on every workload; the \
             bad-flash chip diverges — the fault is in the programmed image, not \
             the software stack. Exactly the §VI bring-up localisation."
        );
    }
    // --- Artifact integrity ------------------------------------------------
    // The same fault injector against the work directory itself: a damaged
    // artifact is refused with an actionable error instead of being booted,
    // and `build --force` rebuilds it from sources.
    println!("\nartifact integrity:");
    let products = builder.build("hello.json", &BuildOptions::default())?;
    let artifact = match &products.jobs[0].kind {
        marshal_core::JobKind::Linux { boot_path, .. } => boot_path.clone(),
        marshal_core::JobKind::Bare { bin_path } => bin_path.clone(),
    };
    let mut inj = Injector::new(0x0ddba11);
    inj.corrupt_file(&artifact, FaultKind::Garbage)?;
    match launch::launch_workload(&builder, &products, &Default::default()) {
        Err(MarshalError::Corrupt(msg)) => println!("  detected: {msg}"),
        other => println!("  corruption was NOT detected: {other:?}"),
    }
    let products = builder.build(
        "hello.json",
        &BuildOptions {
            force: true,
            ..Default::default()
        },
    )?;
    let run = launch::launch_workload(&builder, &products, &Default::default())?;
    println!(
        "  recovered with --force: job `{}` exited {}",
        run.jobs[0].job, run.jobs[0].exit_code
    );

    let _ = std::fs::remove_dir_all(root);
    Ok(())
}
