//! The SPEC2017 branch-predictor experiment (§IV-B, Fig. 6, Listing 3).
//!
//! Builds the intspeed workload once, installs it, and runs every job as a
//! parallel cluster node on two BOOM configurations — the older Gshare
//! predictor and the newer TAGE-based predictor — then regenerates the
//! per-benchmark score series of Fig. 6 and the CSV of Listing 3.
//!
//! ```text
//! cargo run --release --example spec2017
//! ```

use std::collections::BTreeMap;

use marshal_core::{install, output, BuildOptions, Builder};
use marshal_sim_rtl::HardwareConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = std::env::temp_dir().join(format!("firemarshal-spec2017-{}", std::process::id()));
    std::fs::create_dir_all(&root)?;
    let setup = marshal_workloads::setup(&root)?;
    let mut builder = Builder::new(setup.board, setup.search, root.join("work"))?;

    // Build once: the artifacts are shared by both hardware configurations
    // (the experiment varies ONLY the hardware).
    println!("building intspeed (10 jobs)...");
    let products = builder.build("intspeed.json", &BuildOptions::default())?;
    let (manifest, _) = install::install_workload(&builder, &products)?;

    let mut scores: BTreeMap<String, BTreeMap<String, f64>> = BTreeMap::new();
    for hw in [HardwareConfig::boom_gshare(), HardwareConfig::boom_tage()] {
        let config_name = hw.name.clone();
        println!(
            "\nrunning {config_name} ({} parallel nodes)...",
            manifest.jobs.len()
        );
        let nodes = install::run_installed(&manifest, hw, true)?;

        // Collect per-node outputs the way FireSim hands them back, then
        // run the workload's own post-run hook to produce Listing 3's CSV.
        let run_root = builder.run_dir(&products.workload).join(&config_name);
        let mut job_dirs = Vec::new();
        for node in &nodes {
            let job_dir = run_root.join(&node.name);
            output::collect_outputs(
                &job_dir,
                &node.result.serial,
                node.result.image.as_ref(),
                &products.top_spec.outputs,
            )?;
            output::write_stats(
                &job_dir,
                node.report.counters.cycles,
                node.report.counters.user_cycles,
                node.report.counters.kernel_cycles,
                node.report.counters.instructions,
                node.report.freq_mhz,
            )?;
            job_dirs.push(node.name.clone());
        }
        let (hook, _) = output::load_hook_script(
            products.top_spec.post_run_hook.as_deref().unwrap(),
            products.source_dir.as_deref(),
        )?;
        output::run_post_hook(&hook, &run_root, &job_dirs)?;

        let csv = std::fs::read_to_string(run_root.join("results.csv"))?;
        println!("results.csv ({config_name}):\n{csv}");
        for line in csv.lines().skip(1) {
            let f: Vec<&str> = line.split(',').collect();
            scores
                .entry(f[0].to_owned())
                .or_default()
                .insert(config_name.clone(), f[4].parse()?);
        }

        // Branch predictor summary per node.
        println!("per-node predictor behaviour ({config_name}):");
        for node in &nodes {
            println!(
                "  {:>24}  cycles {:>9}  branch-acc {:>6.2}%  ipc {:.3}",
                node.name,
                node.report.counters.cycles,
                node.report.counters.branch_accuracy() * 100.0,
                node.report.counters.ipc()
            );
        }
    }

    // --- Fig. 6: score per benchmark, both configurations ----------------
    println!("\n=== Fig. 6: SPEC2017 intspeed scores (higher is better) ===");
    println!(
        "{:>18} {:>12} {:>12} {:>8}",
        "benchmark", "boom-gshare", "boom-tage", "tage/gs"
    );
    let mut gshare_prod = 1.0f64;
    let mut tage_prod = 1.0f64;
    let mut n = 0u32;
    for (bench, per_config) in &scores {
        let g = per_config["boom-gshare"];
        let t = per_config["boom-tage"];
        gshare_prod *= g;
        tage_prod *= t;
        n += 1;
        println!("{bench:>18} {g:>12.2} {t:>12.2} {:>8.3}", t / g);
    }
    let geo = |p: f64| p.powf(1.0 / n as f64);
    println!(
        "{:>18} {:>12.2} {:>12.2} {:>8.3}  (geometric mean)",
        "overall",
        geo(gshare_prod),
        geo(tage_prod),
        geo(tage_prod) / geo(gshare_prod)
    );
    let _ = std::fs::remove_dir_all(root);
    Ok(())
}
