//! The Page Fault Accelerator case study (§IV-A, Figs. 4–5).
//!
//! Follows the paper's exact methodology:
//! 1. functional verification of the latency microbenchmark on the
//!    `pfa-spike` golden model (`launch`),
//! 2. cycle-exact runs of the *unmodified* workload (`install`) on two
//!    hardware configurations — the software-paging baseline and the PFA —
//! 3. the Fig. 5 per-step latency breakdown of a remote page fault.
//!
//! ```text
//! cargo run --release --example pfa_study
//! ```

use marshal_core::{install, launch, BuildOptions, Builder};
use marshal_sim_rtl::pfa::RemoteTimings;
use marshal_sim_rtl::{HardwareConfig, RemoteMemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = std::env::temp_dir().join(format!("firemarshal-pfa-{}", std::process::id()));
    std::fs::create_dir_all(&root)?;
    let setup = marshal_workloads::setup(&root)?;
    let mut builder = Builder::new(setup.board, setup.search, root.join("work"))?;

    println!("building latency-microbenchmark (client + bare-metal server)...");
    let products = builder.build("latency-microbenchmark.json", &BuildOptions::default())?;

    // --- Phase 1: functional verification on the golden model ------------
    println!("\n== functional verification (pfa-spike golden model) ==");
    let run = launch::launch_workload(&builder, &products, &Default::default())?;
    for line in run.jobs[0]
        .serial
        .lines()
        .filter(|l| l.contains("latency-ubench"))
    {
        println!("  | {line}");
    }
    let outcomes = marshal_core::test::compare_run(
        &products,
        &run.jobs
            .iter()
            .map(|j| (j.job.clone(), j.serial.clone()))
            .collect::<Vec<_>>(),
    )?;
    println!("reference check: {outcomes:?}");

    // --- Phase 2: cycle-exact runs, baseline vs. PFA ----------------------
    let timings = RemoteTimings::default();
    let configs = [
        (
            "software-paging (baseline)",
            RemoteMemConfig::SoftwarePaging(timings),
        ),
        ("page-fault accelerator", RemoteMemConfig::Pfa(timings)),
    ];
    let mut reports = Vec::new();
    for (label, remote) in configs {
        let hw = HardwareConfig::rocket().with_remote(remote);
        let node = install::run_job_cycle_exact(&products.jobs[0], hw)?;
        println!("\n== cycle-exact: {label} ==");
        for line in node
            .result
            .serial
            .lines()
            .filter(|l| l.contains("cycles=") || l.contains("faults="))
        {
            println!("  | {line}");
        }
        let pfa = node.report.pfa.expect("remote memory modelled");
        println!(
            "  {} remote faults, mean critical-path latency {} cycles",
            pfa.faults,
            pfa.mean_latency()
        );
        reports.push((label, node.report.clone(), pfa));
    }

    // --- Fig. 5: per-step latency breakdown -------------------------------
    println!("\n=== Fig. 5: remote page fault latency breakdown (cycles/fault) ===");
    print!("{:>24}", "step");
    for (label, _, _) in &reports {
        print!(" {:>26}", label.split(' ').next().unwrap());
    }
    println!();
    let steps = reports[0].2.step_breakdown();
    for (i, (step, _)) in steps.iter().enumerate() {
        print!("{step:>24}");
        for (_, _, pfa) in &reports {
            let v = pfa.step_breakdown()[i].1;
            print!(" {v:>26}");
        }
        println!();
    }
    print!("{:>24}", "TOTAL (critical path)");
    for (_, _, pfa) in &reports {
        print!(" {:>26}", pfa.mean_latency());
    }
    println!();
    print!("{:>24}", "deferred bookkeeping");
    for (_, _, pfa) in &reports {
        print!(
            " {:>26}",
            pfa.deferred_bookkeeping_cycles / pfa.faults.max(1)
        );
    }
    println!();

    let baseline = reports[0].2.mean_latency() as f64;
    let accel = reports[1].2.mean_latency() as f64;
    println!(
        "\nPFA speedup on the fault critical path: {:.2}x  (kernel work moved off the critical path)",
        baseline / accel
    );
    println!(
        "end-to-end client cycles: baseline {} vs PFA {} ({:.2}x)",
        reports[0].1.counters.cycles,
        reports[1].1.counters.cycles,
        reports[0].1.counters.cycles as f64 / reports[1].1.counters.cycles as f64
    );
    let _ = std::fs::remove_dir_all(root);
    Ok(())
}
