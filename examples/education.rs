//! The education case study (§IV-C, Fig. 7): students tune a kernel
//! routine against a fixed workload definition; development happens on
//! fast functional simulation, grading on deterministic cycle-exact
//! simulation — and the staff reproduces every student's number exactly.
//!
//! ```text
//! cargo run --release --example education
//! ```

use marshal_core::{install, launch, BuildOptions, Builder};
use marshal_sim_rtl::HardwareConfig;

/// A student's submission: a matrix-multiply inner loop. The "assignment"
/// ships two variants — naive and tuned — as mscript-assembled sources.
fn student_workload(root: &std::path::Path, variant: &str, body: &str) -> std::path::PathBuf {
    let dir = root.join(format!("student-{variant}"));
    std::fs::create_dir_all(dir.join("overlay/bin")).unwrap();
    std::fs::write(
        dir.join("assignment.json"),
        r#"{
            "name": "assignment",
            "base": "br-base.json",
            "host-init": "build.ms",
            "overlay": "overlay",
            "command": "/bin/matmul",
            "testing": { "refDir": "refs" }
        }"#,
    )
    .unwrap();
    std::fs::write(
        dir.join("build.ms"),
        "#!mscript\nassemble(\"matmul.s\", \"overlay/bin/matmul\")\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("matmul.s"),
        marshal_workloads::runtime::compose_benchmark("matmul", body),
    )
    .unwrap();
    std::fs::create_dir_all(dir.join("refs")).unwrap();
    std::fs::write(dir.join("refs/uartlog"), "matmul checksum: 112640\n").unwrap();
    dir
}

/// Naive version: recomputes the row base address inside the inner loop.
const NAIVE: &str = r#"
        .data
        .align 3
mat:    .space 2048            # 16x16 u64
        .text
bench_main:
        # fill matrix with i+j
        li      t0, 0
fill_i: li      t1, 0
fill_j: slli    t2, t0, 4
        add     t2, t2, t1
        slli    t2, t2, 3
        la      t3, mat
        add     t2, t3, t2
        add     t4, t0, t1
        sd      t4, 0(t2)
        addi    t1, t1, 1
        li      t5, 16
        blt     t1, t5, fill_j
        addi    t0, t0, 1
        blt     t0, t5, fill_i
        # C[i][j] accumulation with redundant address math (slow)
        li      s2, 0          # checksum
        li      s3, 30         # passes
pass:   li      t0, 0
mi:     li      t1, 0
mj:     li      t2, 0
        li      t6, 0          # acc
mk:     # a = mat[i][k] (recompute base every time)
        slli    t3, t0, 4
        add     t3, t3, t2
        slli    t3, t3, 3
        la      t4, mat
        add     t3, t4, t3
        ld      t3, 0(t3)
        # b = mat[k][j]
        slli    t5, t2, 4
        add     t5, t5, t1
        slli    t5, t5, 3
        add     t5, t4, t5
        ld      t5, 0(t5)
        mul     t3, t3, t5
        add     t6, t6, t3
        addi    t2, t2, 1
        li      t5, 16
        blt     t2, t5, mk
        add     s2, s2, t6
        addi    t1, t1, 1
        li      t5, 16
        blt     t1, t5, mj
        addi    t0, t0, 1
        li      t5, 16
        blt     t0, t5, mi
        addi    s3, s3, -1
        bnez    s3, pass
        slli    a0, s2, 47
        srli    a0, a0, 47
        ret
"#;

/// Tuned version: hoists row pointers out of the inner loop (fewer
/// instructions, same results).
const TUNED: &str = r#"
        .data
        .align 3
mat:    .space 2048
        .text
bench_main:
        li      t0, 0
fill_i: li      t1, 0
fill_j: slli    t2, t0, 4
        add     t2, t2, t1
        slli    t2, t2, 3
        la      t3, mat
        add     t2, t3, t2
        add     t4, t0, t1
        sd      t4, 0(t2)
        addi    t1, t1, 1
        li      t5, 16
        blt     t1, t5, fill_j
        addi    t0, t0, 1
        blt     t0, t5, fill_i
        li      s2, 0
        li      s3, 30
pass:   li      t0, 0
mi:     # row pointer hoisted out of the j/k loops
        la      s4, mat
        slli    t3, t0, 7      # i*16*8
        add     s4, s4, t3     # &mat[i][0]
        li      t1, 0
mj:     la      s5, mat
        slli    t3, t1, 3
        add     s5, s5, t3     # &mat[0][j]
        li      t2, 0
        li      t6, 0
        mv      s6, s4         # a-ptr walks the row
        mv      s7, s5         # b-ptr walks the column
mk:     ld      t3, 0(s6)
        ld      t5, 0(s7)
        mul     t3, t3, t5
        add     t6, t6, t3
        addi    s6, s6, 8
        addi    s7, s7, 128    # next row, same column
        addi    t2, t2, 1
        li      t5, 16
        blt     t2, t5, mk
        add     s2, s2, t6
        addi    t1, t1, 1
        li      t5, 16
        blt     t1, t5, mj
        addi    t0, t0, 1
        li      t5, 16
        blt     t0, t5, mi
        addi    s3, s3, -1
        bnez    s3, pass
        slli    a0, s2, 47
        srli    a0, a0, 47
        ret
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = std::env::temp_dir().join(format!("firemarshal-edu-{}", std::process::id()));
    std::fs::create_dir_all(&root)?;
    let hw = HardwareConfig::rocket();

    println!("== education workflow (Fig. 7): develop functionally, grade cycle-exactly ==\n");
    let mut graded = Vec::new();
    for (variant, body) in [("naive", NAIVE), ("tuned", TUNED)] {
        let dir = student_workload(&root, variant, body);
        let setup = marshal_workloads::setup(&root)?;
        let mut search = setup.search;
        search.add_dir(&dir);
        let mut builder = Builder::new(setup.board, search, root.join(format!("work-{variant}")))?;
        let products = builder.build("assignment.json", &BuildOptions::default())?;

        // Development loop: fast functional simulation + reference test.
        let run = launch::launch_workload(&builder, &products, &Default::default())?;
        let outcomes = marshal_core::test::compare_run(
            &products,
            &[(run.jobs[0].job.clone(), run.jobs[0].serial.clone())],
        )?;
        println!("[{variant}] functional check: {outcomes:?} (correctness first!)");

        // Grading: deterministic cycle-exact measurement, twice (student
        // and staff must agree to the cycle).
        let student = install::run_job_cycle_exact(&products.jobs[0], hw.clone())?
            .report
            .counters
            .cycles;
        let staff = install::run_job_cycle_exact(&products.jobs[0], hw.clone())?
            .report
            .counters
            .cycles;
        assert_eq!(student, staff, "grading must be reproducible");
        println!("[{variant}] graded cycles: {student} (staff re-run: {staff})\n");
        graded.push((variant, student));
    }
    let naive = graded[0].1 as f64;
    let tuned = graded[1].1 as f64;
    println!(
        "tuned submission speedup: {:.2}x — same checksum, fewer cycles; the grade is the cycle count",
        naive / tuned
    );
    let _ = std::fs::remove_dir_all(root);
    Ok(())
}
