//! Quickstart: the typical FireMarshal flow (Fig. 2 of the paper) on the
//! bundled `hello` workload.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use marshal_core::{launch, BuildOptions, Builder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = std::env::temp_dir().join(format!("firemarshal-quickstart-{}", std::process::id()));
    std::fs::create_dir_all(&root)?;

    // 1. Set up the board and bundled workloads (normally shipped with the
    //    SoC development framework).
    let setup = marshal_workloads::setup(&root)?;
    let mut builder = Builder::new(setup.board, setup.search, root.join("work"))?;

    // 2. `marshal build hello.json` — spec to artifacts.
    println!("== build ==");
    let products = builder.build("hello.json", &BuildOptions::default())?;
    println!(
        "built `{}`: {} task(s) executed, {} skipped",
        products.workload,
        products.report.executed.len(),
        products.report.skipped.len()
    );
    for job in &products.jobs {
        println!("  job {} -> {:?}", job.name, job.kind);
    }

    // 3. `marshal launch hello.json` — run in functional simulation.
    println!("\n== launch (functional simulation) ==");
    let run = launch::launch_workload(&builder, &products, &Default::default())?;
    for line in run.jobs[0].serial.lines() {
        println!("  | {line}");
    }
    println!(
        "exit code {}, outputs in {}",
        run.jobs[0].exit_code,
        run.jobs[0].job_dir.display()
    );
    println!(
        "collected /output/hello.txt: {:?}",
        std::fs::read_to_string(run.jobs[0].job_dir.join("output/hello.txt"))?
    );

    // 4. `marshal test hello.json` — compare against the reference.
    println!("\n== test ==");
    let outcomes = marshal_core::test::compare_run(
        &products,
        &[(run.jobs[0].job.clone(), run.jobs[0].serial.clone())],
    )?;
    println!("reference comparison: {outcomes:?}");

    // 5. `marshal install hello.json` + cycle-exact run of the SAME
    //    artifacts.
    println!("\n== install + cycle-exact run ==");
    let (manifest, path) = marshal_core::install::install_workload(&builder, &products)?;
    println!("manifest at {}", path.display());
    let nodes = marshal_core::install::run_installed(
        &manifest,
        marshal_sim_rtl::HardwareConfig::boom_tage(),
        false,
    )?;
    let report = &nodes[0].report;
    println!(
        "cycle-exact: {} cycles, {} instructions, IPC {:.3}, branch accuracy {:.2}%",
        report.counters.cycles,
        report.counters.instructions,
        report.counters.ipc(),
        report.counters.branch_accuracy() * 100.0
    );
    let _ = std::fs::remove_dir_all(root);
    Ok(())
}
