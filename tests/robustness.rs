//! Fault-tolerance integration tests: the acceptance scenarios for the
//! robustness layer. One injected failure in a ten-task graph must not
//! stop independent subtrees under `--keep-going`; corrupted state
//! databases and boot binaries must be *detected* (never a panic or a
//! silent wrong result) with `build --force` as the recovery path; and a
//! hung guest must be terminated at the instruction budget with its
//! partial UART log preserved.

mod common;

use std::sync::{Arc, Mutex};

use marshal_core::cli::{self, CliArgs, Command};
use marshal_core::faultinject::{FaultKind, Injector};
use marshal_core::{launch, BuildOptions, LaunchOptions, MarshalError};
use marshal_depgraph::{ExecOptions, Graph, StateDb, Task};

/// A ten-task graph with one injected failure. Shape:
///
/// ```text
///   a ── b ── c ── bad ── e ── f        (cone: bad, e, f)
///   a ── g ── h                         (independent of the failure)
///   i ── j                              (fully independent subtree)
/// ```
#[test]
fn keep_going_with_injected_failure_in_ten_task_graph() {
    let ran: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let ok = |id: &'static str, ran: &Arc<Mutex<Vec<String>>>| {
        let ran = Arc::clone(ran);
        Task::new(id, move || {
            ran.lock().unwrap().push(id.to_owned());
            Ok(())
        })
    };
    let mut g = Graph::new();
    g.add(ok("a", &ran)).unwrap();
    g.add(ok("b", &ran).dep("a")).unwrap();
    g.add(ok("c", &ran).dep("b")).unwrap();
    g.add(Task::new("bad", || Err("injected fault".to_owned())).dep("c"))
        .unwrap();
    g.add(ok("e", &ran).dep("bad")).unwrap();
    g.add(ok("f", &ran).dep("e")).unwrap();
    g.add(ok("g", &ran).dep("a")).unwrap();
    g.add(ok("h", &ran).dep("g")).unwrap();
    g.add(ok("i", &ran)).unwrap();
    g.add(ok("j", &ran).dep("i")).unwrap();

    for threads in [1, 4] {
        ran.lock().unwrap().clear();
        let mut db = StateDb::in_memory();
        let report = g
            .execute_with(
                &mut db,
                &ExecOptions {
                    keep_going: true,
                    threads,
                    ..ExecOptions::default()
                },
            )
            .unwrap();

        // Everything outside the failure's dependent cone executed...
        let mut executed = report.executed.clone();
        executed.sort();
        assert_eq!(executed, vec!["a", "b", "c", "g", "h", "i", "j"]);
        // ...and the report lists exactly the failed + poisoned tasks.
        assert_eq!(
            report.failed,
            vec![("bad".to_owned(), "injected fault".to_owned())]
        );
        let mut poisoned = report.poisoned.clone();
        poisoned.sort();
        assert_eq!(poisoned, vec!["e", "f"]);
        assert!(!report.success());
        assert_eq!(report.total(), 10);
        // Poisoned tasks were never attempted.
        assert!(!ran.lock().unwrap().iter().any(|t| t == "e" || t == "f"));
    }
}

#[test]
fn corrupted_state_db_quarantines_and_rebuilds() {
    let root = common::tmpdir("rob-statedb");
    let mut builder = common::builder_in(&root);
    builder
        .build("hello.json", &BuildOptions::default())
        .unwrap();
    drop(builder);

    let db_path = root.join("work").join("state.db");
    assert!(db_path.exists(), "build must persist its state db");
    let mut inj = Injector::new(0x5eed);
    inj.corrupt_file(&db_path, FaultKind::Truncate).unwrap();

    // Reopening never panics or hard-errors: the damaged file is
    // quarantined, the builder reports the recovery, and the workload
    // rebuilds from a cold cache.
    let mut builder = common::builder_in(&root);
    let products = builder
        .build("hello.json", &BuildOptions::default())
        .unwrap();
    if let Some(note) = builder.state_recovery() {
        assert!(note.contains("quarantined"), "{note}");
        assert!(db_path.with_extension("db.corrupt").exists());
        assert!(!products.report.executed.is_empty(), "cold cache rebuilds");
    } else {
        // The injected truncation happened to leave a valid prefix — the
        // surviving entries must then be genuinely intact (no silent
        // acceptance of garbage), which StateDb::open's checksum verifies.
        assert!(products.report.success());
    }
    let run = launch::launch_workload(&builder, &products, &LaunchOptions::default()).unwrap();
    assert!(run.jobs[0].serial.contains("Hello from FireMarshal!"));
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn interrupted_build_rebuilds_the_torn_task() {
    // A crash *between* a task's in-progress mark and its completion must
    // make the next run rebuild that task: its outputs may be torn, and its
    // recorded fingerprint (from an earlier build) cannot vouch for them.
    let root = common::tmpdir("rob-interrupt");
    let mut builder = common::builder_in(&root);
    let products = builder
        .build("hello.json", &BuildOptions::default())
        .unwrap();
    let job_name = products.jobs[0].name.clone();
    let boot_task = format!("boot:{job_name}");
    let boot_path = match &products.jobs[0].kind {
        marshal_core::JobKind::Linux { boot_path, .. } => boot_path.clone(),
        marshal_core::JobKind::Bare { bin_path } => bin_path.clone(),
    };
    drop(builder);

    // Simulate the crash: the scheduler flushes an in-progress mark right
    // before running a task; a crash mid-action leaves the mark behind and
    // the artifact torn.
    let db_path = root.join("work").join("state.db");
    let mut db = StateDb::open(&db_path).unwrap();
    db.mark_in_progress(boot_task.clone());
    db.flush().unwrap();
    let mut inj = Injector::new(0x70_42);
    inj.corrupt_file(&boot_path, FaultKind::Truncate).unwrap();

    // The next run warns about the interruption, re-executes exactly the
    // marked task, and produces a launchable artifact. Without the dirty
    // marking, the stale fingerprint plus the still-existing (torn) file
    // would skip the task and the launch would fail verification.
    let mut builder = common::builder_in(&root);
    let products = builder
        .build("hello.json", &BuildOptions::default())
        .unwrap();
    assert!(
        products
            .warnings
            .iter()
            .any(|w| w.context == boot_task && w.message.contains("interrupted")),
        "interruption surfaced as a structured warning: {:?}",
        products.warnings
    );
    assert!(
        products.report.ran(&boot_task),
        "torn task re-executed: {:?}",
        products.report
    );
    let run = launch::launch_workload(&builder, &products, &LaunchOptions::default()).unwrap();
    assert!(run.jobs[0].serial.contains("Hello from FireMarshal!"));

    // A further clean build carries no leftover marks or warnings.
    drop(builder);
    let mut builder = common::builder_in(&root);
    let products = builder
        .build("hello.json", &BuildOptions::default())
        .unwrap();
    assert!(products.warnings.is_empty(), "{:?}", products.warnings);
    assert!(products.report.executed.is_empty(), "everything up to date");
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn torn_guest_init_image_recovers_on_rebuild() {
    // Mid-run guest state: a crash during the guest-init image flush leaves
    // a torn level image (intact header, missing tail) plus the scheduler's
    // in-progress mark. The next build must re-run the guest-init level
    // from its parent, and the recovered image must carry the done marker —
    // never the started scar — so the one-shot init stays idempotent.
    let root = common::tmpdir("rob-guestinit");
    let mut builder = common::builder_in(&root);
    let products = builder
        .build("onnx-infer.json", &BuildOptions::default())
        .unwrap();
    let img_task = products
        .report
        .executed
        .iter()
        .find(|t| t.starts_with("img:") && t.ends_with("/onnx-infer"))
        .expect("guest-init level task in the report")
        .clone();
    drop(builder);

    // The guest-init level's stored image lives in work/levels and is named
    // after the level (`onnx-infer-<fingerprint>.img`).
    let levels = root.join("work").join("levels");
    let img_path = std::fs::read_dir(&levels)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("onnx-infer-"))
        })
        .expect("level image for the guest-init level");

    // Simulate the crash: in-progress mark flushed, then the image write
    // torn partway through.
    let db_path = root.join("work").join("state.db");
    let mut db = StateDb::open(&db_path).unwrap();
    db.mark_in_progress(img_task.clone());
    db.flush().unwrap();
    drop(db);
    let mut inj = Injector::new(0x6e57_1217);
    let fault = inj.tear_image_write(&img_path).unwrap();
    assert!(fault.offset < fault.original_len, "tail was torn off");

    // Recovery: the next build surfaces the interruption, re-executes the
    // guest-init level, and the workload launches cleanly.
    let mut builder = common::builder_in(&root);
    let products = builder
        .build("onnx-infer.json", &BuildOptions::default())
        .unwrap();
    assert!(
        products
            .warnings
            .iter()
            .any(|w| w.context == img_task && w.message.contains("interrupted")),
        "interruption surfaced as a structured warning: {:?}",
        products.warnings
    );
    assert!(
        products.report.ran(&img_task),
        "torn guest-init level re-executed: {:?}",
        products.report
    );

    // The recovered level image parses again and shows a *completed*
    // guest-init: done marker present, started scar gone. Levels are MMAN
    // manifests, so loading goes through the workdir's blob store.
    let store = marshal_image::BlobStore::new(root.join("work").join("objects"));
    let recovered = store.load_image(&img_path).unwrap();
    assert!(recovered.exists(marshal_image::initsys::GUEST_INIT_DONE));
    assert!(
        !marshal_image::initsys::guest_init_interrupted(&recovered),
        "no started scar survives a successful re-run"
    );

    // Idempotency end to end: the relaunched workload does not replay the
    // one-shot init (the done marker gates it) but keeps its effects.
    let run = launch::launch_workload(&builder, &products, &LaunchOptions::default()).unwrap();
    let serial = &run.jobs[0].serial;
    assert!(
        !serial.contains("running one-shot guest-init"),
        "guest-init must not replay at launch: {serial}"
    );
    assert!(serial.contains("onnx-infer checksum:"), "{serial}");
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn corrupted_boot_binary_detected_and_force_recovers() {
    let root = common::tmpdir("rob-artifact");
    let mut builder = common::builder_in(&root);
    let products = builder
        .build("hello.json", &BuildOptions::default())
        .unwrap();
    let artifact = match &products.jobs[0].kind {
        marshal_core::JobKind::Linux { boot_path, .. } => boot_path.clone(),
        marshal_core::JobKind::Bare { bin_path } => bin_path.clone(),
    };

    let mut inj = Injector::new(0xfa_17);
    inj.corrupt_file(&artifact, FaultKind::BitFlip).unwrap();

    // Detection: an actionable Corrupt error, not a boot failure.
    let err = launch::launch_workload(&builder, &products, &LaunchOptions::default()).unwrap_err();
    let MarshalError::Corrupt(msg) = err else {
        panic!("expected Corrupt, got {err:?}");
    };
    assert!(msg.contains("--force"), "actionable message: {msg}");

    // Recovery: `build --force` rewrites the artifact and its checksum.
    let products = builder
        .build(
            "hello.json",
            &BuildOptions {
                force: true,
                ..Default::default()
            },
        )
        .unwrap();
    let run = launch::launch_workload(&builder, &products, &LaunchOptions::default()).unwrap();
    assert!(run.jobs[0].serial.contains("Hello from FireMarshal!"));
    assert!(!run.jobs[0].timed_out);
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn hung_guest_terminates_at_budget_with_partial_uartlog() {
    let root = common::tmpdir("rob-watchdog");
    let mut builder = common::builder_in(&root);
    let products = builder
        .build("hello.json", &BuildOptions::default())
        .unwrap();

    // An absurdly small budget makes even a healthy payload look hung —
    // exactly what a real hang looks like from outside the guest.
    let opts = LaunchOptions {
        timeout_insts: Some(1),
        ..LaunchOptions::default()
    };
    let run = launch::launch_workload(&builder, &products, &opts).unwrap();
    let job = &run.jobs[0];
    assert!(job.timed_out);
    assert!(job
        .serial
        .contains("watchdog: instruction budget exhausted"));
    // The partial UART log (boot messages and all) was salvaged to disk.
    let uartlog = std::fs::read_to_string(job.job_dir.join("uartlog")).unwrap();
    assert!(uartlog.contains("OpenSBI"), "boot log salvaged: {uartlog}");
    assert!(uartlog.contains("watchdog"));
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn cli_launch_surfaces_timeout_exit_code() {
    let root = common::tmpdir("rob-cli");
    let setup = marshal_workloads::setup(&root).unwrap();
    let args = CliArgs {
        search_dirs: vec![],
        workdir: root.join("work").to_string_lossy().into_owned(),
        verbose: false,
        command: Command::Launch {
            workload: "hello.json".to_owned(),
            job: None,
            timeout_insts: Some(1),
            sim: None,
            hw: None,
            no_checkpoint: false,
        },
    };
    let (code, log) = cli::run_command(&args, setup.board, setup.search);
    assert_eq!(code, cli::EXIT_TIMED_OUT);
    assert!(
        log.iter().any(|l| l.contains("TIMED OUT")),
        "diagnostic in log: {log:?}"
    );
    let _ = std::fs::remove_dir_all(root);
}
