//! E11 (§III-E): "the workload outputs are not modified in any way between
//! the launch and install commands; the exact same artifacts are run on
//! both simulators" — and produce consistent behaviour on QEMU, Spike, and
//! the cycle-exact simulator.

mod common;

use marshal_core::{clean_output, launch, BuildOptions, LaunchOptions};
use marshal_firmware::BootBinary;
use marshal_image::FsImage;
use marshal_sim_functional::{LaunchMode, Qemu, Spike};
use marshal_sim_rtl::{FireSim, HardwareConfig};

#[test]
fn same_artifacts_same_cleaned_output_on_all_simulators() {
    let root = common::tmpdir("consistency");
    let mut builder = common::builder_in(&root);
    let products = builder
        .build("coremark.json", &BuildOptions::default())
        .unwrap();
    let marshal_core::JobKind::Linux {
        boot_path,
        disk_path,
    } = &products.jobs[0].kind
    else {
        panic!("expected linux job");
    };
    let boot = BootBinary::from_bytes(&std::fs::read(boot_path).unwrap()).unwrap();
    let disk = FsImage::from_bytes(&std::fs::read(disk_path.as_ref().unwrap()).unwrap()).unwrap();

    let qemu = Qemu::new()
        .launch(&boot, Some(&disk), LaunchMode::Run)
        .unwrap();
    let spike = Spike::new()
        .launch(&boot, Some(&disk), LaunchMode::Run)
        .unwrap();
    let (firesim, report) = FireSim::new(HardwareConfig::rocket())
        .launch(&boot, Some(&disk), LaunchMode::Run)
        .unwrap();

    // Identical instruction streams on all three simulators.
    assert_eq!(qemu.instructions, spike.instructions);
    assert_eq!(qemu.instructions, firesim.instructions);
    // The cycle-exact simulator modelled real time on top.
    assert!(report.counters.cycles > report.counters.instructions);

    // Raw serial logs differ (timestamps, banner, machine model)...
    assert_ne!(qemu.serial, spike.serial);
    assert_ne!(qemu.serial, firesim.serial);
    // ...but the cleaned logs are identical.
    assert_eq!(clean_output(&qemu.serial), clean_output(&spike.serial));
    assert_eq!(clean_output(&qemu.serial), clean_output(&firesim.serial));

    // And all three contain the benchmark's stable checksum line.
    let checksum_line = format!(
        "coremark checksum: {}",
        marshal_workloads::coremark::known_checksum()
    );
    for serial in [&qemu.serial, &spike.serial, &firesim.serial] {
        assert!(serial.contains(&checksum_line));
    }
    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn launch_sim_flag_runs_same_artifacts_on_every_backend() {
    // The backend registry behind `launch --sim`: one build, three
    // backends, no artifact mutation in between. The functional pair must
    // agree on canonical output *and* instruction stream; the cycle-exact
    // backend must agree on behaviour (canonical output and exit status),
    // though its timing differs by construction.
    let root = common::tmpdir("consistency-sim-flag");
    let mut builder = common::builder_in(&root);
    let products = builder
        .build("hello.json", &BuildOptions::default())
        .unwrap();
    let run_on = |sim: &str| {
        let opts = LaunchOptions {
            sim: Some(sim.to_owned()),
            ..LaunchOptions::default()
        };
        launch::launch_workload(&builder, &products, &opts).unwrap()
    };
    let qemu = run_on("qemu");
    let spike = run_on("spike");
    let rtl = run_on("rtl");

    for run in [&qemu, &spike, &rtl] {
        assert!(run.jobs[0].serial.contains("Hello from FireMarshal!"));
        assert!(!run.jobs[0].timed_out);
    }
    // Functional determinism: QEMU and Spike retire the same instruction
    // stream and print the same canonical log.
    assert_eq!(qemu.jobs[0].instructions, spike.jobs[0].instructions);
    assert_eq!(
        clean_output(&qemu.jobs[0].serial),
        clean_output(&spike.jobs[0].serial)
    );
    // Cycle-exact portability: same exit status and canonical behaviour.
    assert_eq!(qemu.jobs[0].exit_code, rtl.jobs[0].exit_code);
    assert_eq!(
        clean_output(&qemu.jobs[0].serial),
        clean_output(&rtl.jobs[0].serial)
    );
    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn final_images_identical_across_simulators() {
    // Output files (not just serial) also match across simulators.
    let root = common::tmpdir("consistency-img");
    let mut builder = common::builder_in(&root);
    let products = builder
        .build("hello.json", &BuildOptions::default())
        .unwrap();
    let marshal_core::JobKind::Linux {
        boot_path,
        disk_path,
    } = &products.jobs[0].kind
    else {
        panic!();
    };
    let boot = BootBinary::from_bytes(&std::fs::read(boot_path).unwrap()).unwrap();
    let disk = FsImage::from_bytes(&std::fs::read(disk_path.as_ref().unwrap()).unwrap()).unwrap();
    let qemu = Qemu::new()
        .launch(&boot, Some(&disk), LaunchMode::Run)
        .unwrap();
    let (firesim, _) = FireSim::new(HardwareConfig::boom_tage())
        .launch(&boot, Some(&disk), LaunchMode::Run)
        .unwrap();
    let qi = qemu.image.unwrap();
    let fi = firesim.image.unwrap();
    assert_eq!(
        qi.read_file("/output/hello.txt").unwrap(),
        fi.read_file("/output/hello.txt").unwrap()
    );
    assert_eq!(qi.to_bytes(), fi.to_bytes(), "final images byte-identical");
    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn install_then_cycle_exact_run_passes_same_test() {
    // The §IV-A workflow: verify in functional simulation, then run the
    // unmodified workload under `install` and verify with `test --manual`.
    let root = common::tmpdir("consistency-install");
    let mut builder = common::builder_in(&root);
    let products = builder
        .build("latency-microbenchmark.json", &BuildOptions::default())
        .unwrap();

    // Functional pass (launch).
    let run = launch::launch_workload(&builder, &products, &Default::default()).unwrap();
    let functional = marshal_core::test::compare_run(
        &products,
        &run.jobs
            .iter()
            .map(|j| (j.job.clone(), j.serial.clone()))
            .collect::<Vec<_>>(),
    )
    .unwrap();
    assert!(functional.iter().all(marshal_core::TestOutcome::passed));

    // Install + cycle-exact run of the same artifacts.
    let (manifest, _) = marshal_core::install::install_workload(&builder, &products).unwrap();
    let hw = HardwareConfig::rocket().with_remote(marshal_sim_rtl::RemoteMemConfig::Pfa(
        marshal_sim_rtl::pfa::RemoteTimings::default(),
    ));
    let nodes = marshal_core::install::run_installed(&manifest, hw, false).unwrap();
    let cycle_exact = marshal_core::test::compare_run(
        &products,
        &nodes
            .iter()
            .map(|n| (n.name.clone(), n.result.serial.clone()))
            .collect::<Vec<_>>(),
    )
    .unwrap();
    assert!(
        cycle_exact.iter().all(marshal_core::TestOutcome::passed),
        "{cycle_exact:?}"
    );
    // The client actually took remote faults under the PFA model.
    let client = &nodes[0];
    let pfa = client.report.pfa.expect("remote memory modelled");
    assert_eq!(pfa.faults, 64);
    std::fs::remove_dir_all(root).unwrap();
}
