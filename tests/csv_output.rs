//! E7 (Listing 3): the post-run hook emits
//! `name,RealTime,UserTime,KernelTime,score` CSV rows from collected job
//! outputs.

mod common;

use marshal_core::{launch, BuildOptions};

#[test]
fn intspeed_hook_emits_listing3_csv() {
    let root = common::tmpdir("csv");
    let mut builder = common::builder_in(&root);
    // Build the full suite, but launch just two jobs (keeps the functional
    // run quick) and invoke the hook over them.
    let products = builder
        .build("intspeed.json", &BuildOptions::default())
        .unwrap();
    assert_eq!(products.jobs.len(), 10);

    let j0 = launch::launch_job(&builder, &products, 0, &Default::default()).unwrap();
    let j9 = launch::launch_job(&builder, &products, 9, &Default::default()).unwrap();
    assert!(
        j0.serial.contains("600.perlbench_s checksum:"),
        "{}",
        j0.serial
    );
    assert!(j9.serial.contains("657.xz_s checksum:"));
    // Outputs collected per job.
    assert!(j0.job_dir.join("output/600.perlbench_s.status").exists());
    assert!(j0.job_dir.join("stats").exists());

    // Run the hook over the two job dirs.
    let (hook_src, _) = marshal_core::output::load_hook_script(
        products.top_spec.post_run_hook.as_deref().unwrap(),
        products.source_dir.as_deref(),
    )
    .unwrap();
    let run_root = builder.run_dir(&products.workload);
    let log = marshal_core::output::run_post_hook(
        &hook_src,
        &run_root,
        &[j0.job.clone(), j9.job.clone()],
    )
    .unwrap();
    assert!(
        log.iter().any(|l| l.contains("wrote results.csv")),
        "{log:?}"
    );

    let csv = std::fs::read_to_string(run_root.join("results.csv")).unwrap();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines[0], "name,RealTime,UserTime,KernelTime,score");
    assert_eq!(lines.len(), 3, "{csv}");
    for line in &lines[1..] {
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields.len(), 5, "{line}");
        // name like 600.perlbench_s; times like 1.234; score like 1.07
        assert!(fields[0].ends_with("_s"));
        for value in &fields[1..] {
            assert!(
                value.chars().all(|c| c.is_ascii_digit() || c == '.'),
                "{line}"
            );
            assert!(value.contains('.'), "{line}");
        }
    }
    assert!(lines[1].starts_with("600.perlbench_s,"));
    assert!(lines[2].starts_with("657.xz_s,"));
    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn csv_quoting_in_script_library() {
    // The csv_row builtin quotes embedded commas/quotes per RFC 4180.
    let mut interp = marshal_script::Interp::new();
    let v = interp
        .run(
            r#"csv_row(["a,b", "plain", "say \"hi\""])"#,
            &mut marshal_script::NoExtern,
            &[],
        )
        .unwrap();
    assert_eq!(
        v,
        marshal_script::Value::Str("\"a,b\",plain,\"say \"\"hi\"\"\"".into())
    );
}
