//! E2 (Table II): every workload configuration option's semantics,
//! exercised through real builds and launches.

mod common;

use marshal_core::{launch, BuildOptions};

/// Writes a user workload directory and returns a builder that sees it.
fn user_workload(root: &std::path::Path, files: &[(&str, &str)]) -> marshal_core::Builder {
    let wl_dir = root.join("user-workloads");
    std::fs::create_dir_all(&wl_dir).unwrap();
    for (name, text) in files {
        let path = wl_dir.join(name);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).unwrap();
        }
        std::fs::write(path, text).unwrap();
    }
    let setup = marshal_workloads::setup(root).unwrap();
    let mut search = setup.search;
    search.add_dir(&wl_dir);
    marshal_core::Builder::new(setup.board, search, root.join("work")).unwrap()
}

#[test]
fn base_option_inherits_everything() {
    let root = common::tmpdir("opt-base");
    let mut b = user_workload(
        &root,
        &[
            (
                "parent.json",
                r#"{"name":"parent","base":"br-base.json","command":"/bin/sh","outputs":["/output"]}"#,
            ),
            ("child.json", r#"{"name":"child","base":"parent.json"}"#),
        ],
    );
    let products = b.build("child.json", &BuildOptions::default()).unwrap();
    // Child inherited the parent's command and outputs.
    assert_eq!(products.top_spec.command.as_deref(), Some("/bin/sh"));
    assert_eq!(products.top_spec.outputs, vec!["/output"]);
    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn overlay_and_files_options() {
    let root = common::tmpdir("opt-overlay");
    let mut b = user_workload(
        &root,
        &[
            (
                "w.json",
                r#"{"name":"w","base":"br-base.json",
                    "overlay":"my-overlay",
                    "files":[{"host":"extra.txt","guest":"/etc/extra.txt"}]}"#,
            ),
            ("my-overlay/etc/from-overlay", "overlay file\n"),
            ("extra.txt", "from files option\n"),
        ],
    );
    let products = b.build("w.json", &BuildOptions::default()).unwrap();
    let result = launch::simulate_job(&products.jobs[0], &Default::default())
        .unwrap()
        .result;
    let image = result.image.unwrap();
    assert_eq!(
        image.read_file("/etc/from-overlay").unwrap(),
        b"overlay file\n"
    );
    assert_eq!(
        image.read_file("/etc/extra.txt").unwrap(),
        b"from files option\n"
    );
    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn host_init_generates_build_inputs() {
    let root = common::tmpdir("opt-hostinit");
    let mut b = user_workload(
        &root,
        &[
            (
                "w.json",
                r#"{"name":"w","base":"br-base.json","host-init":"gen.ms","overlay":"gen-overlay","command":"/bin/prog"}"#,
            ),
            (
                "gen.ms",
                "#!mscript\nassemble_str(\"_start:\\n li a0, 0\\n li a7, 93\\n ecall\\n\", \"gen-overlay/bin/prog\")\nwrite_file(\"gen-overlay/etc/generated\", \"by host-init\")\n",
            ),
        ],
    );
    std::fs::create_dir_all(root.join("user-workloads/gen-overlay")).unwrap();
    let products = b.build("w.json", &BuildOptions::default()).unwrap();
    let out = launch::simulate_job(&products.jobs[0], &Default::default())
        .unwrap()
        .result;
    assert_eq!(out.exit_code, 0);
    assert_eq!(
        out.image.unwrap().read_file("/etc/generated").unwrap(),
        b"by host-init"
    );
    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn guest_init_runs_exactly_once() {
    let root = common::tmpdir("opt-guestinit");
    let mut b = user_workload(
        &root,
        &[
            (
                "w.json",
                r#"{"name":"w","base":"br-base.json","guest-init":"setup.ms","command":"/bin/sh"}"#,
            ),
            (
                "setup.ms",
                "#!mscript\nlet n = 0\nif exists(\"/etc/gi-count\") { n = parse_int(read_file(\"/etc/gi-count\")) }\nwrite_file(\"/etc/gi-count\", str(n + 1))\n",
            ),
        ],
    );
    let products = b.build("w.json", &BuildOptions::default()).unwrap();
    let result = launch::simulate_job(&products.jobs[0], &Default::default())
        .unwrap()
        .result;
    // guest-init ran once, during build — not again at launch.
    assert_eq!(
        result.image.unwrap().read_file("/etc/gi-count").unwrap(),
        b"1"
    );
    // A rebuild does not re-run it either (tasks are up to date).
    let products2 = b.build("w.json", &BuildOptions::default()).unwrap();
    assert!(products2.report.executed.is_empty());
    let result2 = launch::simulate_job(&products2.jobs[0], &Default::default())
        .unwrap()
        .result;
    assert_eq!(
        result2.image.unwrap().read_file("/etc/gi-count").unwrap(),
        b"1"
    );
    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn run_and_command_options() {
    let root = common::tmpdir("opt-run");
    let mut b = user_workload(
        &root,
        &[
            (
                "cmd.json",
                r#"{"name":"cmd","base":"br-base.json","command":"/bin/busybox"}"#,
            ),
            (
                "run.json",
                r#"{"name":"run","base":"br-base.json","overlay":"scripts","run":"myrun.ms"}"#,
            ),
            (
                "scripts/myrun.ms",
                "#!mscript\nprint(\"run script executed on boot\")\n",
            ),
        ],
    );
    let cmd = b.build("cmd.json", &BuildOptions::default()).unwrap();
    let out = launch::simulate_job(&cmd.jobs[0], &Default::default())
        .unwrap()
        .result;
    assert!(out.serial.contains("BusyBox"));

    let run = b.build("run.json", &BuildOptions::default()).unwrap();
    let out = launch::simulate_job(&run.jobs[0], &Default::default())
        .unwrap()
        .result;
    assert!(
        out.serial.contains("run script executed on boot"),
        "{}",
        out.serial
    );
    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn outputs_and_post_run_hook_options() {
    let root = common::tmpdir("opt-outputs");
    let builder = {
        let mut b = user_workload(
            &root,
            &[
                (
                    "w.json",
                    r#"{"name":"w","base":"br-base.json","overlay":"s","run":"emit.ms",
                        "outputs":["/output"],"post-run-hook":"sum.ms"}"#,
                ),
                (
                    "s/emit.ms",
                    "#!mscript\nwrite_file(\"/output/value\", \"21\")\n",
                ),
                (
                    "sum.ms",
                    "#!mscript\nlet a = args()\nlet v = parse_int(read_file(a[0] + \"/output/value\"))\nwrite_file(\"doubled\", str(v * 2))\nprint(\"hook done\")\n",
                ),
            ],
        );
        let products = b.build("w.json", &BuildOptions::default()).unwrap();
        let run = launch::launch_workload(&b, &products, &Default::default()).unwrap();
        assert_eq!(run.hook_log, vec!["hook done"]);
        assert_eq!(
            std::fs::read_to_string(run.run_root.join("doubled")).unwrap(),
            "42"
        );
        b
    };
    drop(builder);
    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn linux_options_change_kernel() {
    let root = common::tmpdir("opt-linux");
    let mut b = user_workload(
        &root,
        &[
            (
                "w.json",
                r#"{"name":"w","base":"br-base.json",
                    "linux":{"source":"pfa-linux","config":"my.kfrag",
                             "modules":{"mydrv":"mydrv-src-v1"}}}"#,
            ),
            ("my.kfrag", "CONFIG_PFA=y\n# CONFIG_DEBUG_INFO is not set\n"),
        ],
    );
    let products = b.build("w.json", &BuildOptions::default()).unwrap();
    let result = launch::simulate_job(&products.jobs[0], &Default::default())
        .unwrap()
        .result;
    // Custom kernel source version in the banner; fragment-enabled PFA
    // driver line; user module loaded by the initramfs.
    assert!(result.serial.contains("5.7.0-pfa"), "{}", result.serial);
    assert!(result
        .serial
        .contains("pfa: page fault accelerator driver registered"));
    assert!(result.serial.contains("mydrv: module loaded"));
    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn firmware_option_switches_sbi() {
    let root = common::tmpdir("opt-fw");
    let mut b = user_workload(
        &root,
        &[(
            "w.json",
            r#"{"name":"w","base":"br-base.json","firmware":{"use":"bbl"}}"#,
        )],
    );
    let products = b.build("w.json", &BuildOptions::default()).unwrap();
    let result = launch::simulate_job(&products.jobs[0], &Default::default())
        .unwrap()
        .result;
    assert!(result.serial.contains("bbl loader"), "{}", result.serial);
    assert!(!result.serial.contains("OpenSBI"));
    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn spike_option_selects_simulator_with_args() {
    let root = common::tmpdir("opt-spike");
    let mut b = user_workload(
        &root,
        &[(
            "w.json",
            r#"{"name":"w","base":"br-base.json","spike":"pfa-spike","spike-args":["--isa=rv64imac"]}"#,
        )],
    );
    let products = b.build("w.json", &BuildOptions::default()).unwrap();
    let result = launch::simulate_job(&products.jobs[0], &Default::default())
        .unwrap()
        .result;
    assert!(
        result.serial.contains("spike: starting"),
        "{}",
        result.serial
    );
    assert!(result.serial.contains("--isa=rv64imac"));
    assert!(result.serial.contains("feature `pfa` enabled"));
    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn rootfs_size_option_enforced() {
    let root = common::tmpdir("opt-size");
    let big = "x".repeat(8192);
    let mut b = user_workload(
        &root,
        &[
            (
                "w.json",
                r#"{"name":"w","base":"br-base.json","overlay":"big","rootfs-size":"1KiB"}"#,
            ),
            ("big/blob.bin", big.as_str()),
        ],
    );
    // The overlay pushes the image past 1 KiB: the build fails at the
    // size check.
    let err = b.build("w.json", &BuildOptions::default()).unwrap_err();
    assert!(err.to_string().contains("exceeds limit"), "{err}");
    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn jobs_option_expands_nodes() {
    let root = common::tmpdir("opt-jobs");
    let mut b = user_workload(
        &root,
        &[(
            "w.json",
            r#"{"name":"w","base":"br-base.json","jobs":[
                {"name":"n0","command":"/bin/busybox"},
                {"name":"n1","command":"/bin/busybox"},
                {"name":"n2","command":"/bin/busybox"}]}"#,
        )],
    );
    let products = b.build("w.json", &BuildOptions::default()).unwrap();
    assert_eq!(products.jobs.len(), 3);
    assert_eq!(products.jobs[0].name, "w.n0");
    assert_eq!(products.jobs[2].name, "w.n2");
    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn bin_option_makes_bare_metal_job() {
    let root = common::tmpdir("opt-bin");
    let mut b = user_workload(
        &root,
        &[
            (
                "w.json",
                r#"{"name":"w","base":"bare-metal.json","host-init":"mk.ms","bin":"prog.mexe"}"#,
            ),
            (
                "mk.ms",
                "#!mscript\nassemble_str(\"_start:\\n li a0, 7\\n li a7, 93\\n ecall\\n\", \"prog.mexe\")\n",
            ),
        ],
    );
    let products = b.build("w.json", &BuildOptions::default()).unwrap();
    assert!(matches!(
        products.jobs[0].kind,
        marshal_core::JobKind::Bare { .. }
    ));
    let result = launch::simulate_job(&products.jobs[0], &Default::default())
        .unwrap()
        .result;
    assert_eq!(result.exit_code, 7);
    assert!(result.image.is_none());
    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn yaml_workloads_build_and_run() {
    // FireMarshal accepts YAML specs interchangeably with JSON.
    let root = common::tmpdir("opt-yaml");
    let mut b = user_workload(
        &root,
        &[(
            "yamlwork.yaml",
            "name: yamlwork\nbase: br-base.json\ncommand: /bin/busybox\noutputs:\n  - /output\n",
        )],
    );
    let products = b.build("yamlwork.yaml", &BuildOptions::default()).unwrap();
    assert_eq!(products.top_spec.outputs, vec!["/output"]);
    let out = launch::simulate_job(&products.jobs[0], &Default::default())
        .unwrap()
        .result;
    assert!(out.serial.contains("BusyBox"));
    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn img_option_uses_hardcoded_image() {
    // Table II: users may provide a hard-coded disk image.
    let root = common::tmpdir("opt-img");
    // Pre-build a custom image file.
    let mut custom = marshal_image::FsImage::new();
    custom.mkdir_p("/etc/init.d").unwrap();
    custom
        .write_file("/etc/custom-marker", b"hard-coded")
        .unwrap();
    let wl_dir = root.join("user-workloads");
    std::fs::create_dir_all(&wl_dir).unwrap();
    std::fs::write(wl_dir.join("prebuilt.img"), custom.to_bytes()).unwrap();
    let mut b = user_workload(
        &root,
        &[(
            "w.json",
            r#"{"name":"w","base":"br-base.json","img":"prebuilt.img"}"#,
        )],
    );
    let products = b.build("w.json", &BuildOptions::default()).unwrap();
    let result = launch::simulate_job(&products.jobs[0], &Default::default())
        .unwrap()
        .result;
    let image = result.image.unwrap();
    assert_eq!(
        image.read_file("/etc/custom-marker").unwrap(),
        b"hard-coded"
    );
    // The hard-coded image replaced the distro base entirely.
    assert!(!image.exists("/etc/os-release"));
    std::fs::remove_dir_all(root).unwrap();
}
