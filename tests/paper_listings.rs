//! E12: the paper's Listings 1 and 2, parsed, inherited, and expanded
//! exactly as printed — against the real bundled workload tree.

mod common;

use marshal_config::{expand_jobs, resolve_workload};

#[test]
fn listing1_pfa_base_resolves() {
    let root = common::tmpdir("listing1-base");
    let setup = marshal_workloads::setup(&root).unwrap();
    let w = resolve_workload(&setup.search, "pfa-base.json").unwrap();
    assert_eq!(w.chain, vec!["br-base", "pfa-base"]);
    assert_eq!(w.spec.distro.as_deref(), Some("buildroot"));
    assert_eq!(w.spec.host_init.as_deref(), Some("cross-compile.ms"));
    let linux = w.spec.linux.as_ref().unwrap();
    assert_eq!(linux.source.as_deref(), Some("pfa-linux"));
    assert_eq!(linux.config, vec!["pfa-linux.kfrag"]);
    assert_eq!(w.spec.overlay.as_deref(), Some("pfa-test-root"));
    assert_eq!(w.spec.spike.as_deref(), Some("pfa-spike"));
    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn listing1_microbenchmark_jobs_expand() {
    let root = common::tmpdir("listing1-jobs");
    let setup = marshal_workloads::setup(&root).unwrap();
    let w = resolve_workload(&setup.search, "latency-microbenchmark.json").unwrap();
    let jobs = expand_jobs(&setup.search, &w).unwrap();
    assert_eq!(jobs.len(), 2);

    // The client inherits pfa-base's whole stack and layers pfa.kfrag on
    // top of pfa-linux.kfrag (merge order matters: later wins).
    let client = &jobs[0].workload.spec;
    assert_eq!(jobs[0].qualified_name, "latency-microbenchmark.client");
    let linux = client.linux.as_ref().unwrap();
    assert_eq!(linux.config, vec!["pfa-linux.kfrag", "pfa.kfrag"]);
    assert_eq!(client.spike.as_deref(), Some("pfa-spike"));
    assert_eq!(client.overlay.as_deref(), Some("pfa-test-root"));

    // The server is bare-metal and inherits nothing from pfa-base.
    let server = &jobs[1].workload.spec;
    assert_eq!(server.distro.as_deref(), Some("bare-metal"));
    assert_eq!(server.bin.as_deref(), Some("serve.mexe"));
    assert_eq!(server.spike, None);
    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn listing2_intspeed_shape() {
    let root = common::tmpdir("listing2");
    let setup = marshal_workloads::setup(&root).unwrap();
    let w = resolve_workload(&setup.search, "intspeed.json").unwrap();
    assert_eq!(
        w.spec.host_init.as_deref(),
        Some("speckle-build.ms intspeed ref")
    );
    assert_eq!(w.spec.overlay.as_deref(), Some("overlay/intspeed/ref"));
    assert_eq!(w.spec.rootfs_size, Some(3 << 30));
    assert_eq!(w.spec.outputs, vec!["/output"]);
    assert_eq!(w.spec.post_run_hook.as_deref(), Some("handle-results.ms"));

    let jobs = expand_jobs(&setup.search, &w).unwrap();
    assert_eq!(jobs.len(), 10, "one job per intspeed benchmark");
    assert_eq!(jobs[0].qualified_name, "intspeed.600.perlbench_s");
    assert_eq!(jobs[9].qualified_name, "intspeed.657.xz_s");
    for job in &jobs {
        // "Each job differs only in the command option."
        let spec = &job.workload.spec;
        assert!(spec
            .command
            .as_deref()
            .unwrap()
            .starts_with("/intspeed.sh "));
        assert_eq!(spec.rootfs_size, Some(3 << 30));
        assert_eq!(spec.outputs, vec!["/output"]);
        assert_eq!(spec.distro.as_deref(), Some("buildroot"));
    }
    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn keystone_style_base_switching() {
    // §IV-D: "Enabling Keystone is as simple as switching the base option
    // in a workload from the board default to keystone-base.json."
    let root = common::tmpdir("keystone");
    let wl = root.join("user");
    std::fs::create_dir_all(&wl).unwrap();
    std::fs::write(
        wl.join("keystone-base.json"),
        r#"{"name":"keystone-base","base":"br-base.json",
            "linux":{"config":"CONFIG_KEYSTONE=y"},
            "firmware":{"use":"bbl"}}"#,
    )
    .unwrap();
    std::fs::write(
        wl.join("experiment.json"),
        r#"{"name":"experiment","base":"keystone-base.json","command":"/bin/busybox"}"#,
    )
    .unwrap();
    let setup = marshal_workloads::setup(&root).unwrap();
    let mut search = setup.search;
    search.add_dir(&wl);
    let w = resolve_workload(&search, "experiment.json").unwrap();
    assert_eq!(w.chain, vec!["br-base", "keystone-base", "experiment"]);
    assert_eq!(
        w.spec.firmware.as_ref().unwrap().kind,
        Some(marshal_config::FirmwareKind::Bbl)
    );
    std::fs::remove_dir_all(root).unwrap();
}
