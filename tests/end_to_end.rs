//! E3 (Fig. 2): the typical FireMarshal flow — configuration files are
//! built into a boot binary and rootfs, launched in functional and
//! cycle-exact simulation, and run outputs are collected and compared
//! against known-good outputs.

mod common;

use marshal_core::{launch, BuildOptions, TestOutcome};
use marshal_sim_rtl::HardwareConfig;

#[test]
fn fig2_flow_quickstart() {
    let root = common::tmpdir("fig2");
    let mut builder = common::builder_in(&root);

    // Spec -> build.
    let products = builder
        .build("hello.json", &BuildOptions::default())
        .unwrap();
    assert_eq!(products.jobs.len(), 1);

    // Launch in functional simulation.
    let run = launch::launch_workload(&builder, &products, &Default::default()).unwrap();
    assert!(run.jobs[0].serial.contains("Hello from FireMarshal!"));
    assert!(run.jobs[0].job_dir.join("uartlog").exists());
    assert!(run.jobs[0].job_dir.join("output/hello.txt").exists());
    assert!(run.jobs[0].job_dir.join("stats").exists());

    // Launch the SAME artifacts in cycle-exact simulation.
    let node =
        marshal_core::install::run_job_cycle_exact(&products.jobs[0], HardwareConfig::rocket())
            .unwrap();
    assert!(node.result.serial.contains("Hello from FireMarshal!"));
    assert!(node.report.counters.cycles > node.report.counters.instructions);

    // Compare outputs against the known-good reference — both simulators'
    // logs must pass the same reference check.
    let functional = marshal_core::test::compare_run(
        &products,
        &[(run.jobs[0].job.clone(), run.jobs[0].serial.clone())],
    )
    .unwrap();
    assert_eq!(functional, vec![TestOutcome::Pass]);
    let cycle_exact = marshal_core::test::compare_run(
        &products,
        &[(node.name.clone(), node.result.serial.clone())],
    )
    .unwrap();
    assert_eq!(cycle_exact, vec![TestOutcome::Pass]);

    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn fig2_flow_multi_job_workload() {
    // The PFA latency microbenchmark: one Linux client + one bare-metal
    // server, exactly Listing 1's shape.
    let root = common::tmpdir("fig2-jobs");
    let mut builder = common::builder_in(&root);
    let products = builder
        .build("latency-microbenchmark.json", &BuildOptions::default())
        .unwrap();
    assert_eq!(products.jobs.len(), 2);
    assert!(products.jobs[0].name.ends_with("client"));
    assert!(products.jobs[1].name.ends_with("server"));

    let run = launch::launch_workload(&builder, &products, &Default::default()).unwrap();
    assert!(run.jobs[0].serial.contains("latency-ubench faults=64"));
    assert!(run.jobs[1].serial.contains("pfa-server checksum: 1"));
    // The client runs on the custom pfa-spike simulator (the golden model).
    assert!(
        run.jobs[0].serial.contains("spike"),
        "{}",
        run.jobs[0].serial
    );
    assert!(run.jobs[0].serial.contains("feature `pfa` enabled"));

    // The post-run hook produced the combined CSV.
    let csv = std::fs::read_to_string(run.run_root.join("latency.csv")).unwrap();
    assert!(csv.starts_with("job,faults,avg_cycles,min_cycles,max_cycles"));
    assert!(csv.contains("client,64,"));

    // Reference comparison passes for both jobs.
    let outcomes = marshal_core::test::compare_run(
        &products,
        &run.jobs
            .iter()
            .map(|j| (j.job.clone(), j.serial.clone()))
            .collect::<Vec<_>>(),
    )
    .unwrap();
    assert!(
        outcomes.iter().all(|o| matches!(o, TestOutcome::Pass)),
        "{outcomes:?}"
    );

    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn guest_init_fedora_flow() {
    // A Fedora workload whose guest-init installs packages at build time
    // (§IV-A-3's end-to-end benchmark flow).
    let root = common::tmpdir("fedora-gi");
    let wl_dir = root.join("user-workloads");
    std::fs::create_dir_all(&wl_dir).unwrap();
    std::fs::write(
        wl_dir.join("deps.json"),
        r#"{
            "name": "deps",
            "base": "fedora-base.json",
            "guest-init": "install-deps.ms",
            "command": "/usr/bin/dnf"
        }"#,
    )
    .unwrap();
    std::fs::write(
        wl_dir.join("install-deps.ms"),
        "#!mscript\ninstall_packages(\"python3\", \"numpy\")\n",
    )
    .unwrap();

    let setup = marshal_workloads::setup(&root).unwrap();
    let mut search = setup.search;
    search.add_dir(&wl_dir);
    let mut builder = marshal_core::Builder::new(setup.board, search, root.join("work")).unwrap();
    let products = builder
        .build("deps.json", &BuildOptions::default())
        .unwrap();
    let run = launch::launch_workload(&builder, &products, &Default::default()).unwrap();

    // guest-init ran at BUILD time, not at launch.
    assert!(!run.jobs[0].serial.contains("running one-shot guest-init"));
    // ... but its effects are in the image: packages are installed and the
    // systemd flow starts the payload.
    assert!(run.jobs[0].serial.contains("Multi-User System"));
    assert!(run.jobs[0].serial.contains("dnf (modelled)"));

    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn onnx_workload_fedora_end_to_end() {
    // The §IV-B ONNX-runtime-style workload: Fedora base, guest-init
    // package installation at build time, systemd-launched payload, and a
    // passing reference test on both simulator tiers.
    let root = common::tmpdir("onnx");
    let mut builder = common::builder_in(&root);
    let products = builder
        .build("onnx-infer.json", &BuildOptions::default())
        .unwrap();
    let run = launch::launch_workload(&builder, &products, &Default::default()).unwrap();
    let serial = &run.jobs[0].serial;
    assert!(
        serial.contains("Multi-User System"),
        "systemd boot: {serial}"
    );
    assert!(serial.contains("onnx-infer checksum:"));
    // guest-init already ran at build time; its package markers are baked
    // into the image.
    let marshal_core::JobKind::Linux { disk_path, .. } = &products.jobs[0].kind else {
        panic!()
    };
    let disk =
        marshal_image::FsImage::from_bytes(&std::fs::read(disk_path.as_ref().unwrap()).unwrap())
            .unwrap();
    assert!(disk.exists("/usr/share/packages/onnxruntime"));

    let outcomes = marshal_core::test::compare_run(
        &products,
        &[(run.jobs[0].job.clone(), run.jobs[0].serial.clone())],
    )
    .unwrap();
    assert_eq!(outcomes, vec![TestOutcome::Pass]);

    // Same artifacts, cycle-exact, same reference pass.
    let node =
        marshal_core::install::run_job_cycle_exact(&products.jobs[0], HardwareConfig::boom_tage())
            .unwrap();
    let outcomes = marshal_core::test::compare_run(
        &products,
        &[(node.name.clone(), node.result.serial.clone())],
    )
    .unwrap();
    assert_eq!(outcomes, vec![TestOutcome::Pass]);
    std::fs::remove_dir_all(root).unwrap();
}
