//! E10 (§IV-C): "students were able to obtain repeatable results down to
//! an exact cycle-count of each executing application and course staff
//! could reproduce these results for grading purposes."

mod common;

use marshal_core::{BuildOptions, JobKind};
use marshal_firmware::BootBinary;
use marshal_image::FsImage;
use marshal_sim_functional::LaunchMode;
use marshal_sim_rtl::{FireSim, HardwareConfig};

#[test]
fn cycle_counts_repeat_exactly() {
    let root = common::tmpdir("determinism");
    let mut builder = common::builder_in(&root);
    let products = builder
        .build("coremark.json", &BuildOptions::default())
        .unwrap();
    let JobKind::Linux {
        boot_path,
        disk_path,
    } = &products.jobs[0].kind
    else {
        panic!();
    };
    let boot = BootBinary::from_bytes(&std::fs::read(boot_path).unwrap()).unwrap();
    let disk = FsImage::from_bytes(&std::fs::read(disk_path.as_ref().unwrap()).unwrap()).unwrap();

    for hw in [
        HardwareConfig::rocket(),
        HardwareConfig::boom_gshare(),
        HardwareConfig::boom_tage(),
    ] {
        let name = hw.name.clone();
        let sim = FireSim::new(hw);
        let (r1, p1) = sim.launch(&boot, Some(&disk), LaunchMode::Run).unwrap();
        let (r2, p2) = sim.launch(&boot, Some(&disk), LaunchMode::Run).unwrap();
        assert_eq!(
            p1.counters.cycles, p2.counters.cycles,
            "{name}: cycle counts must repeat exactly"
        );
        assert_eq!(p1.counters, p2.counters, "{name}: all counters repeat");
        assert_eq!(r1.serial, r2.serial, "{name}: serial repeats");
    }
    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn parallel_build_is_bit_identical_to_serial() {
    // The scheduler must be invisible in the artifacts: for the bringup
    // suite and the PFA workload, a `-j 8` build and a build spread over
    // two `marshal serve --exec` workers both produce the same boot
    // binary, disk image, and `.fp` checksum sidecars, byte for byte, as
    // a `-j 1` build in a fresh directory.
    let worker_a = common::tmpdir("det-worker-a");
    let worker_b = common::tmpdir("det-worker-b");
    let (addr_a, handle_a, join_a) = common::spawn_exec_server(&worker_a);
    let (addr_b, handle_b, join_b) = common::spawn_exec_server(&worker_b);
    for workload in ["hello.json", "coremark.json", "latency-microbenchmark.json"] {
        let serial_root = common::tmpdir(&format!("det-j1-{workload}"));
        let parallel_root = common::tmpdir(&format!("det-j8-{workload}"));
        let remote_root = common::tmpdir(&format!("det-remote-{workload}"));
        let build = |root: &std::path::Path, opts: &BuildOptions| -> Vec<(String, Vec<u8>)> {
            let mut builder = common::builder_in(root);
            let products = builder.build(workload, opts).unwrap();
            let mut artifacts = Vec::new();
            for job in &products.jobs {
                let mut paths = Vec::new();
                match &job.kind {
                    JobKind::Linux {
                        boot_path,
                        disk_path,
                    } => {
                        paths.push(boot_path.clone());
                        paths.push(marshal_core::integrity::sidecar_path(boot_path));
                        if let Some(disk) = disk_path {
                            paths.push(disk.clone());
                            paths.push(marshal_core::integrity::sidecar_path(disk));
                        }
                    }
                    JobKind::Bare { bin_path } => {
                        paths.push(bin_path.clone());
                        paths.push(marshal_core::integrity::sidecar_path(bin_path));
                    }
                }
                for p in paths {
                    let rel = format!("{}/{}", job.name, p.file_name().unwrap().to_string_lossy());
                    artifacts.push((rel, std::fs::read(&p).unwrap()));
                }
            }
            artifacts
        };
        let serial = build(
            &serial_root,
            &BuildOptions {
                jobs: Some(1),
                ..BuildOptions::default()
            },
        );
        let parallel = build(
            &parallel_root,
            &BuildOptions {
                jobs: Some(8),
                ..BuildOptions::default()
            },
        );
        let remote = build(
            &remote_root,
            &BuildOptions {
                runners: Some(format!("remote:{addr_a},remote:{addr_b}")),
                ..BuildOptions::default()
            },
        );
        for (variant, other) in [("-j 8", &parallel), ("2 remote workers", &remote)] {
            assert_eq!(
                serial.len(),
                other.len(),
                "{workload}: artifact sets ({variant})"
            );
            for ((name, a), (name2, b)) in serial.iter().zip(other.iter()) {
                assert_eq!(name, name2, "{workload}: artifact order ({variant})");
                assert_eq!(
                    marshal_depgraph::Fingerprint::of(a),
                    marshal_depgraph::Fingerprint::of(b),
                    "{workload}: `{name}` differs between -j 1 and {variant}"
                );
            }
        }
        // The store itself must also be scheduler-invisible: the level
        // manifests and the content-addressed blob pool come out identical.
        for sub in ["levels", "objects"] {
            let serial_files = sorted_tree(&serial_root.join("work").join(sub));
            for (variant, root) in [("-j 8", &parallel_root), ("2 remote workers", &remote_root)] {
                let other_files = sorted_tree(&root.join("work").join(sub));
                assert_eq!(
                    serial_files.iter().map(|(n, _)| n).collect::<Vec<_>>(),
                    other_files.iter().map(|(n, _)| n).collect::<Vec<_>>(),
                    "{workload}: {sub}/ file sets differ between -j 1 and {variant}"
                );
                for ((name, a), (_, b)) in serial_files.iter().zip(other_files.iter()) {
                    assert_eq!(
                        marshal_depgraph::Fingerprint::of(a),
                        marshal_depgraph::Fingerprint::of(b),
                        "{workload}: {sub}/{name} differs between -j 1 and {variant}"
                    );
                }
            }
        }
        std::fs::remove_dir_all(serial_root).unwrap();
        std::fs::remove_dir_all(parallel_root).unwrap();
        std::fs::remove_dir_all(remote_root).unwrap();
    }
    handle_a.shutdown();
    handle_b.shutdown();
    let served_a = join_a.join().expect("worker a").requests;
    let served_b = join_b.join().expect("worker b").requests;
    assert!(
        served_a + served_b >= 1,
        "the remote builds actually exercised the workers"
    );
    let _ = std::fs::remove_dir_all(worker_a);
    let _ = std::fs::remove_dir_all(worker_b);
}

/// Every file under `root` (recursively) as (relative path, contents),
/// sorted by path.
fn sorted_tree(root: &std::path::Path) -> Vec<(String, Vec<u8>)> {
    fn rec(root: &std::path::Path, dir: &std::path::Path, out: &mut Vec<(String, Vec<u8>)>) {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        for entry in entries.filter_map(Result::ok) {
            let path = entry.path();
            if path.is_dir() {
                rec(root, &path, out);
            } else {
                let rel = path
                    .strip_prefix(root)
                    .unwrap()
                    .to_string_lossy()
                    .into_owned();
                out.push((rel, std::fs::read(&path).unwrap()));
            }
        }
    }
    let mut out = Vec::new();
    rec(root, root, &mut out);
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

#[test]
fn grading_scenario_staff_reproduces_student_result() {
    // §IV-C: the student runs in one directory, the staff in another; the
    // staff reproduces the student's exact measurement from the shared
    // workload spec alone.
    let student_root = common::tmpdir("det-student");
    let staff_root = common::tmpdir("det-staff");
    let measure = |root: &std::path::Path| -> u64 {
        let mut builder = common::builder_in(root);
        let products = builder
            .build("coremark.json", &BuildOptions::default())
            .unwrap();
        let node = marshal_core::install::run_job_cycle_exact(
            &products.jobs[0],
            HardwareConfig::boom_tage(),
        )
        .unwrap();
        node.report.counters.cycles
    };
    let student_cycles = measure(&student_root);
    let staff_cycles = measure(&staff_root);
    assert_eq!(student_cycles, staff_cycles);
    std::fs::remove_dir_all(student_root).unwrap();
    std::fs::remove_dir_all(staff_root).unwrap();
}

#[test]
fn different_hardware_different_cycles_same_behaviour() {
    // Determinism also means configuration changes are cleanly visible:
    // different cores differ in cycles but never in behaviour.
    let root = common::tmpdir("det-hw");
    let mut builder = common::builder_in(&root);
    let products = builder
        .build("hello.json", &BuildOptions::default())
        .unwrap();
    let rocket =
        marshal_core::install::run_job_cycle_exact(&products.jobs[0], HardwareConfig::rocket())
            .unwrap();
    let boom =
        marshal_core::install::run_job_cycle_exact(&products.jobs[0], HardwareConfig::boom_tage())
            .unwrap();
    assert_eq!(
        rocket.report.counters.instructions,
        boom.report.counters.instructions
    );
    assert_ne!(rocket.report.counters.cycles, boom.report.counters.cycles);
    assert_eq!(
        marshal_core::clean_output(&rocket.result.serial),
        marshal_core::clean_output(&boom.result.serial)
    );
    std::fs::remove_dir_all(root).unwrap();
}
