//! E10 (§IV-C): "students were able to obtain repeatable results down to
//! an exact cycle-count of each executing application and course staff
//! could reproduce these results for grading purposes."

mod common;

use marshal_core::{BuildOptions, JobKind};
use marshal_firmware::BootBinary;
use marshal_image::FsImage;
use marshal_sim_functional::LaunchMode;
use marshal_sim_rtl::{FireSim, HardwareConfig};

#[test]
fn cycle_counts_repeat_exactly() {
    let root = common::tmpdir("determinism");
    let mut builder = common::builder_in(&root);
    let products = builder
        .build("coremark.json", &BuildOptions::default())
        .unwrap();
    let JobKind::Linux {
        boot_path,
        disk_path,
    } = &products.jobs[0].kind
    else {
        panic!();
    };
    let boot = BootBinary::from_bytes(&std::fs::read(boot_path).unwrap()).unwrap();
    let disk = FsImage::from_bytes(&std::fs::read(disk_path.as_ref().unwrap()).unwrap()).unwrap();

    for hw in [
        HardwareConfig::rocket(),
        HardwareConfig::boom_gshare(),
        HardwareConfig::boom_tage(),
    ] {
        let name = hw.name.clone();
        let sim = FireSim::new(hw);
        let (r1, p1) = sim.launch(&boot, Some(&disk), LaunchMode::Run).unwrap();
        let (r2, p2) = sim.launch(&boot, Some(&disk), LaunchMode::Run).unwrap();
        assert_eq!(
            p1.counters.cycles, p2.counters.cycles,
            "{name}: cycle counts must repeat exactly"
        );
        assert_eq!(p1.counters, p2.counters, "{name}: all counters repeat");
        assert_eq!(r1.serial, r2.serial, "{name}: serial repeats");
    }
    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn grading_scenario_staff_reproduces_student_result() {
    // §IV-C: the student runs in one directory, the staff in another; the
    // staff reproduces the student's exact measurement from the shared
    // workload spec alone.
    let student_root = common::tmpdir("det-student");
    let staff_root = common::tmpdir("det-staff");
    let measure = |root: &std::path::Path| -> u64 {
        let mut builder = common::builder_in(root);
        let products = builder
            .build("coremark.json", &BuildOptions::default())
            .unwrap();
        let node = marshal_core::install::run_job_cycle_exact(
            &products.jobs[0],
            HardwareConfig::boom_tage(),
        )
        .unwrap();
        node.report.counters.cycles
    };
    let student_cycles = measure(&student_root);
    let staff_cycles = measure(&staff_root);
    assert_eq!(student_cycles, staff_cycles);
    std::fs::remove_dir_all(student_root).unwrap();
    std::fs::remove_dir_all(staff_root).unwrap();
}

#[test]
fn different_hardware_different_cycles_same_behaviour() {
    // Determinism also means configuration changes are cleanly visible:
    // different cores differ in cycles but never in behaviour.
    let root = common::tmpdir("det-hw");
    let mut builder = common::builder_in(&root);
    let products = builder
        .build("hello.json", &BuildOptions::default())
        .unwrap();
    let rocket =
        marshal_core::install::run_job_cycle_exact(&products.jobs[0], HardwareConfig::rocket())
            .unwrap();
    let boom =
        marshal_core::install::run_job_cycle_exact(&products.jobs[0], HardwareConfig::boom_tage())
            .unwrap();
    assert_eq!(
        rocket.report.counters.instructions,
        boom.report.counters.instructions
    );
    assert_ne!(rocket.report.counters.cycles, boom.report.counters.cycles);
    assert_eq!(
        marshal_core::clean_output(&rocket.result.serial),
        marshal_core::clean_output(&boom.result.serial)
    );
    std::fs::remove_dir_all(root).unwrap();
}
