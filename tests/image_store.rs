//! Integration tests for the copy-on-write image store: structural sharing
//! across clones and overlays, manifest <-> flat round-trips through the
//! content-addressed blob pool, corruption detection, and a property test
//! that the memoized Merkle fingerprint always matches a from-scratch
//! recomputation.

mod common;

use marshal_image::{BlobStore, FsImage, Node, StoreError};
use marshal_qcheck::{cases, Rng};

/// A representative image: nested dirs, plain + executable files, a symlink,
/// and a size limit.
fn sample_image() -> FsImage {
    let mut img = FsImage::new();
    img.mkdir_p("/etc/init.d").unwrap();
    img.write_file("/etc/hostname", b"firemarshal").unwrap();
    img.write_exec("/usr/bin/bench", &vec![0xAAu8; 4096])
        .unwrap();
    img.write_file("/usr/share/data.bin", &vec![0x55u8; 8192])
        .unwrap();
    img.symlink("/etc/init.d/S99run", "/usr/bin/bench").unwrap();
    img.set_size_limit(Some(1 << 20));
    img
}

fn blob_of<'a>(img: &'a FsImage, path: &str) -> &'a marshal_image::Blob {
    match img.node(path) {
        Some(Node::File { data, .. }) => data,
        other => panic!("expected file at {path}, got {other:?}"),
    }
}

#[test]
fn clone_shares_payloads_until_mutated() {
    let base = sample_image();
    let mut child = base.clone();

    // Unmutated: every payload is the same allocation, not a copy.
    assert!(blob_of(&base, "/usr/bin/bench").ptr_eq(blob_of(&child, "/usr/bin/bench")));
    assert!(blob_of(&base, "/usr/share/data.bin").ptr_eq(blob_of(&child, "/usr/share/data.bin")));

    // Mutating one path breaks sharing only along that path.
    child.write_file("/usr/share/data.bin", b"changed").unwrap();
    assert!(!blob_of(&base, "/usr/share/data.bin").ptr_eq(blob_of(&child, "/usr/share/data.bin")));
    assert!(blob_of(&base, "/usr/bin/bench").ptr_eq(blob_of(&child, "/usr/bin/bench")));
    // The base is untouched.
    assert_eq!(
        base.read_file("/usr/share/data.bin").unwrap(),
        &[0x55u8; 8192][..]
    );
}

#[test]
fn overlay_preserves_sharing_for_untouched_files() {
    let base = sample_image();
    let mut upper = FsImage::new();
    upper.write_file("/overlayed.txt", b"new file").unwrap();
    let mut merged = base.clone();
    merged.apply_overlay(&upper);
    // Files the overlay never touched still share the base's allocations.
    assert!(blob_of(&base, "/usr/bin/bench").ptr_eq(blob_of(&merged, "/usr/bin/bench")));
    assert_eq!(merged.read_file("/overlayed.txt").unwrap(), b"new file");
}

#[test]
fn manifest_round_trips_and_dedupes() {
    let root = common::tmpdir("imgstore-roundtrip");
    let store = BlobStore::new(root.join("objects"));
    let img = sample_image();

    let (manifest, stats) = store.write_manifest(&img).unwrap();
    assert!(marshal_image::sniff_manifest(&manifest));
    assert!(stats.blobs_written > 0);

    let back = store.read_manifest(&manifest).unwrap();
    assert_eq!(back.fingerprint(), img.fingerprint());
    assert_eq!(back.size_limit(), img.size_limit());
    assert_eq!(back.to_bytes(), img.to_bytes());

    // Writing the same image again shares every blob instead of rewriting.
    let (_, stats2) = store.write_manifest(&img).unwrap();
    assert_eq!(stats2.blobs_written, 0, "second write must dedupe fully");
    assert_eq!(
        stats2.blobs_shared,
        stats.blobs_written + stats.blobs_shared
    );
    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn load_image_reads_both_manifest_and_legacy_flat() {
    let root = common::tmpdir("imgstore-legacy");
    let store = BlobStore::new(root.join("objects"));
    let img = sample_image();

    let (manifest, _) = store.write_manifest(&img).unwrap();
    let manifest_path = root.join("level.img");
    std::fs::write(&manifest_path, &manifest).unwrap();

    // A pre-existing workdir holds flat MIMG payloads; both must load.
    let flat_path = root.join("legacy.img");
    std::fs::write(&flat_path, img.to_bytes()).unwrap();

    let from_manifest = store.load_image(&manifest_path).unwrap();
    let from_flat = store.load_image(&flat_path).unwrap();
    assert_eq!(from_manifest.fingerprint(), img.fingerprint());
    assert_eq!(from_flat.fingerprint(), img.fingerprint());
    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn missing_blob_is_reported_with_path_and_fingerprint() {
    let root = common::tmpdir("imgstore-missing");
    let store = BlobStore::new(root.join("objects"));
    let img = sample_image();
    let (manifest, _) = store.write_manifest(&img).unwrap();

    let victim = store.blob_path(blob_of(&img, "/usr/bin/bench").fingerprint());
    std::fs::remove_file(&victim).unwrap();

    match store.read_manifest(&manifest) {
        Err(StoreError::MissingBlob { path, fp }) => {
            assert_eq!(path, victim);
            assert_eq!(fp, blob_of(&img, "/usr/bin/bench").fingerprint());
        }
        other => panic!("expected MissingBlob, got {other:?}"),
    }
    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn corrupt_blob_is_detected_on_read() {
    let root = common::tmpdir("imgstore-corrupt");
    let store = BlobStore::new(root.join("objects"));
    let img = sample_image();
    let (manifest, _) = store.write_manifest(&img).unwrap();

    let victim = store.blob_path(blob_of(&img, "/usr/share/data.bin").fingerprint());
    std::fs::write(&victim, b"bitrot").unwrap();

    match store.read_manifest(&manifest) {
        Err(StoreError::CorruptBlob { path, expected, .. }) => {
            assert_eq!(path, victim);
            assert_eq!(expected, blob_of(&img, "/usr/share/data.bin").fingerprint());
        }
        other => panic!("expected CorruptBlob, got {other:?}"),
    }
    std::fs::remove_dir_all(root).unwrap();
}

/// Applies a random mutation to the image; paths are drawn from a small
/// alphabet so sequences revisit (and overwrite, shadow, remove) earlier
/// entries, exercising memo invalidation along shared paths.
fn random_mutation(rng: &mut Rng, img: &mut FsImage) {
    let dirs = ["/a", "/a/b", "/c", "/c/d/e", "/f"];
    let names = ["x", "y", "z"];
    let dir = *rng.pick(&dirs);
    let name = *rng.pick(&names);
    let path = format!("{dir}/{name}");
    match rng.below(5) {
        0 => {
            let data = rng.bytes_in(0, 64);
            let _ = img.write_file(&path, &data);
        }
        1 => {
            let data = rng.bytes_in(1, 32);
            let _ = img.write_exec(&path, &data);
        }
        2 => {
            let target = *rng.pick(&dirs);
            let _ = img.symlink(&path, target);
        }
        3 => {
            let target = *rng.pick(&dirs);
            let _ = img.mkdir_p(target);
        }
        _ => {
            img.remove(&path);
        }
    }
}

#[test]
fn memoized_fingerprint_matches_recomputation_under_random_mutations() {
    cases(48, |rng: &mut Rng| {
        let mut img = FsImage::new();
        // Clones taken mid-sequence keep sharing subtrees with `img`, so the
        // memo must be invalidated precisely along each mutated path.
        let mut snapshot = img.clone();
        let steps = rng.range_usize(1, 24);
        for step in 0..steps {
            random_mutation(rng, &mut img);
            if rng.below(4) == 0 {
                snapshot = img.clone();
            }
            // Ground truth: a freshly deserialized tree has no memos and
            // computes every fingerprint from scratch.
            let fresh = FsImage::from_bytes(&img.to_bytes()).unwrap();
            assert_eq!(
                img.fingerprint(),
                fresh.fingerprint(),
                "memoized fingerprint diverged at step {step}"
            );
        }
        let fresh_snapshot = FsImage::from_bytes(&snapshot.to_bytes()).unwrap();
        assert_eq!(snapshot.fingerprint(), fresh_snapshot.fingerprint());
    });
}

#[test]
fn manifest_round_trip_preserves_fingerprint_property() {
    let root = common::tmpdir("imgstore-prop");
    let store = BlobStore::new(root.join("objects"));
    cases(16, |rng: &mut Rng| {
        let mut img = FsImage::new();
        for _ in 0..rng.range_usize(1, 16) {
            random_mutation(rng, &mut img);
        }
        let (manifest, _) = store.write_manifest(&img).unwrap();
        let back = store.read_manifest(&manifest).unwrap();
        assert_eq!(back.fingerprint(), img.fingerprint());
        assert_eq!(back.to_bytes(), img.to_bytes());
    });
    std::fs::remove_dir_all(root).unwrap();
}
