//! Lockstep co-simulation acceptance: the same built artifacts run on two
//! backends must agree on canonical serial output, exit status, and
//! extracted output files — and the checker must catch a single flipped
//! byte (`--inject-divergence` negative test).

mod common;

use marshal_core::cli::{self, CliArgs, Command};
use marshal_core::cosim::{cosim_workload, CosimOptions, Divergence};
use marshal_core::BuildOptions;

#[test]
fn clean_workload_agrees_on_default_backend_pair() {
    // Default pairing is functional vs cycle-exact (`qemu,rtl`) — the
    // pairing the paper's portability claim is actually about.
    let root = common::tmpdir("cosim-clean");
    let mut builder = common::builder_in(&root);
    let products = builder
        .build("hello.json", &BuildOptions::default())
        .unwrap();
    let report = cosim_workload(&products, &CosimOptions::default()).unwrap();
    assert_eq!(report.backends, ("qemu".to_owned(), "rtl".to_owned()));
    assert!(report.agreed(), "{:?}", report.jobs);
    for job in &report.jobs {
        assert!(job.divergence.is_none());
        // Instruction counts are informational, never compared: both
        // backends still retire a plausible stream.
        assert!(job.instructions.0 > 0 && job.instructions.1 > 0);
    }
    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn functional_pair_agrees_including_outputs() {
    // qemu vs spike over a workload with declared output files: the
    // comparison covers extracted outputs, not just serial text.
    let root = common::tmpdir("cosim-functional");
    let mut builder = common::builder_in(&root);
    let products = builder
        .build("hello.json", &BuildOptions::default())
        .unwrap();
    let opts = CosimOptions {
        backends: ("qemu".to_owned(), "spike".to_owned()),
        ..CosimOptions::default()
    };
    let report = cosim_workload(&products, &opts).unwrap();
    assert!(report.agreed(), "{:?}", report.jobs);
    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn pfa_workload_agrees_functional_vs_cycle_exact() {
    // The PFA microbenchmark exercises the custom `pfa-spike` feature tag:
    // the rtl backend auto-attaches the remote-memory model, and behaviour
    // still matches the functional run on identical artifacts.
    let root = common::tmpdir("cosim-pfa");
    let mut builder = common::builder_in(&root);
    let products = builder
        .build("latency-microbenchmark.json", &BuildOptions::default())
        .unwrap();
    let report = cosim_workload(&products, &CosimOptions::default()).unwrap();
    assert!(report.agreed(), "{:?}", report.jobs);
    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn injected_single_byte_divergence_is_detected() {
    // Negative test: flip one bit in one byte of the second backend's
    // serial output. Canonicalization must not hide it, and the report
    // must pinpoint the first diverging line with context.
    let root = common::tmpdir("cosim-inject");
    let mut builder = common::builder_in(&root);
    let products = builder
        .build("hello.json", &BuildOptions::default())
        .unwrap();
    let opts = CosimOptions {
        inject_divergence: true,
        ..CosimOptions::default()
    };
    let report = cosim_workload(&products, &opts).unwrap();
    assert!(!report.agreed(), "the checker must catch the flipped byte");
    let diverged = report
        .jobs
        .iter()
        .find_map(|j| j.divergence.as_ref())
        .expect("at least one divergence reported");
    let Divergence::Serial { line, a, b, .. } = diverged else {
        panic!("expected a serial divergence, got {diverged}");
    };
    assert!(*line >= 1, "1-indexed line number");
    assert_ne!(a, b, "the two sides show different text");
    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn cli_cosim_exit_codes_follow_agreement() {
    let root = common::tmpdir("cosim-cli");
    let setup = marshal_workloads::setup(&root).unwrap();
    let base = CliArgs {
        search_dirs: vec![],
        workdir: root.join("work").to_string_lossy().into_owned(),
        verbose: false,
        command: Command::Cosim {
            workload: "hello.json".to_owned(),
            sim: None,
            timeout_insts: None,
            hw: None,
            inject_divergence: false,
            no_checkpoint: false,
        },
    };
    let (code, log) = cli::run_command(&base, setup.board.clone(), setup.search.clone());
    assert_eq!(code, 0, "clean cosim exits 0: {log:?}");
    assert!(
        log.iter().any(|l| l.contains("agree")),
        "agreement summary in log: {log:?}"
    );

    let args = CliArgs {
        command: Command::Cosim {
            workload: "hello.json".to_owned(),
            sim: Some("qemu,spike".to_owned()),
            timeout_insts: None,
            hw: None,
            inject_divergence: true,
            no_checkpoint: false,
        },
        ..base
    };
    let (code, log) = cli::run_command(&args, setup.board, setup.search);
    assert_ne!(code, 0, "injected divergence exits nonzero: {log:?}");
    assert!(
        log.iter().any(|l| l.contains("DIVERGENCE")),
        "divergence called out in log: {log:?}"
    );
    let _ = std::fs::remove_dir_all(root);
}
