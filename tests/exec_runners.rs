//! Integration tests for the event-channel executor: `--runners` remote
//! execution against real `marshal serve --exec` daemons over TCP, worker
//! death mid-build (survivors pick up the slack, or the build degrades to
//! local with a structured warning), and `--dry-run` planning.

mod common;

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::time::Duration;

use common::spawn_exec_server;
use marshal_core::{serve_exec_handler, BuildOptions, ImageStore, JobKind};
use marshal_netstore::server::ExecHandler;
use marshal_netstore::Server;

fn rootfs_of(products: &marshal_core::BuildProducts, name_contains: &str) -> PathBuf {
    products
        .jobs
        .iter()
        .find_map(|j| match &j.kind {
            JobKind::Linux {
                disk_path: Some(p), ..
            } if j.name.contains(name_contains) => Some(p.clone()),
            _ => None,
        })
        .expect("linux job with a disk image")
}

/// Every file under `root` (recursively) as (relative path, contents),
/// sorted by path.
fn sorted_tree(root: &Path) -> Vec<(String, Vec<u8>)> {
    fn rec(root: &Path, dir: &Path, out: &mut Vec<(String, Vec<u8>)>) {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        for entry in entries.filter_map(Result::ok) {
            let path = entry.path();
            if path.is_dir() {
                rec(root, &path, out);
            } else {
                let rel = path
                    .strip_prefix(root)
                    .unwrap()
                    .to_string_lossy()
                    .into_owned();
                out.push((rel, std::fs::read(&path).unwrap()));
            }
        }
    }
    let mut out = Vec::new();
    rec(root, root, &mut out);
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

fn assert_stores_match(a: &Path, b: &Path, context: &str) {
    for sub in ["levels", "objects"] {
        let ta = sorted_tree(&a.join("work").join(sub));
        let tb = sorted_tree(&b.join("work").join(sub));
        assert_eq!(
            ta.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            tb.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            "{context}: {sub}/ file sets differ"
        );
        for ((name, ca), (_, cb)) in ta.iter().zip(tb.iter()) {
            assert_eq!(
                marshal_depgraph::Fingerprint::of(ca),
                marshal_depgraph::Fingerprint::of(cb),
                "{context}: {sub}/{name} differs"
            );
        }
    }
}

/// Two healthy exec daemons: the client's level builds run remotely, the
/// fetched results land bit-identical to an all-local build, and no
/// degradation warning is emitted.
#[test]
fn two_exec_workers_match_local_build_bit_for_bit() {
    let local_root = common::tmpdir("exec-2w-local");
    let mut l = common::builder_in(&local_root);
    let products_l = l.build("hello.json", &BuildOptions::default()).unwrap();

    let d1 = common::tmpdir("exec-2w-d1");
    let d2 = common::tmpdir("exec-2w-d2");
    let (a1, h1, j1) = spawn_exec_server(&d1);
    let (a2, h2, j2) = spawn_exec_server(&d2);

    let client_root = common::tmpdir("exec-2w-client");
    let mut c = common::builder_in(&client_root);
    let products_c = c
        .build(
            "hello.json",
            &BuildOptions {
                runners: Some(format!("remote:{a1},remote:{a2}")),
                ..BuildOptions::default()
            },
        )
        .unwrap();

    assert!(
        !products_c.report.executed.is_empty(),
        "a fresh workdir executes its tasks"
    );
    assert!(
        products_c
            .warnings
            .iter()
            .all(|w| !w.to_string().contains("remote-runner")),
        "healthy daemons produce no degradation warnings: {:?}",
        products_c.warnings
    );

    // Remote execution must be invisible in the artifacts.
    assert_eq!(
        std::fs::read(rootfs_of(&products_l, "hello")).unwrap(),
        std::fs::read(rootfs_of(&products_c, "hello")).unwrap(),
        "remote-executed and local root filesystems are bit-identical"
    );
    assert_stores_match(&local_root, &client_root, "remote vs local");

    h1.shutdown();
    h2.shutdown();
    let s1 = j1.join().expect("daemon 1");
    let s2 = j2.join().expect("daemon 2");
    assert!(
        s1.requests + s2.requests >= 1,
        "at least one task was actually served remotely: {s1:?} {s2:?}"
    );

    for r in [local_root, client_root, d1, d2] {
        let _ = std::fs::remove_dir_all(r);
    }
}

/// One worker is dead from the start (connection refused); the surviving
/// worker and the implicit local fallback complete the build, and the dead
/// worker surfaces as a structured `remote-runner` warning.
#[test]
fn dead_worker_is_survived_and_reported() {
    let dead_addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let d1 = common::tmpdir("exec-dead-d1");
    let (a1, h1, j1) = spawn_exec_server(&d1);

    let client_root = common::tmpdir("exec-dead-client");
    let mut c = common::builder_in(&client_root);
    let products = c
        .build(
            "hello.json",
            &BuildOptions {
                runners: Some(format!("remote:{dead_addr},remote:{a1}")),
                ..BuildOptions::default()
            },
        )
        .unwrap();

    assert!(
        products.report.failed.is_empty() && products.report.poisoned.is_empty(),
        "a dead worker never fails the build: {:?}",
        products.report
    );
    assert!(
        products
            .warnings
            .iter()
            .any(|w| w.to_string().contains("fell back to local execution")),
        "the dead worker surfaces as a structured warning: {:?}",
        products.warnings
    );

    h1.shutdown();
    let s1 = j1.join().expect("surviving daemon");
    assert!(
        s1.requests >= 1,
        "the survivor picked up work after the dead worker retired: {s1:?}"
    );

    let _ = std::fs::remove_dir_all(d1);
    let _ = std::fs::remove_dir_all(client_root);
}

/// The only worker is killed mid-build — right after it finishes its first
/// task. The client falls back to local execution for everything else, the
/// build completes bit-identical to an all-local build, and the death is
/// reported as a structured warning.
#[test]
fn worker_killed_mid_build_degrades_gracefully() {
    let local_root = common::tmpdir("exec-kill-local");
    let mut l = common::builder_in(&local_root);
    let products_l = l.build("hello.json", &BuildOptions::default()).unwrap();

    let d = common::tmpdir("exec-kill-d");
    let setup = marshal_workloads::setup(&d).expect("materialise workloads");
    let work = d.join("work");
    let inner = serve_exec_handler(setup.board, setup.search, &work).expect("exec handler");
    let mut server = Server::bind("127.0.0.1:0", &work, Duration::from_secs(5)).expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = server.handle().expect("handle");
    // Wrap the handler so the daemon shuts down immediately after serving
    // its first exec: the reply still goes out, but every later request
    // (including the level fetch that follows) finds a dead daemon.
    let trigger = handle.clone();
    let wrapped: ExecHandler = std::sync::Arc::new(move |task: &str, spec: &[u8]| {
        let result = inner(task, spec);
        trigger.shutdown();
        result
    });
    server.set_exec_handler(wrapped);
    let join = std::thread::spawn(move || server.run());

    let client_root = common::tmpdir("exec-kill-client");
    let mut c = common::builder_in(&client_root);
    let products = c
        .build(
            "hello.json",
            &BuildOptions {
                runners: Some(format!("remote:{addr}")),
                ..BuildOptions::default()
            },
        )
        .unwrap();

    assert!(
        products.report.failed.is_empty() && products.report.poisoned.is_empty(),
        "losing the worker mid-build never fails the build: {:?}",
        products.report
    );
    assert!(
        products
            .warnings
            .iter()
            .any(|w| w.to_string().contains("fell back to local execution")),
        "the mid-build death surfaces as a structured warning: {:?}",
        products.warnings
    );

    // Degraded or not, the artifacts are the same bytes.
    assert_eq!(
        std::fs::read(rootfs_of(&products_l, "hello")).unwrap(),
        std::fs::read(rootfs_of(&products, "hello")).unwrap(),
        "degraded and local builds are bit-identical"
    );
    assert_stores_match(&local_root, &client_root, "degraded vs local");

    handle.shutdown();
    join.join().expect("daemon thread");
    for r in [local_root, client_root, d] {
        let _ = std::fs::remove_dir_all(r);
    }
}

/// `--dry-run` reports the full task plan without executing anything: no
/// level manifests, no pool objects, no job artifacts, no state-database
/// progress — the real build afterwards executes exactly the planned set.
#[test]
fn dry_run_plans_without_touching_anything() {
    let root = common::tmpdir("exec-dry");
    let mut b = common::builder_in(&root);
    let products = b
        .build(
            "hello.json",
            &BuildOptions {
                dry_run: true,
                ..BuildOptions::default()
            },
        )
        .unwrap();
    let plan = products.dry_run.expect("dry-run builds report a plan");
    assert!(!plan.is_empty(), "a fresh workdir has tasks to plan");
    for t in &plan {
        for out in &t.outputs {
            assert!(
                !out.exists(),
                "dry run must not write planned output {} (task `{}`)",
                out.display(),
                t.id
            );
        }
    }
    let store = ImageStore::new(&root.join("work"));
    for dir in [store.levels_dir(), store.objects_dir()] {
        let files: Vec<String> = sorted_tree(dir).into_iter().map(|(n, _)| n).collect();
        assert!(
            files.is_empty(),
            "dry run left {} untouched: {files:?}",
            dir.display()
        );
    }

    // The real build executes exactly what the dry run planned.
    let real = b.build("hello.json", &BuildOptions::default()).unwrap();
    assert!(real.dry_run.is_none(), "real builds report no plan");
    let planned: BTreeSet<String> = plan.into_iter().map(|t| t.id).collect();
    let executed: BTreeSet<String> = real.report.executed.iter().cloned().collect();
    assert_eq!(
        planned, executed,
        "the dry-run plan predicts the real build exactly"
    );

    let _ = std::fs::remove_dir_all(root);
}
