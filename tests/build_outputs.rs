//! E4 (Fig. 3): the outputs of the build command — a complete bootable
//! binary and a disk image by default; with `--no-disk`, the disk image is
//! embedded in the Linux initramfs.

mod common;

use marshal_core::{launch, BuildOptions, JobKind};
use marshal_firmware::BootBinary;
use marshal_image::FsImage;

#[test]
fn default_build_produces_boot_binary_and_disk() {
    let root = common::tmpdir("fig3-default");
    let mut builder = common::builder_in(&root);
    let products = builder
        .build("hello.json", &BuildOptions::default())
        .unwrap();
    let JobKind::Linux {
        boot_path,
        disk_path,
    } = &products.jobs[0].kind
    else {
        panic!("expected a Linux job");
    };
    // Boot binary: firmware + kernel + initramfs (Fig. 3 left).
    let boot = BootBinary::from_bytes(&std::fs::read(boot_path).unwrap()).unwrap();
    assert!(boot.firmware().banner().contains("OpenSBI"));
    assert!(boot.kernel().version().starts_with("5.7"));
    assert!(!boot.kernel().initramfs().is_diskless());
    // Platform drivers are in the initramfs.
    assert!(boot
        .kernel()
        .initramfs()
        .module_names()
        .contains(&"iceblk".to_owned()));
    // Disk image (Fig. 3 right).
    let disk = FsImage::from_bytes(&std::fs::read(disk_path.as_ref().unwrap()).unwrap()).unwrap();
    assert!(disk.exists("/bin/hello"));
    assert!(disk.exists("/etc/firemarshal/run.ms"));
    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn no_disk_build_embeds_rootfs_in_initramfs() {
    let root = common::tmpdir("fig3-nodisk");
    let mut builder = common::builder_in(&root);
    let products = builder
        .build(
            "hello.json",
            &BuildOptions {
                no_disk: true,
                ..Default::default()
            },
        )
        .unwrap();
    let JobKind::Linux {
        boot_path,
        disk_path,
    } = &products.jobs[0].kind
    else {
        panic!("expected a Linux job");
    };
    assert!(disk_path.is_none(), "--no-disk produces no disk image");
    let boot = BootBinary::from_bytes(&std::fs::read(boot_path).unwrap()).unwrap();
    assert!(boot.kernel().initramfs().is_diskless());
    // The rootfs content is inside the initramfs.
    let embedded = boot.kernel().initramfs().unpack().unwrap();
    assert!(embedded.exists("/bin/hello"));

    // And the workload boots + runs without any disk.
    let result = launch::simulate_job(&products.jobs[0], &Default::default())
        .unwrap()
        .result;
    assert!(result.serial.contains("switching root to initramfs"));
    assert!(result.serial.contains("Hello from FireMarshal!"));
    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn disk_and_diskless_run_identically_after_cleaning() {
    let root = common::tmpdir("fig3-consistency");
    let mut builder = common::builder_in(&root);
    let with_disk = builder
        .build("hello.json", &BuildOptions::default())
        .unwrap();
    let disk_run = launch::simulate_job(&with_disk.jobs[0], &Default::default())
        .unwrap()
        .result;
    let diskless = builder
        .build(
            "hello.json",
            &BuildOptions {
                no_disk: true,
                ..Default::default()
            },
        )
        .unwrap();
    let diskless_run = launch::simulate_job(&diskless.jobs[0], &Default::default())
        .unwrap()
        .result;
    // The payload behaves identically; only root-mount lines differ.
    let clean = marshal_core::clean_output;
    let stable = |log: &str| -> Vec<String> {
        clean(log)
            .into_iter()
            .filter(|l| !l.contains("root") && !l.contains("initramfs"))
            .collect()
    };
    assert_eq!(stable(&disk_run.serial), stable(&diskless_run.serial));
    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn incremental_rebuild_reuses_artifacts() {
    // §III-B: "FireMarshal uses a dependency tracking system (similar to
    // GNU make) to avoid unnecessary rebuilding."
    let root = common::tmpdir("fig3-incremental");
    let mut builder = common::builder_in(&root);

    let first = builder
        .build("coremark.json", &BuildOptions::default())
        .unwrap();
    assert!(first.report.executed.len() >= 3);

    // No-op rebuild: everything skipped.
    let second = builder
        .build("coremark.json", &BuildOptions::default())
        .unwrap();
    assert!(
        second.report.executed.is_empty(),
        "{:?}",
        second.report.executed
    );
    assert_eq!(second.report.skipped.len(), first.report.total());

    // A comment-only source change leaves the assembled binary identical,
    // so the content-addressed build stays clean (host-init re-runs as a
    // hook, but produces the same bytes).
    let src = root.join("workloads/coremark/src/coremark.s");
    let text = std::fs::read_to_string(&src).unwrap();
    std::fs::write(&src, format!("{text}\n# a comment\n")).unwrap();
    let third = builder
        .build("coremark.json", &BuildOptions::default())
        .unwrap();
    assert!(
        third.report.executed.is_empty(),
        "{:?}",
        third.report.executed
    );

    // A real code change alters the binary: the image chain rebuilds, but
    // the kernel/boot tasks (whose inputs didn't change) are still skipped.
    std::fs::write(&src, text.replace("li      s4, 40", "li      s4, 41")).unwrap();
    let fourth = builder
        .build("coremark.json", &BuildOptions::default())
        .unwrap();
    assert!(
        fourth.report.ran("img:br-base/coremark"),
        "{:?}",
        fourth.report.executed
    );
    assert!(!fourth.report.ran("img:br-base"), "base image untouched");
    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn artifacts_are_byte_identical_across_builds() {
    // Reproducibility: independent builders in different directories
    // produce byte-identical boot binaries and images.
    let root_a = common::tmpdir("fig3-reproA");
    let root_b = common::tmpdir("fig3-reproB");
    let mut a = common::builder_in(&root_a);
    let mut b = common::builder_in(&root_b);
    let pa = a.build("hello.json", &BuildOptions::default()).unwrap();
    let pb = b.build("hello.json", &BuildOptions::default()).unwrap();
    let JobKind::Linux {
        boot_path: ba,
        disk_path: da,
    } = &pa.jobs[0].kind
    else {
        panic!()
    };
    let JobKind::Linux {
        boot_path: bb,
        disk_path: db,
    } = &pb.jobs[0].kind
    else {
        panic!()
    };
    assert_eq!(std::fs::read(ba).unwrap(), std::fs::read(bb).unwrap());
    assert_eq!(
        std::fs::read(da.as_ref().unwrap()).unwrap(),
        std::fs::read(db.as_ref().unwrap()).unwrap()
    );
    std::fs::remove_dir_all(root_a).unwrap();
    std::fs::remove_dir_all(root_b).unwrap();
}
