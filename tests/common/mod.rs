//! Shared helpers for the integration tests.

use std::path::PathBuf;

/// Creates (and clears) a unique scratch directory for one test.
#[allow(dead_code)]
pub fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("firemarshal-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create scratch dir");
    d
}

/// Builds a ready-to-use Builder over the bundled workloads.
#[allow(dead_code)]
pub fn builder_in(root: &std::path::Path) -> marshal_core::Builder {
    let setup = marshal_workloads::setup(root).expect("materialise workloads");
    marshal_core::Builder::new(setup.board, setup.search, root.join("work"))
        .expect("create builder")
}

/// Spawns a `marshal serve --exec` daemon rooted at `root`: its own
/// workload sources, its own workdir, real TCP on an ephemeral port.
/// Returns the daemon address plus a handle/join pair for shutdown.
#[allow(dead_code)]
pub fn spawn_exec_server(
    root: &std::path::Path,
) -> (
    String,
    marshal_netstore::ServerHandle,
    std::thread::JoinHandle<marshal_netstore::ServeSummary>,
) {
    let setup = marshal_workloads::setup(root).expect("materialise workloads");
    let work = root.join("work");
    let handler = marshal_core::serve_exec_handler(setup.board, setup.search, &work)
        .expect("daemon exec handler");
    let mut server =
        marshal_netstore::Server::bind("127.0.0.1:0", &work, std::time::Duration::from_secs(5))
            .expect("bind");
    server.set_exec_handler(handler);
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = server.handle().expect("handle");
    let join = std::thread::spawn(move || server.run());
    (addr, handle, join)
}
