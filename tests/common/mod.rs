//! Shared helpers for the integration tests.

use std::path::PathBuf;

/// Creates (and clears) a unique scratch directory for one test.
#[allow(dead_code)]
pub fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("firemarshal-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create scratch dir");
    d
}

/// Builds a ready-to-use Builder over the bundled workloads.
#[allow(dead_code)]
pub fn builder_in(root: &std::path::Path) -> marshal_core::Builder {
    let setup = marshal_workloads::setup(root).expect("materialise workloads");
    marshal_core::Builder::new(setup.board, setup.search, root.join("work"))
        .expect("create builder")
}
