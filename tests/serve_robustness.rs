//! Integration tests for resilient artifact distribution: `marshal serve`
//! over real TCP, the fetch-before-build client, retry/backoff and
//! circuit-breaker degradation, wire-level chaos per [`NetFaultKind`], a
//! lying server, pool scrub self-healing, and the corrupt-pool /
//! torn-manifest recovery paths a distribution layer must survive.

mod common;

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use marshal_core::cli::{self, CliArgs, Command};
use marshal_core::faultinject::Injector;
use marshal_core::{scrub_pool, BuildOptions, ImageStore, JobKind};
use marshal_depgraph::Fingerprint;
use marshal_image::{manifest_refs, sniff_manifest};
use marshal_netstore::server::ServeRoot;
use marshal_netstore::{
    decode_frame, encode_frame, FaultPlan, FaultTransport, LoopbackTransport, Message, NetError,
    NetFaultKind, RemoteStore, RetryPolicy, Server, Transport,
};

/// Starts a daemon exporting `workdir` on an ephemeral local port, and
/// returns the address plus a handle/join pair for shutdown.
fn spawn_server(
    workdir: &Path,
) -> (
    String,
    marshal_netstore::ServerHandle,
    std::thread::JoinHandle<marshal_netstore::ServeSummary>,
) {
    let server = Server::bind("127.0.0.1:0", workdir, Duration::from_secs(5)).expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = server.handle().expect("handle");
    let join = std::thread::spawn(move || server.run());
    (addr, handle, join)
}

/// Every MMAN manifest under `levels/` with its blob references.
fn level_manifests(work: &Path) -> Vec<(PathBuf, Vec<Fingerprint>)> {
    let store = ImageStore::new(work);
    let mut out = Vec::new();
    for entry in std::fs::read_dir(store.levels_dir()).expect("levels dir") {
        let path = entry.expect("dir entry").path();
        if !path.is_file() {
            continue;
        }
        let bytes = std::fs::read(&path).expect("read manifest");
        if sniff_manifest(&bytes) {
            out.push((path, manifest_refs(&bytes).expect("parse manifest")));
        }
    }
    out
}

fn rootfs_of(products: &marshal_core::BuildProducts, name_contains: &str) -> PathBuf {
    products
        .jobs
        .iter()
        .find_map(|j| match &j.kind {
            JobKind::Linux {
                disk_path: Some(p), ..
            } if j.name.contains(name_contains) => Some(p.clone()),
            _ => None,
        })
        .expect("linux job with a disk image")
}

/// A second workdir cold-populates every level over real TCP: zero local
/// level builds, bit-identical artifacts, and a drained daemon afterwards.
#[test]
fn cold_populate_over_tcp_builds_no_levels_locally() {
    let root_a = common::tmpdir("srv-cold-a");
    let mut a = common::builder_in(&root_a);
    let products_a = a.build("hello.json", &BuildOptions::default()).unwrap();
    drop(a);

    let (addr, handle, join) = spawn_server(&root_a.join("work"));

    let root_b = common::tmpdir("srv-cold-b");
    let mut b = common::builder_in(&root_b);
    let products_b = b
        .build(
            "hello.json",
            &BuildOptions {
                remote: Some(addr),
                ..BuildOptions::default()
            },
        )
        .unwrap();

    let summary = products_b.remote.expect("remote summary");
    assert!(
        summary.levels_fetched >= 1,
        "levels came from the daemon: {summary:?}"
    );
    assert_eq!(
        summary.levels_built_locally, 0,
        "a cold populate builds no levels locally: {summary:?}"
    );
    assert!(summary.blobs_fetched >= 1 && summary.bytes_fetched > 0);
    assert!(!summary.degraded);
    assert_eq!(summary.blobs_quarantined, 0);

    // Distribution must not change what gets built.
    assert_eq!(
        std::fs::read(rootfs_of(&products_a, "hello")).unwrap(),
        std::fs::read(rootfs_of(&products_b, "hello")).unwrap(),
        "fetched and locally-built root filesystems are bit-identical"
    );

    handle.shutdown();
    let serve = join.join().expect("server thread");
    assert!(serve.connections >= 1, "daemon saw the client: {serve:?}");
    assert!(serve.requests > 0);
    assert_eq!(serve.bad_frames, 0);

    let _ = std::fs::remove_dir_all(root_a);
    let _ = std::fs::remove_dir_all(root_b);
}

/// A dead daemon (connection refused) degrades the build to local-only:
/// the build still succeeds, the breaker trips once, and the CLI exits 0
/// with a warning rather than hanging or hard-failing.
#[test]
fn dead_daemon_degrades_to_local_build() {
    // Grab a port that is guaranteed closed by binding and dropping it.
    let dead_addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };

    let root = common::tmpdir("srv-dead");
    let mut b = common::builder_in(&root);
    let products = b
        .build(
            "hello.json",
            &BuildOptions {
                remote: Some(dead_addr.clone()),
                ..BuildOptions::default()
            },
        )
        .unwrap();
    let summary = products.remote.expect("remote summary");
    assert!(summary.degraded, "breaker tripped: {summary:?}");
    assert_eq!(summary.levels_fetched, 0);
    assert!(
        summary.levels_built_locally >= 1,
        "every level built locally: {summary:?}"
    );
    assert!(summary.retries >= 1, "the client did retry: {summary:?}");
    assert!(
        products
            .warnings
            .iter()
            .any(|w| w.to_string().contains("local-only")),
        "degradation surfaces as a structured warning: {:?}",
        products.warnings
    );

    // Same story through the CLI: exit 0, warning in the log.
    let root2 = common::tmpdir("srv-dead-cli");
    let setup = marshal_workloads::setup(&root2).unwrap();
    let args = CliArgs {
        search_dirs: vec![],
        workdir: root2.join("work").to_string_lossy().into_owned(),
        verbose: false,
        command: Command::Build {
            workload: "hello.json".to_owned(),
            no_disk: false,
            force: false,
            keep_going: false,
            jobs: None,
            remote: Some(dead_addr),
            runners: None,
            dry_run: false,
            progress: false,
        },
    };
    let (code, log) = cli::run_command(&args, setup.board, setup.search);
    assert_eq!(code, 0, "degraded build exits 0: {log:?}");
    assert!(
        log.iter().any(|l| l.contains("degraded to local-only")),
        "CLI reports the degradation: {log:?}"
    );

    let _ = std::fs::remove_dir_all(root);
    let _ = std::fs::remove_dir_all(root2);
}

/// Builds a RemoteStore whose every connection runs through a
/// [`FaultTransport`] sharing `plan`, answering from `root` in process.
fn chaos_client(root: Arc<ServeRoot>, plan: FaultPlan, label: &str) -> RemoteStore {
    let factory: marshal_netstore::client::TransportFactory = Box::new(move || {
        Ok(Box::new(FaultTransport::new(
            LoopbackTransport::new(Arc::clone(&root)),
            plan.clone(),
        )) as Box<dyn Transport>)
    });
    RemoteStore::with_factory(label, factory, RetryPolicy::fast())
}

/// Chaos sweep: for every wire fault kind, a bounded burst of faults is
/// absorbed by retries (full fetch, no degradation), and a permanent fault
/// trips the breaker and degrades gracefully — in both cases the build
/// succeeds and the pool stays scrub-clean.
#[test]
fn every_net_fault_kind_retries_or_degrades() {
    let root_a = common::tmpdir("srv-chaos-a");
    let mut a = common::builder_in(&root_a);
    a.build("hello.json", &BuildOptions::default()).unwrap();
    drop(a);
    let serve_root = Arc::new(ServeRoot::new(&root_a.join("work")));

    let mut inj = Injector::new(0xc4a0);
    for kind in NetFaultKind::ALL {
        // --- bounded burst: retries absorb it ----------------------------
        let plan = inj.net_plan(kind, 1, 2);
        let root_b = common::tmpdir(&format!("srv-chaos-burst-{kind:?}"));
        let mut b = common::builder_in(&root_b);
        b.set_remote_client(Arc::new(chaos_client(
            Arc::clone(&serve_root),
            plan.clone(),
            &format!("chaos-burst-{kind:?}"),
        )));
        let products = b.build("hello.json", &BuildOptions::default()).unwrap();
        let summary = products.remote.expect("remote summary");
        assert!(plan.injected() >= 1, "{kind:?}: the plan actually fired");
        assert!(
            summary.levels_fetched >= 1 && summary.levels_built_locally == 0,
            "{kind:?}: bounded faults are retried through: {summary:?}"
        );
        assert!(summary.retries >= 1, "{kind:?}: retries happened");
        assert!(!summary.degraded, "{kind:?}: breaker stays closed");
        let scrub = scrub_pool(&root_b.join("work"), None).unwrap();
        assert_eq!(scrub.corrupt, 0, "{kind:?}: pool is clean after chaos");
        let _ = std::fs::remove_dir_all(root_b);

        // --- permanent fault: breaker opens, build degrades --------------
        let plan = FaultPlan::always(kind, 0x5eed);
        let root_c = common::tmpdir(&format!("srv-chaos-always-{kind:?}"));
        let mut c = common::builder_in(&root_c);
        c.set_remote_client(Arc::new(chaos_client(
            Arc::clone(&serve_root),
            plan,
            &format!("chaos-always-{kind:?}"),
        )));
        let products = c.build("hello.json", &BuildOptions::default()).unwrap();
        let summary = products.remote.expect("remote summary");
        assert!(summary.degraded, "{kind:?}: breaker tripped: {summary:?}");
        assert_eq!(summary.levels_fetched, 0, "{kind:?}");
        assert!(summary.levels_built_locally >= 1, "{kind:?}");
        let scrub = scrub_pool(&root_c.join("work"), None).unwrap();
        assert_eq!(scrub.corrupt, 0, "{kind:?}: nothing corrupt installed");
        let _ = std::fs::remove_dir_all(root_c);
    }
    let _ = std::fs::remove_dir_all(root_a);
}

/// A transport whose replies carry blobs with flipped payload bytes inside
/// perfectly valid frames — a lying (or silently rotting) server that only
/// end-to-end hash verification can catch.
struct LyingTransport {
    inner: LoopbackTransport,
}

impl Transport for LyingTransport {
    fn exchange(&mut self, frame: &[u8]) -> Result<Vec<u8>, NetError> {
        let reply = self.inner.exchange(frame)?;
        if let Ok(Message::Blobs { mut entries }) = decode_frame(&reply) {
            for (_, payload) in &mut entries {
                if let Some(first) = payload.as_mut().and_then(|b| b.first_mut()) {
                    *first ^= 0xFF;
                }
            }
            return Ok(encode_frame(&Message::Blobs { entries }));
        }
        Ok(reply)
    }
}

/// Corrupt blob payloads inside valid frames are quarantined, re-fetched
/// exactly once, and never installed into the pool; the build falls back
/// to local and still succeeds.
#[test]
fn lying_server_blobs_quarantined_never_installed() {
    let root_a = common::tmpdir("srv-liar-a");
    let mut a = common::builder_in(&root_a);
    a.build("hello.json", &BuildOptions::default()).unwrap();
    drop(a);
    let serve_root = Arc::new(ServeRoot::new(&root_a.join("work")));

    let factory: marshal_netstore::client::TransportFactory = Box::new(move || {
        Ok(Box::new(LyingTransport {
            inner: LoopbackTransport::new(Arc::clone(&serve_root)),
        }) as Box<dyn Transport>)
    });
    let client = RemoteStore::with_factory("liar", factory, RetryPolicy::fast());

    let root_b = common::tmpdir("srv-liar-b");
    let mut b = common::builder_in(&root_b);
    b.set_remote_client(Arc::new(client));
    let products = b.build("hello.json", &BuildOptions::default()).unwrap();

    let summary = products.remote.expect("remote summary");
    assert!(
        summary.blobs_quarantined >= 1,
        "lying payloads were caught: {summary:?}"
    );
    assert!(
        summary.levels_built_locally >= 1,
        "the build fell back to local levels: {summary:?}"
    );

    let work_b = root_b.join("work");
    let store = ImageStore::new(&work_b);
    let qdir = store.blobs().quarantine_dir();
    let received: Vec<_> = std::fs::read_dir(&qdir)
        .expect("quarantine dir")
        .filter_map(Result::ok)
        .filter(|e| e.file_name().to_string_lossy().ends_with(".recv.blob"))
        .collect();
    assert!(
        !received.is_empty(),
        "received corrupt bytes kept as evidence in {}",
        qdir.display()
    );

    // Nothing corrupt ever entered objects/ itself.
    let scrub = scrub_pool(&work_b, None).unwrap();
    assert_eq!(scrub.corrupt, 0);
    assert_eq!(scrub.unrecoverable, 0);

    let _ = std::fs::remove_dir_all(root_a);
    let _ = std::fs::remove_dir_all(root_b);
}

/// `scrub` detects injected pool corruption, quarantines the bytes, heals
/// live blobs from a daemon over real TCP, and leaves the workdir fully
/// up to date.
#[test]
fn scrub_detects_and_heals_from_remote() {
    let root_a = common::tmpdir("srv-scrub-a");
    let mut a = common::builder_in(&root_a);
    a.build("hello.json", &BuildOptions::default()).unwrap();
    drop(a);

    let root_b = common::tmpdir("srv-scrub-b");
    let mut b = common::builder_in(&root_b);
    b.build("hello.json", &BuildOptions::default()).unwrap();

    // Rot one live blob in B's pool.
    let work_b = root_b.join("work");
    let manifests = level_manifests(&work_b);
    let fp = manifests
        .first()
        .and_then(|(_, refs)| refs.first().copied())
        .expect("a live blob to corrupt");
    let store = ImageStore::new(&work_b);
    std::fs::write(store.blobs().blob_path(fp), b"bit rot, silent and slow").unwrap();

    let (addr, handle, join) = spawn_server(&root_a.join("work"));
    let client = RemoteStore::tcp(&addr, RetryPolicy::fast());
    let report = scrub_pool(&work_b, Some(&client)).unwrap();
    assert_eq!(report.corrupt, 1, "the injected rot was found: {report:?}");
    assert!(report.quarantined_bytes > 0, "quarantined bytes reported");
    assert_eq!(report.healed, 1, "healed over TCP: {report:?}");
    assert_eq!(report.unrecoverable, 0);
    assert_eq!(report.manifests_removed, 0, "no manifest had to die");

    // The healed pool is genuinely whole: a rebuild has nothing to do.
    let products = b.build("hello.json", &BuildOptions::default()).unwrap();
    assert!(
        products.report.executed.is_empty(),
        "nothing rebuilds after a heal: {:?}",
        products.report.executed
    );

    // CLI scrub on the now-clean pool: exit 0 and a summary line.
    let setup = marshal_workloads::setup(&root_b).unwrap();
    let args = CliArgs {
        search_dirs: vec![],
        workdir: work_b.to_string_lossy().into_owned(),
        verbose: false,
        command: Command::Scrub { remote: None },
    };
    let (code, log) = cli::run_command(&args, setup.board, setup.search);
    assert_eq!(code, 0, "clean pool scrubs clean: {log:?}");
    assert!(log.iter().any(|l| l.contains("scrubbed pool")), "{log:?}");

    handle.shutdown();
    join.join().expect("server thread");
    let _ = std::fs::remove_dir_all(root_a);
    let _ = std::fs::remove_dir_all(root_b);
}

/// Satellite: a torn (half-written) level manifest is detected on the next
/// build's preflight and the level rebuilds — no panic, no wedged workdir.
#[test]
fn torn_manifest_triggers_level_rebuild_not_panic() {
    let root = common::tmpdir("srv-torn");
    let mut b = common::builder_in(&root);
    b.build("hello.json", &BuildOptions::default()).unwrap();

    let work = root.join("work");
    let (path, _) = level_manifests(&work)
        .into_iter()
        .find(|(p, _)| {
            // A chain-level manifest, not the final job image's
            // (`job:<name>-…`): the satellite is about *level* rebuilds.
            !p.file_name()
                .map(|n| n.to_string_lossy().starts_with("job:"))
                .unwrap_or(false)
        })
        .expect("a chain-level manifest to tear");
    let mut inj = Injector::new(0x70c4);
    inj.tear_image_write(&path).unwrap();

    let products = b.build("hello.json", &BuildOptions::default()).unwrap();
    assert!(
        products
            .warnings
            .iter()
            .any(|w| w.to_string().contains("torn")),
        "preflight reports the torn manifest: {:?}",
        products.warnings
    );
    assert!(
        products
            .report
            .executed
            .iter()
            .any(|t| t.starts_with("img:")),
        "the owning level re-ran: {:?}",
        products.report.executed
    );
    // And the workdir is whole again.
    let scrub = scrub_pool(&work, None).unwrap();
    assert_eq!(scrub.corrupt, 0);
    assert_eq!(scrub.manifests_removed, 0);
    let _ = std::fs::remove_dir_all(root);
}

/// Satellite: a corrupt pool blob under `--keep-going` poisons only the
/// affected job's cone — the bad blob is quarantined, the independent job
/// completes, and the next ordinary build self-heals by rebuilding the
/// affected levels.
#[test]
fn corrupt_pool_poisons_only_affected_cone_under_keep_going() {
    let root = common::tmpdir("srv-cone");
    let mut b = common::builder_in(&root);
    let products = b
        .build("latency-microbenchmark.json", &BuildOptions::default())
        .unwrap();
    let client_rootfs = rootfs_of(&products, "client");

    // Rot a blob every chain manifest references (base-image content
    // survives the whole inheritance chain), and drop the client's flat
    // rootfs so its image task re-runs and actually loads the chain.
    let work = root.join("work");
    let manifests = level_manifests(&work);
    let shared: BTreeSet<Fingerprint> = manifests
        .iter()
        .map(|(_, refs)| refs.iter().copied().collect::<BTreeSet<_>>())
        .reduce(|a, b| a.intersection(&b).copied().collect())
        .expect("manifests exist");
    let fp = *shared.iter().next().expect("a blob shared by every level");
    let store = ImageStore::new(&work);
    std::fs::write(store.blobs().blob_path(fp), b"rotted shared blob").unwrap();
    std::fs::remove_file(&client_rootfs).unwrap();

    let products = b
        .build(
            "latency-microbenchmark.json",
            &BuildOptions {
                keep_going: true,
                ..BuildOptions::default()
            },
        )
        .unwrap();
    let report = &products.report;
    assert_eq!(
        report.failed.len(),
        1,
        "exactly the loading task fails: {:?}",
        report.failed
    );
    assert!(
        report.failed[0].0.contains("client"),
        "the client's image task failed: {:?}",
        report.failed
    );
    assert!(
        report.poisoned.iter().all(|t| t.contains("client")),
        "only the client's cone is poisoned: {:?}",
        report.poisoned
    );
    assert!(
        !report
            .failed
            .iter()
            .map(|(t, _)| t)
            .chain(report.poisoned.iter())
            .any(|t| t.contains("server")),
        "the independent server job is untouched"
    );
    assert!(
        store.blobs().quarantine_dir().is_dir(),
        "the rotted blob was quarantined"
    );

    // An ordinary follow-up build rebuilds the affected levels and fully
    // recovers — preflight removes manifests left pointing at the
    // quarantined blob before any task runs.
    let products = b
        .build("latency-microbenchmark.json", &BuildOptions::default())
        .unwrap();
    assert!(products.report.failed.is_empty() && products.report.poisoned.is_empty());
    assert!(
        products
            .warnings
            .iter()
            .any(|w| w.to_string().contains("missing from the pool")),
        "preflight explains the rebuild: {:?}",
        products.warnings
    );
    assert!(client_rootfs.exists(), "the client artifact is back");
    let scrub = scrub_pool(&work, None).unwrap();
    assert_eq!(scrub.corrupt, 0, "the pool is whole again");
    let _ = std::fs::remove_dir_all(root);
}

/// The daemon survives hostile bytes: a malformed frame closes that one
/// connection, is counted, and well-behaved clients keep being served.
#[test]
fn malformed_frames_rejected_without_harming_daemon() {
    let root = common::tmpdir("srv-mal");
    let mut a = common::builder_in(&root);
    a.build("hello.json", &BuildOptions::default()).unwrap();
    drop(a);

    let (addr, handle, join) = spawn_server(&root.join("work"));

    // Garbage first: not even a frame header.
    {
        use std::io::Write;
        let mut s = std::net::TcpStream::connect(&addr).unwrap();
        s.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        // Server closes on us; nothing to read back reliably.
    }

    // A well-formed client afterwards is served normally.
    let client = RemoteStore::tcp(&addr, RetryPolicy::fast());
    let root_b = common::tmpdir("srv-mal-b");
    let mut b = common::builder_in(&root_b);
    b.set_remote_client(Arc::new(client));
    let products = b.build("hello.json", &BuildOptions::default()).unwrap();
    let summary = products.remote.expect("remote summary");
    assert!(
        summary.levels_fetched >= 1,
        "daemon still serves: {summary:?}"
    );

    handle.shutdown();
    let serve = join.join().expect("server thread");
    assert!(
        serve.bad_frames >= 1,
        "the bad frame was counted: {serve:?}"
    );
    assert!(serve.requests > 0);
    let _ = std::fs::remove_dir_all(root);
    let _ = std::fs::remove_dir_all(root_b);
}
