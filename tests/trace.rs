//! Observability integration tests: journals recorded by real CLI runs,
//! torn-tail crash forensics, parallel (`-j 8`) event ordering,
//! Chrome-export golden round-trip, and the events-off guarantee that a
//! disabled recorder performs no channel sends at all.

mod common;

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use marshal_config::SearchPath;
use marshal_core::cli::{parse_args, run_command};
use marshal_core::faultinject::{FaultKind, Injector};
use marshal_core::{Board, BuildOptions, Builder};
use marshal_trace::{
    chrome_trace, list_runs, read_journal, Args, Json, Record, RecordKind, Recorder,
};

fn run(root: &Path, words: &[&str]) -> (i32, Vec<String>) {
    let mut argv: Vec<String> = vec![
        "--workdir".to_owned(),
        root.join("work").to_string_lossy().into_owned(),
    ];
    argv.extend(words.iter().map(|s| (*s).to_owned()));
    let parsed = parse_args(&argv).expect("parse");
    let setup = marshal_workloads::setup(root).expect("setup");
    run_command(&parsed, setup.board, setup.search)
}

/// A depth-8 inheritance chain fanning out to 8 parallel jobs: enough
/// depth for meaningful span attribution and enough width to keep a
/// `-j 8` pool busy.
fn deep_search() -> SearchPath {
    let mut search = SearchPath::new();
    search.add_builtin(
        "d0.json",
        r#"{"name":"d0","distro":"buildroot","files":[]}"#,
    );
    for i in 1..7 {
        search.add_builtin(
            format!("d{i}.json"),
            format!(
                r#"{{"name":"d{i}","base":"d{}.json","command":"echo {i}"}}"#,
                i - 1
            ),
        );
    }
    let jobs: Vec<String> = (0..8)
        .map(|j| format!(r#"{{"name":"leaf{j}","command":"echo leaf {j}"}}"#))
        .collect();
    search.add_builtin(
        "deep.json",
        format!(
            r#"{{"name":"deep","base":"d6.json","jobs":[{}]}}"#,
            jobs.join(",")
        ),
    );
    search
}

#[test]
fn cli_build_records_journal_and_trace_inspects_it() {
    let root = common::tmpdir("trace-cli");
    let (code, log) = run(&root, &["build", "hello.json"]);
    assert_eq!(code, 0, "{log:?}");
    let journal_line = log
        .iter()
        .find(|l| l.starts_with("run journal: "))
        .expect("build reports its run journal");
    assert!(journal_line.contains("marshal trace"), "{journal_line}");

    // Listing shows the run; --last --summary attributes its time.
    let (code, log) = run(&root, &["trace"]);
    assert_eq!(code, 0, "{log:?}");
    assert!(log.iter().any(|l| l.contains("build")), "{log:?}");
    let (code, log) = run(&root, &["trace", "--last", "--summary"]);
    assert_eq!(code, 0, "{log:?}");
    assert!(log[0].contains("span coverage"), "{log:?}");
    assert!(log[0].contains("build hello.json"), "{log:?}");
    assert!(log.iter().any(|l| l.contains("task ")), "{log:?}");

    // The Chrome export is valid JSON with a traceEvents array.
    let (code, log) = run(&root, &["trace", "--last", "--export", "chrome"]);
    assert_eq!(code, 0, "{log:?}");
    let doc = Json::parse(&log[0]).expect("chrome export parses");
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        panic!("no traceEvents: {}", log[0]);
    };
    assert!(events.len() > 2, "metadata + real events");
    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn parallel_j8_journal_is_ordered_and_nested() {
    let root = common::tmpdir("trace-j8");
    let work = root.join("work");
    let mut builder = Builder::new(Board::minimal("t"), deep_search(), &work).unwrap();
    let rec = Recorder::create(&work, "build", &[("workload", "deep.json")]).unwrap();
    builder.set_recorder(rec.clone());
    let opts = BuildOptions {
        jobs: Some(8),
        ..BuildOptions::default()
    };
    let products = builder.build("deep.json", &opts).unwrap();
    assert!(products.report.success());
    assert_eq!(products.jobs.len(), 8);
    let finished = rec.finish().expect("journal written");
    let journal = read_journal(&finished.journal).unwrap();
    assert!(!journal.torn, "{:?}", journal.torn_detail);

    // Sequence numbers are strictly increasing with no gaps (the writer
    // thread serialises all eight workers onto one channel).
    for (i, r) in journal.records.iter().enumerate() {
        assert_eq!(r.seq, i as u64, "dense, ordered sequence");
    }
    // Monotonic timestamps: the single writer assigns them at send time.
    for pair in journal.records.windows(2) {
        assert!(pair[1].t_us >= pair[0].t_us, "timestamps never step back");
    }

    // Every span closes exactly once, ends on the thread that opened it,
    // and per-thread spans nest LIFO — interleaving corruption across the
    // eight workers would break one of these.
    let mut open: HashMap<u64, u64> = HashMap::new(); // span id -> tid
    let mut stacks: HashMap<u64, Vec<u64>> = HashMap::new(); // tid -> open ids
    let mut task_spans = 0usize;
    for r in &journal.records {
        match &r.kind {
            RecordKind::SpanStart {
                id, name, parent, ..
            } => {
                assert!(open.insert(*id, r.tid).is_none(), "span {id} reopened");
                if let Some(p) = parent {
                    assert!(*p < *id, "parent {p} must predate child {id}");
                }
                stacks.entry(r.tid).or_default().push(*id);
                if name == "task" {
                    task_spans += 1;
                }
            }
            RecordKind::SpanEnd { id, .. } => {
                let opened_on = open
                    .remove(id)
                    .unwrap_or_else(|| panic!("span {id} never opened"));
                assert_eq!(opened_on, r.tid, "span {id} ended on a different thread");
                let stack = stacks.get_mut(&r.tid).unwrap();
                assert_eq!(stack.pop(), Some(*id), "span {id} ended out of LIFO order");
            }
            _ => {}
        }
    }
    assert!(open.is_empty(), "unclosed spans: {open:?}");
    assert_eq!(
        task_spans,
        products.report.executed.len(),
        "one task span per executed task"
    );

    // ≥95% of wall time attributed to named spans (acceptance criterion):
    // the top-level build span brackets the whole execution.
    let summary = marshal_trace::summarize(&journal);
    assert!(
        summary.coverage_pct >= 95.0,
        "span coverage {:.1}% < 95%",
        summary.coverage_pct
    );
    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn torn_journal_reconstructs_what_completed() {
    let root = common::tmpdir("trace-torn");
    let (code, log) = run(&root, &["build", "hello.json"]);
    assert_eq!(code, 0, "{log:?}");
    let runs = list_runs(&root.join("work"));
    assert_eq!(runs.len(), 1);
    let intact = read_journal(&runs[0].journal).unwrap();
    assert!(!intact.torn);

    // A crash mid-append leaves a torn final line: inject exactly that.
    let mut injector = Injector::new(7);
    injector
        .corrupt_file(&runs[0].journal, FaultKind::TornWrite)
        .unwrap();
    let torn = read_journal(&runs[0].journal).unwrap();
    assert!(torn.torn, "torn tail must be detected");
    assert!(
        torn.records.len() < intact.records.len(),
        "the damaged tail is discarded"
    );
    assert!(!torn.records.is_empty(), "the verified prefix survives");

    // `marshal trace --last` still reconstructs the completed prefix.
    let (code, log) = run(&root, &["trace", "--last", "--summary"]);
    assert_eq!(code, 0, "{log:?}");
    assert!(log[0].contains("TORN (crashed run)"), "{log:?}");
    assert!(
        log.iter().any(|l| l.contains("journal tail torn")),
        "{log:?}"
    );
    std::fs::remove_dir_all(root).unwrap();
}

/// A synthetic journal with fixed timestamps, so the Chrome export is
/// byte-stable across machines and runs.
fn golden_journal(dir: &Path) -> PathBuf {
    let args = |pairs: &[(&str, &str)]| -> Args {
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect()
    };
    let records = [
        Record {
            seq: 0,
            t_us: 0,
            tid: 1,
            kind: RecordKind::Run {
                name: "build".into(),
                args: args(&[("run_id", "r0000000000042-7-0"), ("workload", "demo.json")]),
            },
        },
        Record {
            seq: 1,
            t_us: 5,
            tid: 1,
            kind: RecordKind::SpanStart {
                id: 1,
                parent: None,
                name: "build".into(),
                args: args(&[("workload", "demo.json"), ("threads", "2")]),
            },
        },
        Record {
            seq: 2,
            t_us: 10,
            tid: 2,
            kind: RecordKind::SpanStart {
                id: 2,
                parent: None,
                name: "task".into(),
                args: args(&[("task", "img:demo/0")]),
            },
        },
        Record {
            seq: 3,
            t_us: 20,
            tid: 2,
            kind: RecordKind::Instant {
                name: "cache".into(),
                args: args(&[("level", "demo/0"), ("hit", "false")]),
            },
        },
        Record {
            seq: 4,
            t_us: 30,
            tid: 1,
            kind: RecordKind::Counter {
                name: "busy_workers".into(),
                value: 1,
            },
        },
        Record {
            seq: 5,
            t_us: 80,
            tid: 2,
            kind: RecordKind::SpanEnd {
                id: 2,
                args: args(&[("outcome", "executed")]),
            },
        },
        Record {
            seq: 6,
            t_us: 90,
            tid: 1,
            kind: RecordKind::SpanEnd {
                id: 1,
                args: args(&[("outcome", "ok")]),
            },
        },
    ];
    let path = dir.join("journal.jsonl");
    let text: String = records.iter().map(|r| r.encode() + "\n").collect();
    std::fs::write(&path, text).unwrap();
    path
}

#[test]
fn chrome_export_matches_golden_file() {
    let root = common::tmpdir("trace-golden");
    let journal_path = golden_journal(&root);
    let journal = read_journal(&journal_path).unwrap();
    assert!(!journal.torn, "{:?}", journal.torn_detail);
    let exported = chrome_trace(&journal);
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("chrome_trace.json");
    if std::env::var_os("MARSHAL_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_path.parent().unwrap()).unwrap();
        std::fs::write(&golden_path, exported.trim().to_owned() + "\n").unwrap();
    }
    let golden = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", golden_path.display()));
    assert_eq!(
        exported.trim(),
        golden.trim(),
        "Chrome export drifted from the golden file; if the change is \
         intentional, regenerate tests/golden/chrome_trace.json"
    );
    // Round-trip: the export re-parses and keeps every event.
    let doc = Json::parse(&exported).unwrap();
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        panic!("traceEvents missing");
    };
    // process_name metadata + 2 spans + 1 instant + 1 counter.
    assert_eq!(events.len(), 5);
    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn disabled_recorder_sends_nothing_on_a_full_build() {
    let root = common::tmpdir("trace-off");
    let work = root.join("work");
    let mut builder = Builder::new(Board::minimal("t"), deep_search(), &work).unwrap();
    // No set_recorder call: the default is disabled.
    assert!(!builder.recorder().enabled());
    let products = builder
        .build("deep.json", &BuildOptions::default())
        .unwrap();
    assert!(products.report.success());
    assert_eq!(
        builder.recorder().events_sent(),
        0,
        "disabled recorder must never touch the channel"
    );
    assert!(
        list_runs(&work).is_empty(),
        "no journal directory appears when tracing is off"
    );
    std::fs::remove_dir_all(root).unwrap();
}
