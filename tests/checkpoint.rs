//! Boot-checkpoint integration tests: a restored launch must be
//! bit-identical to a cold boot across every backend, survive `-j 8`
//! test fleets and `marshal cosim`, and a corrupt or torn checkpoint must
//! degrade to a cold boot (with a structured warning) — never a wrong
//! answer.

mod common;

use std::collections::BTreeMap;
use std::path::Path;

use marshal_core::cosim::{self, CosimOptions};
use marshal_core::launch::{self, LaunchOptions, LaunchOutput};
use marshal_core::test::{test_workload, TestOutcome};
use marshal_core::{clean_output, BuildOptions, CheckpointStore};

fn opts(sim: &str, no_checkpoint: bool) -> LaunchOptions {
    LaunchOptions {
        sim: Some(sim.to_owned()),
        no_checkpoint,
        ..LaunchOptions::default()
    }
}

fn ckpt_files(workdir: &Path) -> Vec<std::path::PathBuf> {
    let dir = workdir.join("checkpoints");
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return Vec::new();
    };
    let mut files: Vec<_> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "ckpt"))
        .collect();
    files.sort();
    files
}

/// Reads every collected output file under the job dir (uartlog included)
/// into a path→bytes map, so two launches can be compared byte-for-byte.
fn output_files(out: &LaunchOutput) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &Path, dir: &Path, into: &mut BTreeMap<String, Vec<u8>>) {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        for entry in entries.filter_map(|e| e.ok()) {
            let path = entry.path();
            if path.is_dir() {
                walk(root, &path, into);
            } else {
                let rel = path.strip_prefix(root).unwrap().display().to_string();
                into.insert(rel, std::fs::read(&path).unwrap_or_default());
            }
        }
    }
    let mut map = BTreeMap::new();
    walk(&out.job_dir, &out.job_dir, &mut map);
    map
}

fn assert_identical(cold: &LaunchOutput, warm: &LaunchOutput, what: &str) {
    assert_eq!(cold.serial, warm.serial, "{what}: serial log differs");
    assert_eq!(
        clean_output(&cold.serial),
        clean_output(&warm.serial),
        "{what}: canonical uartlog differs"
    );
    assert_eq!(cold.exit_code, warm.exit_code, "{what}: exit code differs");
    assert_eq!(
        cold.instructions, warm.instructions,
        "{what}: instruction count differs"
    );
    assert_eq!(
        output_files(cold),
        output_files(warm),
        "{what}: extracted outputs differ"
    );
}

/// A restored launch is bit-identical to a cold boot on every backend:
/// same serial log, exit code, instruction count, and collected outputs.
#[test]
fn restored_launch_is_bit_identical_across_backends() {
    let root = common::tmpdir("ckpt-identical");
    let mut builder = common::builder_in(&root);
    let products = builder
        .build("hello.json", &BuildOptions::default())
        .expect("build hello");

    for sim in ["qemu", "spike", "rtl"] {
        let cold = launch::launch_workload(&builder, &products, &opts(sim, true))
            .unwrap_or_else(|e| panic!("{sim}: cold launch: {e}"));
        let before = ckpt_files(builder.workdir()).len();
        let first = launch::launch_workload(&builder, &products, &opts(sim, false))
            .unwrap_or_else(|e| panic!("{sim}: capturing launch: {e}"));
        assert!(
            ckpt_files(builder.workdir()).len() > before,
            "{sim}: first checkpointed launch wrote no snapshot"
        );
        let second = launch::launch_workload(&builder, &products, &opts(sim, false))
            .unwrap_or_else(|e| panic!("{sim}: restored launch: {e}"));

        assert_eq!(cold.jobs.len(), second.jobs.len());
        for (i, job) in cold.jobs.iter().enumerate() {
            assert_identical(job, &first.jobs[i], &format!("{sim}/{} capture", job.job));
            assert_identical(job, &second.jobs[i], &format!("{sim}/{} restore", job.job));
        }
    }
    let _ = std::fs::remove_dir_all(root);
}

/// `marshal test -j 8` passes both cold and warm: a checkpoint restore in
/// the middle of a parallel fleet still reproduces the reference outputs.
#[test]
fn test_fleet_passes_with_checkpoints_under_j8() {
    let root = common::tmpdir("ckpt-fleet");
    let mut builder = common::builder_in(&root);
    let build = BuildOptions {
        jobs: Some(8),
        ..BuildOptions::default()
    };

    for pass in ["cold", "warm"] {
        let outcomes = test_workload(&mut builder, "hello.json", &build, &opts("qemu", false))
            .expect("test hello");
        assert!(!outcomes.is_empty());
        for outcome in &outcomes {
            assert!(
                matches!(outcome, TestOutcome::Pass),
                "{pass} fleet test failed: {outcome:?}"
            );
        }
    }
    assert!(
        !ckpt_files(builder.workdir()).is_empty(),
        "warm test fleet left no checkpoint behind"
    );
    let _ = std::fs::remove_dir_all(root);
}

/// `marshal cosim` agrees cold and warm, with each backend restoring its
/// own snapshot (keyed per backend configuration).
#[test]
fn cosim_agrees_cold_and_warm() {
    let root = common::tmpdir("ckpt-cosim");
    let mut builder = common::builder_in(&root);
    let products = builder
        .build("hello.json", &BuildOptions::default())
        .expect("build hello");

    let warm_opts = CosimOptions {
        checkpoints: Some(CheckpointStore::new(builder.workdir())),
        ..CosimOptions::default()
    };
    let cold = cosim::cosim_workload(&products, &warm_opts).expect("cold cosim");
    assert!(cold.agreed(), "cold cosim diverged");
    // Both sides snapshot under distinct keys: qemu and rtl never share one.
    assert!(
        ckpt_files(builder.workdir()).len() >= 2,
        "expected one checkpoint per cosim backend"
    );
    let warm = cosim::cosim_workload(&products, &warm_opts).expect("warm cosim");
    assert!(warm.agreed(), "warm cosim diverged");
    for (c, w) in cold.jobs.iter().zip(warm.jobs.iter()) {
        assert_eq!(
            c.instructions, w.instructions,
            "{}: restored cosim retired a different instruction count",
            c.job
        );
    }
    let _ = std::fs::remove_dir_all(root);
}

/// A corrupt checkpoint is quarantined, the launch falls back to a cold
/// boot with a structured `checkpoint-corrupt` warning, the answer is
/// bit-identical, and the next launch has a fresh valid snapshot again.
#[test]
fn corrupt_checkpoint_recovers_via_cold_boot() {
    let root = common::tmpdir("ckpt-corrupt");
    let mut builder = common::builder_in(&root);
    let products = builder
        .build("hello.json", &BuildOptions::default())
        .expect("build hello");

    let cold = launch::launch_job(&builder, &products, 0, &opts("qemu", true)).expect("cold");
    launch::launch_job(&builder, &products, 0, &opts("qemu", false)).expect("capture");
    let files = ckpt_files(builder.workdir());
    assert_eq!(files.len(), 1, "expected exactly one checkpoint");

    // Flip one payload byte: the embedded checksum must catch it.
    let mut bytes = std::fs::read(&files[0]).expect("read checkpoint");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&files[0], &bytes).expect("corrupt checkpoint");

    let recovered =
        launch::launch_job(&builder, &products, 0, &opts("qemu", false)).expect("recover");
    assert_identical(&cold, &recovered, "corrupt-recovery");
    assert!(
        recovered
            .warnings
            .iter()
            .any(|w| w.code == "checkpoint-corrupt"),
        "no checkpoint-corrupt warning; got {:?}",
        recovered.warnings
    );
    let quarantine = builder.workdir().join("checkpoints").join(".quarantine");
    assert!(
        quarantine
            .read_dir()
            .map(|mut d| d.next().is_some())
            .unwrap_or(false),
        "corrupt checkpoint was not quarantined"
    );

    // The recovery launch rewrote the snapshot; the next restore is clean.
    let warm = launch::launch_job(&builder, &products, 0, &opts("qemu", false)).expect("warm");
    assert_identical(&cold, &warm, "post-recovery restore");
    assert!(
        !warm.warnings.iter().any(|w| w.code == "checkpoint-corrupt"),
        "rewritten checkpoint still flagged corrupt"
    );
    let _ = std::fs::remove_dir_all(root);
}

/// A torn (truncated) checkpoint — the crash-mid-write case — behaves like
/// corruption: quarantine, cold boot, identical answer.
#[test]
fn torn_checkpoint_recovers_via_cold_boot() {
    let root = common::tmpdir("ckpt-torn");
    let mut builder = common::builder_in(&root);
    let products = builder
        .build("hello.json", &BuildOptions::default())
        .expect("build hello");

    let cold = launch::launch_job(&builder, &products, 0, &opts("qemu", true)).expect("cold");
    launch::launch_job(&builder, &products, 0, &opts("qemu", false)).expect("capture");
    let files = ckpt_files(builder.workdir());
    assert_eq!(files.len(), 1);

    let bytes = std::fs::read(&files[0]).expect("read checkpoint");
    std::fs::write(&files[0], &bytes[..bytes.len() / 2]).expect("tear checkpoint");

    let recovered =
        launch::launch_job(&builder, &products, 0, &opts("qemu", false)).expect("recover");
    assert_identical(&cold, &recovered, "torn-recovery");
    assert!(
        recovered
            .warnings
            .iter()
            .any(|w| w.code == "checkpoint-corrupt"),
        "no checkpoint-corrupt warning after torn write; got {:?}",
        recovered.warnings
    );
    let _ = std::fs::remove_dir_all(root);
}

/// `--no-checkpoint` is a true escape hatch: no snapshot is read or
/// written, ever.
#[test]
fn no_checkpoint_never_writes_a_snapshot() {
    let root = common::tmpdir("ckpt-off");
    let mut builder = common::builder_in(&root);
    let products = builder
        .build("hello.json", &BuildOptions::default())
        .expect("build hello");

    launch::launch_job(&builder, &products, 0, &opts("qemu", true)).expect("launch");
    launch::launch_job(&builder, &products, 0, &opts("qemu", true)).expect("launch again");
    assert!(
        ckpt_files(builder.workdir()).is_empty(),
        "--no-checkpoint wrote a snapshot"
    );
    let _ = std::fs::remove_dir_all(root);
}
