//! E1 (Table I): the command surface — `build`, `launch`, `test`,
//! `install`, `clean` — driven through the CLI layer exactly as the
//! `marshal` binary does.

mod common;

use marshal_core::cli::{parse_args, run_command};

fn run(root: &std::path::Path, words: &[&str]) -> (i32, Vec<String>) {
    let mut argv: Vec<String> = vec![
        "--workdir".to_owned(),
        root.join("work").to_string_lossy().into_owned(),
    ];
    argv.extend(words.iter().map(|s| (*s).to_owned()));
    let parsed = parse_args(&argv).expect("parse");
    let setup = marshal_workloads::setup(root).expect("setup");
    run_command(&parsed, setup.board, setup.search)
}

#[test]
fn build_command_reports_jobs_and_tasks() {
    let root = common::tmpdir("cli-build");
    let (code, log) = run(&root, &["build", "hello.json"]);
    assert_eq!(code, 0, "{log:?}");
    assert!(log[0].contains("built `hello`"), "{log:?}");
    assert!(log.iter().any(|l| l.contains("task(s) run")));

    // Second build: everything up to date.
    let (code, log) = run(&root, &["build", "hello.json"]);
    assert_eq!(code, 0);
    assert!(log[0].contains("0 task(s) run"), "{log:?}");
    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn launch_command_runs_payload() {
    let root = common::tmpdir("cli-launch");
    let (code, log) = run(&root, &["-v", "launch", "hello.json"]);
    assert_eq!(code, 0, "{log:?}");
    assert!(log.iter().any(|l| l.contains("Hello from FireMarshal!")));
    assert!(log.iter().any(|l| l.contains("exited 0")));
    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn test_command_passes_on_reference() {
    let root = common::tmpdir("cli-test");
    let (code, log) = run(&root, &["test", "hello.json"]);
    assert_eq!(code, 0, "{log:?}");
    assert!(log.iter().any(|l| l == "PASS"));
    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn install_command_writes_manifest() {
    let root = common::tmpdir("cli-install");
    let (code, log) = run(&root, &["install", "--hw", "boom-tage", "hello.json"]);
    assert_eq!(code, 0, "{log:?}");
    assert!(log[0].contains("installed `hello`"));
    let manifest_path = root.join("work/installs/hello/firesim_config.json");
    assert!(manifest_path.exists());
    let manifest = marshal_core::install::load_manifest(&manifest_path).unwrap();
    assert_eq!(manifest.jobs.len(), 1);
    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn clean_command_forces_rebuild() {
    let root = common::tmpdir("cli-clean");
    run(&root, &["build", "hello.json"]);
    let (code, log) = run(&root, &["clean", "hello.json"]);
    assert_eq!(code, 0, "{log:?}");
    assert!(log[0].contains("cleaned"));
    let (_, log) = run(&root, &["build", "hello.json"]);
    assert!(!log[0].contains("0 task(s) run"), "{log:?}");
    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn bad_usage_fails_cleanly() {
    let root = common::tmpdir("cli-bad");
    let (code, log) = run(&root, &["launch", "no-such-workload.json"]);
    assert_eq!(code, 1);
    assert!(log[0].contains("not found"), "{log:?}");

    let (code, log) = run(&root, &["install", "--hw", "z80", "hello.json"]);
    assert_eq!(code, 1);
    assert!(log[0].contains("unknown hardware config"));
    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn marshal_binary_smoke() {
    // Drive the real binary for `help` (no workload setup needed).
    let exe = env!("CARGO_BIN_EXE_marshal");
    let out = std::process::Command::new(exe)
        .arg("help")
        .output()
        .expect("run marshal");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("usage: marshal"), "{stdout}");
    assert!(out.status.success());
}

#[test]
fn test_manual_compares_existing_outputs() {
    // §III-E: "users can verify the outputs using the test command with
    // the --manual option to compare outputs as if FireMarshal had run the
    // workload."
    let root = common::tmpdir("cli-manual");
    // First produce real outputs via launch.
    let (code, _) = run(&root, &["launch", "hello.json"]);
    assert_eq!(code, 0);
    let run_dir = root.join("work/runs/hello");
    let (code, log) = run(
        &root,
        &["test", "--manual", run_dir.to_str().unwrap(), "hello.json"],
    );
    assert_eq!(code, 0, "{log:?}");
    assert!(log.iter().any(|l| l == "PASS"), "{log:?}");

    // Corrupt the recorded uartlog: --manual must now fail.
    std::fs::write(run_dir.join("hello/uartlog"), "something unrelated\n").unwrap();
    let (code, log) = run(
        &root,
        &["test", "--manual", run_dir.to_str().unwrap(), "hello.json"],
    );
    assert_eq!(code, 1, "{log:?}");
    assert!(log.iter().any(|l| l.starts_with("FAIL")), "{log:?}");
    std::fs::remove_dir_all(root).unwrap();
}

#[test]
fn install_with_vcs_connector() {
    // §VI extension: pluggable simulator connectors.
    let root = common::tmpdir("cli-vcs");
    let (code, log) = run(&root, &["install", "--sim", "vcs", "hello.json"]);
    assert_eq!(code, 0, "{log:?}");
    assert!(log[0].contains("vcs connector"), "{log:?}");
    let runner = root.join("work/installs/hello/run_all.sh");
    assert!(runner.exists());
    let per_job = std::fs::read_to_string(root.join("work/installs/hello/sim_hello.sh")).unwrap();
    assert!(per_job.contains("simv"), "{per_job}");
    assert!(per_job.contains("+bootrom="));

    let (code, log) = run(&root, &["install", "--sim", "modelsim", "hello.json"]);
    assert_eq!(code, 1);
    assert!(log[0].contains("unknown simulator connector"));
    std::fs::remove_dir_all(root).unwrap();
}
